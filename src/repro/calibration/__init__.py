"""Receive-chain phase calibration for commodity WiFi arrays.

Commodity NICs have unknown static phase offsets between antenna chains
that translate every AoA estimate (see `repro.channel.chains`).  This
package estimates the offsets from reference transmissions at *known*
positions — the one-time, per-AP calibration that systems like Phaser [8]
and the paper's testbed perform before AoA localization works at all.
"""

from repro.calibration.estimator import CalibrationResult, calibrate_ap

__all__ = ["CalibrationResult", "calibrate_ap"]
