"""Chain-offset estimation from known-position reference transmissions.

Protocol: place a reference transmitter at one or more *known* positions
with clear line of sight to the AP, record CSI bursts, and compare each
antenna's measured phase against the phase the direct-path geometry
predicts.  The per-antenna discrepancy, averaged circularly over
subcarriers, packets and reference positions, is the chain offset.

Accuracy relies on the direct path dominating the reference measurements,
so calibration positions should be close to the AP and unobstructed —
exactly how real deployments do it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.channel.chains import ChainOffsets
from repro.constants import SPEED_OF_LIGHT
from repro.errors import ConfigurationError
from repro.geom.points import PointLike, as_point
from repro.wifi.arrays import UniformLinearArray
from repro.wifi.csi import CsiTrace
from repro.wifi.ofdm import OfdmGrid


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of one AP's calibration.

    Attributes
    ----------
    offsets:
        Estimated chain offsets (antenna 0 referenced to zero).
    residual_rad:
        RMS circular spread of the per-sample offset estimates — large
        values mean the reference links were not direct-path dominated
        and the calibration should be repeated.
    num_samples:
        Number of (packet x subcarrier x position) samples averaged.
    """

    offsets: ChainOffsets
    residual_rad: float
    num_samples: int


def expected_antenna_phases(
    array: UniformLinearArray, reference: PointLike, grid: OfdmGrid
) -> np.ndarray:
    """Geometric direct-path phase of each antenna relative to antenna 0.

    Uses exact per-element distances (not the far-field approximation),
    evaluated at the carrier; shape (num_antennas,).
    """
    ref = as_point(reference)
    positions = array.element_positions()
    dists = np.array([ref.distance_to((p[0], p[1])) for p in positions])
    phases = -2.0 * np.pi * grid.carrier_freq_hz * (dists - dists[0]) / SPEED_OF_LIGHT
    return phases


def calibrate_ap(
    array: UniformLinearArray,
    grid: OfdmGrid,
    references: Sequence[Tuple[PointLike, CsiTrace]],
) -> CalibrationResult:
    """Estimate an AP's chain offsets from known-position reference traces.

    Parameters
    ----------
    array:
        The AP's array geometry (position/orientation must be accurate).
    grid:
        OFDM grid of the CSI.
    references:
        (true position, recorded trace) pairs for one or more reference
        transmissions.

    Returns
    -------
    CalibrationResult
        Offsets referenced to antenna 0, plus a quality residual.
    """
    if not references:
        raise ConfigurationError("calibration needs at least one reference trace")
    samples: List[np.ndarray] = []
    for position, trace in references:
        if len(trace) == 0:
            raise ConfigurationError("calibration trace is empty")
        if trace.num_antennas != array.num_antennas:
            raise ConfigurationError(
                f"trace has {trace.num_antennas} antennas, array has "
                f"{array.num_antennas}"
            )
        geometry = expected_antenna_phases(array, position, grid)
        for frame in trace:
            # Phase of each antenna relative to antenna 0, per subcarrier.
            rel = frame.csi * np.conj(frame.csi[0:1, :])
            measured = np.angle(rel)  # (M, N)
            # Subtract the geometric part; what remains is chain offset
            # (plus noise).  Keep as unit phasors for circular averaging.
            residual = measured - geometry[:, None]
            samples.append(np.exp(1j * residual))
    stacked = np.concatenate(samples, axis=1)  # (M, total_samples)
    mean_phasor = stacked.mean(axis=1)
    offsets = np.angle(mean_phasor)
    offsets[0] = 0.0
    # Circular spread: 1 - |mean phasor| in [0, 1]; convert to an
    # RMS-radian-like score via sqrt(-2 ln R) (wrapped-normal relation).
    resultant = np.abs(mean_phasor[1:])
    resultant = np.clip(resultant, 1e-6, 1.0)
    residual = float(np.sqrt(np.mean(-2.0 * np.log(resultant))))
    return CalibrationResult(
        offsets=ChainOffsets(offsets_rad=tuple(float(v) for v in offsets)),
        residual_rad=residual,
        num_samples=int(stacked.shape[1]),
    )
