"""Physical and 802.11 constants used throughout the library.

All quantities are in SI units unless the name says otherwise: distances in
meters, times in seconds, frequencies in hertz, angles in radians (helper
converters are provided for the degree-facing public API).
"""

from __future__ import annotations

import math

#: Speed of light in vacuum (m/s).  The paper's phase model (Eq. 1) divides
#: by this, so we keep the exact SI-defined value.
SPEED_OF_LIGHT = 299_792_458.0

#: Center frequency of 802.11n channel 36 (5 GHz band).  The paper's
#: prototype operates in the 5 GHz band "because of firmware limitations".
DEFAULT_CARRIER_FREQ_HZ = 5.18e9

#: 802.11n subcarrier spacing: 312.5 kHz for both 20 and 40 MHz channels.
SUBCARRIER_SPACING_HZ = 312.5e3

#: Number of antennas on the Intel 5300 NIC used by the paper.
INTEL5300_NUM_ANTENNAS = 3

#: Number of subcarriers the Intel 5300 firmware reports CSI for
#: (30 of the 114 populated subcarriers of a 40 MHz channel).
INTEL5300_NUM_SUBCARRIERS = 30

#: The Intel 5300 reports grouped subcarriers.  In a 40 MHz HT channel the
#: reported grouping steps by 4 physical subcarriers, so consecutive
#: *reported* CSI entries are 4 x 312.5 kHz apart.  SpotFi's Omega term
#: (Eq. 6) uses the spacing between consecutive reported entries.
INTEL5300_GROUPING = 4

#: Effective frequency spacing between consecutive reported CSI entries.
INTEL5300_REPORTED_SPACING_HZ = INTEL5300_GROUPING * SUBCARRIER_SPACING_HZ

#: Maximum unambiguous ToF for the reported spacing: Omega(tau) has period
#: 1 / f_delta, i.e. 800 ns for 1.25 MHz spacing.  Estimated ToFs are only
#: meaningful modulo this value (and are relative anyway, Sec. 3.2).
INTEL5300_TOF_AMBIGUITY_S = 1.0 / INTEL5300_REPORTED_SPACING_HZ

#: Default antenna spacing: half a wavelength at the default carrier.
HALF_WAVELENGTH_M = SPEED_OF_LIGHT / DEFAULT_CARRIER_FREQ_HZ / 2.0


def wavelength(frequency_hz: float) -> float:
    """Return the free-space wavelength (m) at ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz!r}")
    return SPEED_OF_LIGHT / frequency_hz


def deg2rad(degrees: float) -> float:
    """Convert degrees to radians (thin wrapper for symmetric naming)."""
    return math.radians(degrees)


def rad2deg(radians: float) -> float:
    """Convert radians to degrees (thin wrapper for symmetric naming)."""
    return math.degrees(radians)
