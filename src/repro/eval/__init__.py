"""Evaluation utilities: error metrics, CDFs and text reports."""

from repro.eval.metrics import (
    Cdf,
    bootstrap_median_ci,
    median,
    percentile,
    summarize_errors,
)
from repro.eval.tracks import (
    TrackErrorSummary,
    format_track_table,
    summarize_track,
    track_errors,
)
from repro.eval.reports import (
    format_cdf_table,
    format_comparison,
    render_ascii_cdf,
    render_spectrum_ascii,
)

__all__ = [
    "Cdf",
    "TrackErrorSummary",
    "bootstrap_median_ci",
    "format_cdf_table",
    "format_comparison",
    "format_track_table",
    "median",
    "percentile",
    "render_ascii_cdf",
    "render_spectrum_ascii",
    "summarize_errors",
    "summarize_track",
    "track_errors",
]
