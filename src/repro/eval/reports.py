"""Plain-text report rendering for benchmark output.

Benchmarks print the same series the paper's figures plot; these helpers
format them as aligned tables and ASCII CDF sketches so ``pytest
benchmarks/ --benchmark-only`` output is self-describing.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.eval.metrics import Cdf, summarize_errors


def format_comparison(
    title: str,
    series: Dict[str, Sequence[float]],
    unit: str = "m",
) -> str:
    """Summary table comparing several methods' error distributions."""
    lines = [title, "-" * len(title)]
    header = f"{'method':<16} {'n':>4} {'median':>8} {'p80':>8} {'p90':>8} {'max':>8}  ({unit})"
    lines.append(header)
    for name, values in series.items():
        s = summarize_errors(values)
        lines.append(
            f"{name:<16} {s['count']:>4d} {s['median']:>8.2f} {s['p80']:>8.2f} "
            f"{s['p90']:>8.2f} {s['max']:>8.2f}"
        )
    return "\n".join(lines)


def format_cdf_table(
    series: Dict[str, Sequence[float]],
    probabilities: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.8, 0.9, 0.95),
    unit: str = "m",
) -> str:
    """Quantile table — the numeric form of the paper's CDF plots."""
    cdfs = {name: Cdf.of(values) for name, values in series.items()}
    lines = [f"{'CDF q':>7} " + " ".join(f"{name:>12}" for name in cdfs)]
    for q in probabilities:
        row = f"{q:>7.2f} "
        row += " ".join(f"{cdf.quantile(q):>12.2f}" for cdf in cdfs.values())
        lines.append(row)
    lines.append(f"(values in {unit})")
    return "\n".join(lines)


def render_spectrum_ascii(
    spectrum,
    aoa_grid_deg,
    tof_grid_s,
    width: int = 72,
    height: int = 24,
    shades: str = " .:-=+*#%@",
) -> str:
    """Render a 2-D MUSIC pseudospectrum as an ASCII heat map.

    Rows are AoA (top = +90-ish), columns are ToF; intensity is
    log-compressed so narrow MUSIC peaks stay visible next to the floor.
    Useful for debugging estimators without a plotting stack.
    """
    import numpy as np

    spec = np.asarray(spectrum, dtype=float)
    if spec.ndim != 2:
        raise ValueError(f"spectrum must be 2-D, got shape {spec.shape}")
    log_spec = np.log10(np.maximum(spec, 1e-18))
    lo, hi = float(log_spec.min()), float(log_spec.max())
    span = hi - lo if hi > lo else 1.0
    # Downsample to the character canvas by block max (peaks survive).
    rows = min(height, spec.shape[0])
    cols = min(width, spec.shape[1])
    row_edges = np.linspace(0, spec.shape[0], rows + 1, dtype=int)
    col_edges = np.linspace(0, spec.shape[1], cols + 1, dtype=int)
    lines = []
    for r in range(rows - 1, -1, -1):  # AoA increases upward
        line = []
        for c in range(cols):
            block = log_spec[
                row_edges[r] : max(row_edges[r + 1], row_edges[r] + 1),
                col_edges[c] : max(col_edges[c + 1], col_edges[c] + 1),
            ]
            level = (float(block.max()) - lo) / span
            line.append(shades[min(int(level * (len(shades) - 1)), len(shades) - 1)])
        lines.append("".join(line))
    aoa = np.asarray(aoa_grid_deg, dtype=float)
    tof = np.asarray(tof_grid_s, dtype=float)
    header = (
        f"AoA {aoa[-1]:+.0f}..{aoa[0]:+.0f} deg (top to bottom), "
        f"ToF {tof[0] * 1e9:.0f}..{tof[-1] * 1e9:.0f} ns (left to right)"
    )
    return header + "\n" + "\n".join(lines)


def render_ascii_cdf(
    series: Dict[str, Sequence[float]],
    width: int = 60,
    max_value: float = 0.0,
    unit: str = "m",
) -> str:
    """A small ASCII sketch of the CDFs (one row per decile per method)."""
    cdfs = {name: Cdf.of(values) for name, values in series.items()}
    if max_value <= 0:
        peaks = [cdf.quantile(1.0) for cdf in cdfs.values() if cdf.count]
        max_value = max(peaks) if peaks else 1.0
    if max_value <= 0:
        max_value = 1.0
    lines = []
    for name, cdf in cdfs.items():
        lines.append(f"{name} (n={cdf.count}):")
        if cdf.count == 0:
            lines.append("  (no samples)")
            continue
        for q10 in range(1, 10):
            q = q10 / 10.0
            v = cdf.quantile(q)
            bar = int(round(min(max(v, 0.0) / max_value, 1.0) * width))
            lines.append(f"  p{q10 * 10:02d} |{'#' * bar:<{width}}| {v:.2f} {unit}")
    return "\n".join(lines)
