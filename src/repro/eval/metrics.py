"""Error metrics and empirical CDFs.

The paper reports medians, 80th-percentile tails and full CDFs of
localization / AoA errors; this module provides those as small, well-typed
utilities shared by all benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np


def _finite(values) -> np.ndarray:
    arr = np.asarray(values, dtype=float).ravel()
    return arr[np.isfinite(arr)]


def median(values) -> float:
    """Median of the finite entries (NaN if none)."""
    arr = _finite(values)
    return float(np.median(arr)) if arr.size else float("nan")


def percentile(values, q: float) -> float:
    """q-th percentile (0-100) of the finite entries (NaN if none)."""
    arr = _finite(values)
    return float(np.percentile(arr, q)) if arr.size else float("nan")


def summarize_errors(values) -> Dict[str, float]:
    """Standard summary: count, median, mean, p80, p90, max."""
    arr = _finite(values)
    if arr.size == 0:
        return {
            "count": 0,
            "median": float("nan"),
            "mean": float("nan"),
            "p80": float("nan"),
            "p90": float("nan"),
            "max": float("nan"),
        }
    return {
        "count": int(arr.size),
        "median": float(np.median(arr)),
        "mean": float(np.mean(arr)),
        "p80": float(np.percentile(arr, 80)),
        "p90": float(np.percentile(arr, 90)),
        "max": float(np.max(arr)),
    }


def bootstrap_median_ci(
    values,
    confidence: float = 0.95,
    num_resamples: int = 2000,
    seed: int = 0,
) -> "tuple[float, float, float]":
    """Bootstrap confidence interval for the median.

    Returns ``(median, low, high)`` over the finite entries.  Benchmarks
    use this to report whether two methods' medians are separable given
    the (small) location counts.
    """
    arr = _finite(values)
    if arr.size == 0:
        return float("nan"), float("nan"), float("nan")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    rng = np.random.default_rng(seed)
    resamples = rng.choice(arr, size=(num_resamples, arr.size), replace=True)
    medians = np.median(resamples, axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.median(arr)),
        float(np.quantile(medians, alpha)),
        float(np.quantile(medians, 1.0 - alpha)),
    )


@dataclass(frozen=True)
class Cdf:
    """An empirical CDF over finite sample values.

    Attributes
    ----------
    values:
        Sorted finite samples.
    """

    values: np.ndarray

    @staticmethod
    def of(samples) -> "Cdf":
        """Build a CDF, dropping non-finite samples."""
        return Cdf(values=np.sort(_finite(samples)))

    @property
    def count(self) -> int:
        return int(self.values.size)

    def at(self, x: float) -> float:
        """P(value <= x)."""
        if self.count == 0:
            return float("nan")
        return float(np.searchsorted(self.values, x, side="right") / self.count)

    def quantile(self, q: float) -> float:
        """Inverse CDF at q in [0, 1]."""
        if self.count == 0:
            return float("nan")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        return float(np.quantile(self.values, q))

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    @property
    def p80(self) -> float:
        return self.quantile(0.8)

    def sample_points(self, num: int = 20) -> "list[tuple[float, float]]":
        """(value, probability) pairs for plotting/tabulating the CDF."""
        if self.count == 0:
            return []
        qs = np.linspace(0.0, 1.0, num)
        return [(self.quantile(float(q)), float(q)) for q in qs]
