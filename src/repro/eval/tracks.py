"""Track-error summarization for moving-target evaluation.

Static evaluation scores each fix independently; tracking evaluation
scores a *trajectory*: at every burst the filtered track position is
compared against where the target actually was at that instant.  This
module is the pure-math half — pairing ground truth with (possibly
missing) estimates and reducing the distances to CDF quantiles — so
both the mobility evaluation driver and the benchmark can share it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.eval.metrics import Cdf

Position = Tuple[float, float]


def track_errors(
    truths: Sequence[Position],
    estimates: Sequence[Optional[Position]],
) -> np.ndarray:
    """Per-burst Euclidean errors where an estimate exists.

    ``truths[i]`` is the target's true position at burst ``i``;
    ``estimates[i]`` is the track's filtered position there, or None
    when the burst produced no usable estimate (those bursts are
    excluded from the error sample but still count against
    :func:`coverage`).
    """
    if len(truths) != len(estimates):
        raise ConfigurationError(
            f"truths ({len(truths)}) and estimates ({len(estimates)}) "
            "must align burst-for-burst"
        )
    errors = [
        float(np.hypot(tx - ex, ty - ey))
        for (tx, ty), est in zip(truths, estimates)
        if est is not None
        for ex, ey in (est,)
    ]
    return np.asarray(errors, dtype=float)


@dataclass(frozen=True)
class TrackErrorSummary:
    """CDF quantiles of one trajectory's track errors.

    Attributes
    ----------
    label:
        What was tracked (a speed profile name in the benchmark).
    samples:
        Bursts along the trajectory.
    estimates:
        Bursts that produced a filtered position.
    median_error_m, p90_error_m:
        Track-error CDF quantiles over those estimates (NaN when none).
    """

    label: str
    samples: int
    estimates: int
    median_error_m: float
    p90_error_m: float

    @property
    def coverage(self) -> float:
        """Fraction of bursts with a usable estimate."""
        return self.estimates / self.samples if self.samples else 0.0


def summarize_track(
    label: str,
    truths: Sequence[Position],
    estimates: Sequence[Optional[Position]],
) -> TrackErrorSummary:
    """Reduce one trajectory to its track-error CDF quantiles."""
    errors = track_errors(truths, estimates)
    cdf = Cdf.of(errors)
    return TrackErrorSummary(
        label=label,
        samples=len(truths),
        estimates=int(errors.size),
        median_error_m=cdf.median,
        p90_error_m=cdf.quantile(0.9),
    )


def format_track_table(summaries: Sequence[TrackErrorSummary]) -> str:
    """Fixed-width text table of track-error summaries."""
    lines = [
        f"{'track':<16} {'bursts':>6} {'est':>5} {'cover':>6} "
        f"{'p50 (m)':>8} {'p90 (m)':>8}"
    ]
    for s in summaries:
        lines.append(
            f"{s.label:<16} {s.samples:>6d} {s.estimates:>5d} "
            f"{s.coverage:>6.0%} {s.median_error_m:>8.2f} {s.p90_error_m:>8.2f}"
        )
    return "\n".join(lines)
