"""Atheros (ath9k) CSI measurement model.

The paper's architecture section notes that "all the major WiFi chip
families (Broadcom, Atheros, Intel, and Marvell) expose quantized CSI per
subcarrier per antenna" and that SpotFi "can easily be deployed with WiFi
APs that use chips from other manufacturers".  This module makes that
concrete for the other widely-used open CSI platform, the Atheros ath9k
CSI tool:

* CSI on **every** populated subcarrier — 56 at 20 MHz, 114 at 40 MHz —
  rather than the Intel 5300's grouped 30;
* **10-bit** quantization per real/imaginary component.

Because the populated 802.11n subcarrier sets skip the DC nulls, a strict
equal-spacing grid only holds per half-band; we expose the standard
equally-spaced approximation used by CSI localization work (index step 1,
the DC gap absorbed as a one-subcarrier phase discontinuity smaller than
the noise floor at indoor delays).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.wifi.ofdm import OfdmGrid, WifiChannel, uniform_grid, wifi_channel_5ghz
from repro.wifi.quantization import QuantizationModel

#: CSI entries reported by ath9k per bandwidth.
ATHEROS_SUBCARRIERS_20MHZ = 56
ATHEROS_SUBCARRIERS_40MHZ = 114


@dataclass(frozen=True)
class AtherosCsi:
    """Measurement model of an Atheros ath9k CSI-capable NIC.

    Attributes
    ----------
    channel:
        Tuned channel (20 or 40 MHz).
    num_antennas:
        Receive chains used (up to 3 on common ath9k cards).
    quantizer:
        10-bit CSI quantization.
    """

    channel: WifiChannel = field(default_factory=lambda: wifi_channel_5ghz(36, 40))
    num_antennas: int = 3
    quantizer: QuantizationModel = field(
        default_factory=lambda: QuantizationModel(num_bits=10)
    )

    def __post_init__(self) -> None:
        if self.channel.bandwidth_hz not in (20e6, 40e6):
            raise ConfigurationError(
                "ath9k CSI is modeled for 20/40 MHz channels, got "
                f"{self.channel.bandwidth_hz / 1e6:.0f} MHz"
            )
        if not 1 <= self.num_antennas <= 3:
            raise ConfigurationError(
                f"ath9k cards have 1-3 receive chains, got {self.num_antennas}"
            )

    @property
    def num_subcarriers(self) -> int:
        if self.channel.bandwidth_hz == 20e6:  # repro: noqa REP005 -- exact config sentinel
            return ATHEROS_SUBCARRIERS_20MHZ
        return ATHEROS_SUBCARRIERS_40MHZ

    def grid(self) -> OfdmGrid:
        """Equally spaced grid over the populated subcarriers."""
        return uniform_grid(
            self.channel.center_freq_hz, self.num_subcarriers, index_step=1
        )

    def recommended_smoothing(self):
        """Subarray shape analogous to the paper's 2 x N/2 construction."""
        from repro.core.smoothing import SmoothingConfig

        half = self.num_subcarriers // 2
        return SmoothingConfig(
            sub_antennas=min(2, self.num_antennas),
            sub_subcarriers=half,
            max_subcarrier_shifts=half,
        )
