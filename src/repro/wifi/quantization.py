"""Intel 5300 CSI quantization model.

The paper (Sec. 4.1) notes that "the CSI information is quantized, i.e.,
each of real and imaginary parts of CSI for every subcarrier is represented
using 8 bits."  The firmware scales each packet's CSI matrix so the largest
component fits the signed 8-bit range, then rounds.  This module reproduces
that per-packet scale-and-round so the synthetic CSI carries the same
quantization noise floor the real system fights.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class QuantizationModel:
    """Per-packet scale-and-round quantizer for complex CSI.

    Attributes
    ----------
    num_bits:
        Bits per real/imaginary component (Intel 5300: 8).
    headroom:
        Fraction of full scale the largest component is scaled to, < 1 to
        mimic the firmware leaving headroom before clipping.
    """

    num_bits: int = 8
    headroom: float = 0.9

    def __post_init__(self) -> None:
        if not 2 <= self.num_bits <= 16:
            raise ConfigurationError(f"num_bits must be in [2, 16], got {self.num_bits}")
        if not 0.0 < self.headroom <= 1.0:
            raise ConfigurationError(f"headroom must be in (0, 1], got {self.headroom}")

    @property
    def max_level(self) -> int:
        """Largest representable signed integer component value."""
        return 2 ** (self.num_bits - 1) - 1

    def quantize(self, csi: np.ndarray) -> np.ndarray:
        """Quantize a complex CSI array, returning the dequantized complex values.

        The per-packet scale factor is chosen from the array's largest
        real/imaginary component; the returned array is in the original
        units (quantize-then-rescale), so callers can use it as a drop-in
        noisy version of the input.  An all-zero input is returned as-is.
        """
        arr = np.asarray(csi, dtype=np.complex128)
        # Quantization is defined component-wise on re/im; both halves are
        # processed symmetrically, nothing is discarded.
        peak = max(np.abs(arr.real).max(initial=0.0), np.abs(arr.imag).max(initial=0.0))  # repro: noqa REP012
        scale = self.max_level * self.headroom / peak if peak > 0 else np.inf
        if not np.isfinite(scale):  # zero or denormal input: nothing to quantize
            return arr.copy()
        q_real = np.clip(np.round(arr.real * scale), -self.max_level - 1, self.max_level)  # repro: noqa REP012
        q_imag = np.clip(np.round(arr.imag * scale), -self.max_level - 1, self.max_level)
        return (q_real + 1j * q_imag) / scale

    def quantize_to_ints(self, csi: np.ndarray) -> "tuple[np.ndarray, float]":
        """Quantize to integer components, returning ``(ints, scale)``.

        ``ints`` is a complex array whose real/imag parts are integers in
        the signed ``num_bits`` range; dividing by ``scale`` recovers the
        dequantized CSI.  This is the representation the csitool trace
        writer uses.
        """
        arr = np.asarray(csi, dtype=np.complex128)
        # Quantization is defined component-wise on re/im; both halves are
        # processed symmetrically, nothing is discarded.
        peak = max(np.abs(arr.real).max(initial=0.0), np.abs(arr.imag).max(initial=0.0))  # repro: noqa REP012
        scale = self.max_level * self.headroom / peak if peak > 0 else np.inf
        if not np.isfinite(scale):
            return arr.copy(), 1.0
        q_real = np.clip(np.round(arr.real * scale), -self.max_level - 1, self.max_level)  # repro: noqa REP012
        q_imag = np.clip(np.round(arr.imag * scale), -self.max_level - 1, self.max_level)
        return q_real + 1j * q_imag, scale

    def quantization_snr_db(self, csi: np.ndarray) -> float:
        """Empirical SNR (dB) of the quantized representation of ``csi``."""
        arr = np.asarray(csi, dtype=np.complex128)
        err = self.quantize(arr) - arr
        signal = float(np.mean(np.abs(arr) ** 2))
        noise = float(np.mean(np.abs(err) ** 2))
        if noise <= 0.0:
            return float("inf")
        return 10.0 * np.log10(signal / noise)
