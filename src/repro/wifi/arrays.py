"""Antenna array geometry.

SpotFi assumes a uniform linear array (ULA) at each AP, like ArrayTrack
(paper Sec. 3.1.1, Fig. 2).  The array is described by its element count,
element spacing, position, and the orientation of the array *normal* in the
world frame.  AoA is always measured with respect to that normal, in
``[-90, 90]`` degrees, positive toward the array's "left" when looking along
the normal — the same convention as the paper's ``sin(theta)`` phase model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constants import HALF_WAVELENGTH_M, SPEED_OF_LIGHT
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class UniformLinearArray:
    """A uniform linear antenna array in the 2-D world plane.

    Attributes
    ----------
    num_antennas:
        Number of elements M (the paper's APs have M = 3).
    spacing_m:
        Distance d between consecutive elements, default half-wavelength
        at 5.18 GHz.
    position:
        (x, y) of the *first* element's phase center in world coordinates.
        Localization treats this as the AP position.
    normal_deg:
        World-frame bearing of the array normal (boresight), degrees,
        measured counter-clockwise from the +x axis.
    """

    num_antennas: int = 3
    spacing_m: float = HALF_WAVELENGTH_M
    position: tuple = (0.0, 0.0)
    normal_deg: float = 0.0

    def __post_init__(self) -> None:
        if self.num_antennas < 2:
            raise ConfigurationError(
                f"a ULA needs at least 2 antennas, got {self.num_antennas}"
            )
        if self.spacing_m <= 0:
            raise ConfigurationError(
                f"antenna spacing must be positive, got {self.spacing_m}"
            )
        if len(self.position) != 2:
            raise ConfigurationError("array position must be a 2-D (x, y) tuple")

    @property
    def aperture_m(self) -> float:
        """Total array length from first to last element (m)."""
        return (self.num_antennas - 1) * self.spacing_m

    def is_unambiguous(self, carrier_freq_hz: float) -> bool:
        """True if ``spacing <= lambda/2`` so sin(theta) is unambiguous."""
        half_wl = SPEED_OF_LIGHT / carrier_freq_hz / 2.0
        return self.spacing_m <= half_wl * (1 + 1e-9)

    # ------------------------------------------------------------------
    # World-frame geometry
    # ------------------------------------------------------------------
    def bearing_to(self, point: tuple) -> float:
        """World-frame bearing (deg, CCW from +x) from the array to ``point``."""
        dx = point[0] - self.position[0]
        dy = point[1] - self.position[1]
        if dx == 0.0 and dy == 0.0:  # repro: noqa REP005 -- exact coincidence check
            raise ConfigurationError("cannot compute bearing to the array itself")
        return math.degrees(math.atan2(dy, dx))

    def aoa_to(self, point: tuple) -> float:
        """Ground-truth AoA (deg, in [-180, 180]) of the direct path from ``point``.

        This is the bearing of ``point`` relative to the array normal.
        Values outside [-90, 90] mean the point is behind the array; a ULA
        cannot distinguish front from back, so callers placing APs should
        orient normals toward the coverage area.
        """
        bearing = self.bearing_to(point)
        rel = bearing - self.normal_deg
        # Wrap to [-180, 180).
        rel = (rel + 180.0) % 360.0 - 180.0
        return rel

    def world_bearing_of_aoa(self, aoa_deg: float) -> float:
        """Convert a local AoA (deg from normal) back to a world bearing (deg)."""
        bearing = self.normal_deg + aoa_deg
        return (bearing + 180.0) % 360.0 - 180.0

    def element_positions(self) -> np.ndarray:
        """(M, 2) world coordinates of every element.

        Elements are laid out along the direction perpendicular to the
        normal, starting at :attr:`position`; with the sign convention
        chosen so that a source at positive AoA reaches element m *later*
        than element 0, matching the paper's phase term
        ``exp(-j 2 pi d (m-1) sin(theta) f / c)``.
        """
        normal_rad = math.radians(self.normal_deg)
        # Array axis: normal rotated -90 degrees.
        axis = np.array([math.sin(normal_rad), -math.cos(normal_rad)])
        base = np.asarray(self.position, dtype=float)
        offsets = np.arange(self.num_antennas)[:, None] * self.spacing_m * axis[None, :]
        return base[None, :] + offsets

    def distance_to(self, point: tuple) -> float:
        """Euclidean distance (m) from the first element to ``point``."""
        dx = point[0] - self.position[0]
        dy = point[1] - self.position[1]
        return math.hypot(dx, dy)
