"""WiFi PHY substrate: OFDM channelization, CSI containers, and the
Intel 5300 measurement model (subcarrier grouping + 8-bit quantization).

The rest of the library consumes CSI through the :class:`~repro.wifi.csi.CsiFrame`
and :class:`~repro.wifi.csi.CsiTrace` containers defined here, so swapping in a
different NIC model only requires providing a new :class:`~repro.wifi.ofdm.OfdmGrid`.
"""

from repro.wifi.arrays import UniformLinearArray
from repro.wifi.csi import CsiFrame, CsiTrace
from repro.wifi.intel5300 import Intel5300
from repro.wifi.ofdm import OfdmGrid, WifiChannel, wifi_channel_5ghz
from repro.wifi.quantization import QuantizationModel
from repro.wifi.rssi import rssi_from_csi, rssi_from_power

__all__ = [
    "CsiFrame",
    "CsiTrace",
    "Intel5300",
    "OfdmGrid",
    "QuantizationModel",
    "UniformLinearArray",
    "WifiChannel",
    "rssi_from_csi",
    "rssi_from_power",
    "wifi_channel_5ghz",
]
