"""CSI containers.

The central data structure of the library: a :class:`CsiFrame` is the CSI
matrix of one received packet (paper Eq. 5 — antennas x subcarriers complex
values) plus the per-packet metadata SpotFi's server receives from an AP
(RSSI, timestamp, source address).  A :class:`CsiTrace` is the sequence of
frames one AP collected from one target, which is the unit Algorithm 2
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.analysis.contracts import contract
from repro.errors import CsiShapeError


@contract(returns="(M,N) complex128")
def validate_csi_matrix(csi: np.ndarray) -> np.ndarray:
    """Validate and canonicalize a CSI matrix.

    Returns a complex128 array of shape (num_antennas, num_subcarriers).
    Raises :class:`CsiShapeError` on anything that is not a 2-D complex
    matrix with at least 2 antennas and 2 subcarriers and no non-finite
    entries.
    """
    arr = np.asarray(csi)
    if arr.ndim != 2:
        raise CsiShapeError(f"CSI must be 2-D (antennas, subcarriers), got shape {arr.shape}")
    if arr.shape[0] < 2 or arr.shape[1] < 2:
        raise CsiShapeError(
            f"CSI needs >= 2 antennas and >= 2 subcarriers, got shape {arr.shape}"
        )
    arr = arr.astype(np.complex128, copy=False)
    # Finiteness check inspects both halves; nothing is discarded.
    if not np.all(np.isfinite(arr.real)) or not np.all(np.isfinite(arr.imag)):  # repro: noqa REP012
        raise CsiShapeError("CSI contains non-finite values")
    return arr


@dataclass(frozen=True)
class CsiFrame:
    """CSI and metadata for a single received packet at one AP.

    Attributes
    ----------
    csi:
        Complex CSI matrix of shape (num_antennas, num_subcarriers),
        exactly the paper's Eq. 5 layout.
    rssi_dbm:
        Received signal strength for this packet, dBm.
    timestamp_s:
        Receive timestamp at the AP (s).  Only ordering matters.
    source:
        Transmitter identifier (MAC address string in a real deployment).
    """

    csi: np.ndarray
    rssi_dbm: float = float("nan")
    timestamp_s: float = 0.0
    source: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "csi", validate_csi_matrix(self.csi))

    @property
    def num_antennas(self) -> int:
        return int(self.csi.shape[0])

    @property
    def num_subcarriers(self) -> int:
        return int(self.csi.shape[1])

    def magnitude_db(self) -> np.ndarray:
        """Per-entry magnitude in dB (20*log10|csi|), -inf-safe."""
        mag = np.abs(self.csi)
        with np.errstate(divide="ignore"):
            return 20.0 * np.log10(mag)

    def phase(self) -> np.ndarray:
        """Per-entry wrapped phase in radians."""
        return np.angle(self.csi)

    def unwrapped_phase(self) -> np.ndarray:
        """Phase unwrapped independently along each antenna's subcarriers.

        This is the psi_i(m, n) of paper Algorithm 1.
        """
        return np.unwrap(np.angle(self.csi), axis=1)

    def stacked(self) -> np.ndarray:
        """CSI flattened antenna-major into the (M*N,) vector of Fig. 4 (left)."""
        return self.csi.reshape(-1)


@dataclass
class CsiTrace:
    """An ordered sequence of :class:`CsiFrame` from one target at one AP."""

    frames: List[CsiFrame] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.frames = list(self.frames)
        shapes = {f.csi.shape for f in self.frames}
        if len(shapes) > 1:
            raise CsiShapeError(f"trace mixes CSI shapes: {sorted(shapes)}")

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self) -> Iterator[CsiFrame]:
        return iter(self.frames)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return CsiTrace(self.frames[index])
        return self.frames[index]

    def append(self, frame: CsiFrame) -> None:
        if self.frames and frame.csi.shape != self.frames[0].csi.shape:
            raise CsiShapeError(
                f"frame shape {frame.csi.shape} does not match trace shape "
                f"{self.frames[0].csi.shape}"
            )
        self.frames.append(frame)

    @property
    def num_antennas(self) -> int:
        self._require_nonempty()
        return self.frames[0].num_antennas

    @property
    def num_subcarriers(self) -> int:
        self._require_nonempty()
        return self.frames[0].num_subcarriers

    def csi_array(self) -> np.ndarray:
        """Stack all frames into a (num_frames, M, N) complex array."""
        self._require_nonempty()
        return np.stack([f.csi for f in self.frames])

    def rssi_dbm(self) -> np.ndarray:
        """Per-frame RSSI values (dBm)."""
        return np.array([f.rssi_dbm for f in self.frames], dtype=float)

    def median_rssi_dbm(self) -> float:
        """Median RSSI over the trace; NaN if no finite RSSIs."""
        vals = self.rssi_dbm()
        vals = vals[np.isfinite(vals)]
        if vals.size == 0:
            return float("nan")
        return float(np.median(vals))

    def windows(self, size: int, step: Optional[int] = None) -> Iterator["CsiTrace"]:
        """Yield consecutive sub-traces of ``size`` frames.

        The paper's server "chops up the CSI traces into groups of forty
        consecutive CSI measurements" (Sec. 4.3.1); this implements that
        chopping.  A trailing partial window is dropped.
        """
        if size < 1:
            raise ValueError(f"window size must be >= 1, got {size}")
        step = size if step is None else step
        if step < 1:
            raise ValueError(f"window step must be >= 1, got {step}")
        for start in range(0, len(self.frames) - size + 1, step):
            yield CsiTrace(self.frames[start : start + size])

    @staticmethod
    def from_arrays(
        csi: np.ndarray,
        rssi_dbm: Optional[Sequence[float]] = None,
        timestamps_s: Optional[Sequence[float]] = None,
        source: str = "",
    ) -> "CsiTrace":
        """Build a trace from a (num_frames, M, N) CSI array and metadata."""
        csi = np.asarray(csi)
        if csi.ndim != 3:
            raise CsiShapeError(
                f"expected (frames, antennas, subcarriers) array, got shape {csi.shape}"
            )
        num = csi.shape[0]
        if rssi_dbm is None:
            rssi_dbm = [float("nan")] * num
        if timestamps_s is None:
            timestamps_s = [float(i) for i in range(num)]
        if len(rssi_dbm) != num or len(timestamps_s) != num:
            raise CsiShapeError("metadata length does not match frame count")
        frames = [
            CsiFrame(
                csi=csi[i],
                rssi_dbm=float(rssi_dbm[i]),
                timestamp_s=float(timestamps_s[i]),
                source=source,
            )
            for i in range(num)
        ]
        return CsiTrace(frames)

    def _require_nonempty(self) -> None:
        if not self.frames:
            raise CsiShapeError("operation requires a non-empty trace")


def merge_traces(traces: Iterable[CsiTrace]) -> CsiTrace:
    """Concatenate traces (same shape) into one, preserving order."""
    merged = CsiTrace()
    for trace in traces:
        for frame in trace:
            merged.append(frame)
    return merged
