"""802.11n OFDM channelization and the subcarrier grids CSI is reported on.

SpotFi's joint AoA/ToF model only needs two facts about the PHY:

* the carrier frequency ``f`` (enters the AoA phase term, paper Eq. 1), and
* the frequency spacing ``f_delta`` between consecutive *reported* CSI
  entries (enters the ToF phase term, paper Eq. 6).

Both are captured by :class:`OfdmGrid`.  :class:`WifiChannel` provides the
standard 5 GHz channelization so testbeds can be configured by channel
number like real deployments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import (
    SPEED_OF_LIGHT,
    SUBCARRIER_SPACING_HZ,
)
from repro.errors import ConfigurationError

#: 5 GHz channel center frequencies (MHz) for common 40 MHz-capable channels.
_CHANNEL_CENTER_MHZ = {
    36: 5180,
    40: 5200,
    44: 5220,
    48: 5240,
    52: 5260,
    56: 5280,
    60: 5300,
    64: 5320,
    100: 5500,
    104: 5520,
    149: 5745,
    153: 5765,
    157: 5785,
    161: 5805,
}


@dataclass(frozen=True)
class WifiChannel:
    """An 802.11 channel: center frequency and bandwidth.

    Attributes
    ----------
    number:
        The 802.11 channel number (e.g. 36).
    center_freq_hz:
        Channel center frequency in Hz.
    bandwidth_hz:
        Channel bandwidth in Hz (20e6 or 40e6).
    """

    number: int
    center_freq_hz: float
    bandwidth_hz: float

    def __post_init__(self) -> None:
        if self.center_freq_hz <= 0:
            raise ConfigurationError(
                f"channel center frequency must be positive, got {self.center_freq_hz}"
            )
        if self.bandwidth_hz not in (20e6, 40e6, 80e6):
            raise ConfigurationError(
                f"unsupported bandwidth {self.bandwidth_hz}; expected 20/40/80 MHz"
            )

    @property
    def wavelength_m(self) -> float:
        """Free-space wavelength at the channel center (m)."""
        return SPEED_OF_LIGHT / self.center_freq_hz


def wifi_channel_5ghz(number: int, bandwidth_mhz: int = 40) -> WifiChannel:
    """Build a :class:`WifiChannel` for a 5 GHz channel number.

    Parameters
    ----------
    number:
        Primary 20 MHz channel number (e.g. 36).
    bandwidth_mhz:
        20 or 40.  For 40 MHz the center shifts +10 MHz (HT40+ bonding),
        matching the paper's 40 MHz operation.
    """
    if number not in _CHANNEL_CENTER_MHZ:
        raise ConfigurationError(
            f"unknown 5 GHz channel {number}; known: {sorted(_CHANNEL_CENTER_MHZ)}"
        )
    center_mhz = _CHANNEL_CENTER_MHZ[number]
    if bandwidth_mhz == 40:
        center_mhz += 10
    elif bandwidth_mhz != 20:
        raise ConfigurationError(f"bandwidth_mhz must be 20 or 40, got {bandwidth_mhz}")
    return WifiChannel(
        number=number,
        center_freq_hz=center_mhz * 1e6,
        bandwidth_hz=bandwidth_mhz * 1e6,
    )


@dataclass(frozen=True)
class OfdmGrid:
    """The frequency grid on which a NIC reports CSI.

    A grid is defined by the carrier frequency and the *reported* subcarrier
    indices (in physical-subcarrier units relative to the channel center).
    The SpotFi model assumes the reported entries are equally spaced, which
    holds (to within one subcarrier) for the Intel 5300 grouping; the class
    validates this and exposes the effective spacing as
    :attr:`subcarrier_spacing_hz`.

    Attributes
    ----------
    carrier_freq_hz:
        Channel center frequency in Hz.
    subcarrier_indices:
        Physical subcarrier indices of the reported entries, ascending.
    """

    carrier_freq_hz: float
    subcarrier_indices: tuple = field(default=())

    def __post_init__(self) -> None:
        if self.carrier_freq_hz <= 0:
            raise ConfigurationError(
                f"carrier frequency must be positive, got {self.carrier_freq_hz}"
            )
        idx = np.asarray(self.subcarrier_indices, dtype=float)
        if idx.size < 2:
            raise ConfigurationError("an OFDM grid needs at least 2 subcarriers")
        steps = np.diff(idx)
        if np.any(steps <= 0):
            raise ConfigurationError("subcarrier indices must be strictly ascending")
        # Equal spacing is assumed by the Omega(tau) model; enforce it.
        if not np.allclose(steps, steps[0]):
            raise ConfigurationError(
                "SpotFi's ToF model requires equally spaced reported subcarriers; "
                f"got steps {sorted(set(steps.tolist()))}"
            )

    @property
    def num_subcarriers(self) -> int:
        """Number of reported subcarriers (N in the paper)."""
        return len(self.subcarrier_indices)

    @property
    def index_step(self) -> float:
        """Spacing between consecutive reported entries, in physical subcarriers."""
        return float(self.subcarrier_indices[1] - self.subcarrier_indices[0])

    @property
    def subcarrier_spacing_hz(self) -> float:
        """Effective spacing f_delta between consecutive reported entries (Hz)."""
        return self.index_step * SUBCARRIER_SPACING_HZ

    @property
    def tof_ambiguity_s(self) -> float:
        """Period of Omega(tau): ToFs are identifiable only modulo this."""
        return 1.0 / self.subcarrier_spacing_hz

    def subcarrier_freqs_hz(self) -> np.ndarray:
        """Absolute frequency of every reported subcarrier (Hz), ascending."""
        idx = np.asarray(self.subcarrier_indices, dtype=float)
        return self.carrier_freq_hz + idx * SUBCARRIER_SPACING_HZ

    def relative_freqs_hz(self) -> np.ndarray:
        """Frequency of each reported entry relative to the first one (Hz)."""
        freqs = self.subcarrier_freqs_hz()
        return freqs - freqs[0]

    def with_carrier(self, carrier_freq_hz: float) -> "OfdmGrid":
        """Return a copy of this grid retuned to a different carrier."""
        return OfdmGrid(
            carrier_freq_hz=carrier_freq_hz,
            subcarrier_indices=self.subcarrier_indices,
        )


def uniform_grid(
    carrier_freq_hz: float, num_subcarriers: int, index_step: int = 1
) -> OfdmGrid:
    """Build a symmetric, equally spaced :class:`OfdmGrid`.

    The indices are centered on the carrier (e.g. ``-28, -24, ..., 28``),
    which is how grouped 802.11n CSI is laid out.
    """
    if num_subcarriers < 2:
        raise ConfigurationError("need at least 2 subcarriers")
    if index_step < 1:
        raise ConfigurationError("index_step must be >= 1")
    span = (num_subcarriers - 1) * index_step
    start = -span / 2.0
    indices = tuple(start + i * index_step for i in range(num_subcarriers))
    return OfdmGrid(carrier_freq_hz=carrier_freq_hz, subcarrier_indices=indices)
