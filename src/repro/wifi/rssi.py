"""RSSI helpers.

SpotFi's localization step (paper Sec. 3.3, Eq. 9) consumes per-AP RSSI
under a log-distance path-loss model.  The simulator produces RSSI from the
synthesized channel's total received power; these helpers convert between
linear power, dBm, and CSI magnitude.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.contracts import contract
from repro.errors import CsiShapeError


def rssi_from_power(power_mw: float) -> float:
    """Convert linear received power (mW) to RSSI (dBm)."""
    if power_mw <= 0:
        return float("-inf")
    return float(10.0 * np.log10(power_mw))


def power_from_rssi(rssi_dbm: float) -> float:
    """Convert RSSI (dBm) to linear power (mW)."""
    return float(10.0 ** (rssi_dbm / 10.0))


@contract(reference_power_dbm="float", returns="float")
def rssi_from_csi(csi: np.ndarray, reference_power_dbm: float = 0.0) -> float:
    """Estimate RSSI (dBm) from a CSI matrix.

    The mean squared CSI magnitude is the channel's average power gain
    across antennas and subcarriers; ``reference_power_dbm`` is the
    transmit power this gain is applied to.  A real card reports RSSI
    from its AGC, but this is the standard software proxy.
    """
    arr = np.asarray(csi)
    if arr.size == 0:
        raise CsiShapeError("cannot compute RSSI of an empty CSI array")
    mean_gain = float(np.mean(np.abs(arr) ** 2))
    if mean_gain <= 0.0:
        return float("-inf")
    return reference_power_dbm + 10.0 * float(np.log10(mean_gain))


def combine_rssi_dbm(values_dbm: np.ndarray) -> float:
    """Combine multiple RSSI readings (dBm) by averaging in the linear domain."""
    vals = np.asarray(values_dbm, dtype=float)
    vals = vals[np.isfinite(vals)]
    if vals.size == 0:
        return float("nan")
    return float(10.0 * np.log10(np.mean(10.0 ** (vals / 10.0))))
