"""The Intel 5300 NIC measurement model used by the paper's prototype.

The Intel 5300 firmware reports CSI for 30 grouped subcarriers out of the
114 populated subcarriers of a 40 MHz HT channel, on each of its 3 receive
antennas, with 8-bit quantized components (paper Sec. 4.1).  This module
bundles those facts into a single :class:`Intel5300` card model that yields
the :class:`~repro.wifi.ofdm.OfdmGrid` and quantizer the simulator and the
estimators share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constants import (
    INTEL5300_GROUPING,
    INTEL5300_NUM_ANTENNAS,
    INTEL5300_NUM_SUBCARRIERS,
)
from repro.errors import ConfigurationError
from repro.wifi.ofdm import OfdmGrid, WifiChannel, uniform_grid, wifi_channel_5ghz
from repro.wifi.quantization import QuantizationModel

#: Subcarrier indices reported by the Intel 5300 in a 40 MHz HT channel
#: (IEEE 802.11n-2009 Table 7-25f grouping, Ng = 4): -58 to 58 step 4.
#: These are equally spaced, which is what SpotFi's Omega(tau) term needs.
INTEL5300_40MHZ_INDICES = tuple(range(-58, 59, 4))

assert len(INTEL5300_40MHZ_INDICES) == INTEL5300_NUM_SUBCARRIERS


@dataclass(frozen=True)
class Intel5300:
    """Measurement model of the Intel 5300 WiFi NIC.

    Attributes
    ----------
    channel:
        The :class:`WifiChannel` the card is tuned to (default: channel 36,
        40 MHz, matching the paper's 5 GHz / 40 MHz configuration).
    quantizer:
        The 8-bit CSI quantization model.
    """

    channel: WifiChannel = field(default_factory=lambda: wifi_channel_5ghz(36, 40))
    quantizer: QuantizationModel = field(default_factory=QuantizationModel)

    def __post_init__(self) -> None:
        if self.channel.bandwidth_hz != 40e6:  # repro: noqa REP005 -- exact config sentinel
            raise ConfigurationError(
                "the Intel 5300 30-subcarrier grouping modeled here is for "
                f"40 MHz channels; got {self.channel.bandwidth_hz / 1e6:.0f} MHz"
            )

    @property
    def num_antennas(self) -> int:
        return INTEL5300_NUM_ANTENNAS

    @property
    def num_subcarriers(self) -> int:
        return INTEL5300_NUM_SUBCARRIERS

    @property
    def grouping(self) -> int:
        return INTEL5300_GROUPING

    def grid(self) -> OfdmGrid:
        """The OFDM grid of the 30 reported subcarriers."""
        return OfdmGrid(
            carrier_freq_hz=self.channel.center_freq_hz,
            subcarrier_indices=INTEL5300_40MHZ_INDICES,
        )


def generic_card_grid(
    carrier_freq_hz: float, num_subcarriers: int, grouping: int = 1
) -> OfdmGrid:
    """Grid for a hypothetical NIC reporting ``num_subcarriers`` grouped entries.

    Useful for the ablations that vary the number of reported subcarriers.
    """
    return uniform_grid(carrier_freq_hz, num_subcarriers, index_step=grouping)
