"""Prometheus-style plain-text exposition of a metrics snapshot.

:func:`render_prometheus` turns the plain-data snapshot produced by
:meth:`repro.runtime.metrics.RuntimeMetrics.snapshot` (optionally
augmented with a ``cache`` section, as
:meth:`repro.server.SpotFiServer.metrics_snapshot` does) into the
text format scrapers expect:

* counters -> ``repro_<name>_total``
* stage timings -> one ``repro_stage_duration_seconds`` histogram per
  stage (cumulative ``le`` buckets, ``_sum``, ``_count``) plus
  ``repro_stage_duration_seconds{quantile=...}`` gauge estimates and
  batch/item gauges
* steering cache stats -> ``repro_steering_cache_*`` gauges including
  the derived hit rate
* circuit breaker states -> ``repro_circuit_breaker_state{ap="..."}``
  gauges encoding the state as its index in
  :data:`repro.faults.breaker.BREAKER_STATES` (0 closed, 1 open,
  2 half-open)
* SLO evaluations (an ``slo`` section, see :mod:`repro.obs.slo`) ->
  ``repro_slo_*{objective="..."}`` gauges: compliance bit, observed
  bad fraction, burn rate, and remaining error budget

Every family is preceded by ``# HELP`` and ``# TYPE`` lines, as the
exposition-format spec requires; ``tests/obs/test_prometheus.py``
parses the output back to hold that invariant.

No Prometheus client library involved — the format is a stable,
trivially rendered text protocol, and the container must not grow
dependencies.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(raw: str, prefix: str) -> str:
    """Sanitize a dotted counter name into a Prometheus metric name."""
    name = _NAME_RE.sub("_", raw.replace(".", "_"))
    if name and name[0].isdigit():
        name = "_" + name
    return f"{prefix}_{name}"


def _fmt(value: float) -> str:
    """Render a sample value; +Inf spelled the Prometheus way."""
    if value == float("inf"):
        return "+Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def _family(lines: List[str], name: str, kind: str, help_text: str) -> None:
    """Open one metric family: the mandatory ``# HELP`` + ``# TYPE`` pair."""
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {kind}")


def _render_histogram(
    lines: List[str], name: str, stage: str, hist: Mapping[str, object]
) -> None:
    """Append one labeled histogram series from its dict form."""
    bounds = list(hist.get("bounds", []))
    counts = list(hist.get("counts", []))
    cumulative = 0
    for bound, count in zip(bounds, counts):
        cumulative += int(count)
        lines.append(
            f'{name}_bucket{{stage="{stage}",le="{_fmt(float(bound))}"}} {cumulative}'
        )
    total = cumulative + int(hist.get("overflow", 0))
    lines.append(f'{name}_bucket{{stage="{stage}",le="+Inf"}} {total}')
    lines.append(f'{name}_sum{{stage="{stage}"}} {_fmt(float(hist.get("sum", 0.0)))}')
    lines.append(f'{name}_count{{stage="{stage}"}} {total}')


def render_prometheus(
    snapshot: Mapping[str, object], prefix: str = "repro"
) -> str:
    """Render a metrics snapshot as Prometheus plain-text exposition.

    Parameters
    ----------
    snapshot:
        ``{"counters": {...}, "timings": {...}}`` from
        :meth:`~repro.runtime.metrics.RuntimeMetrics.snapshot`, plus
        optional ``cache`` (steering-cache stats), ``breakers``
        (per-AP breaker states), and ``slo`` (per-objective evaluation
        dicts from :meth:`repro.obs.slo.SloTracker.snapshot`) sections.
    prefix:
        Metric name prefix (default ``repro``).

    Returns the exposition text, newline-terminated.
    """
    lines: List[str] = []

    counters: Dict[str, int] = dict(snapshot.get("counters", {}))  # type: ignore[arg-type]
    estimator_prefix = "estimator.requests."
    estimator_requests = {
        raw: value
        for raw, value in counters.items()
        if raw.startswith(estimator_prefix)
    }
    for raw in sorted(counters):
        if raw in estimator_requests:
            continue  # rendered below with estimator/tier labels
        name = _metric_name(raw, prefix) + "_total"
        _family(lines, name, "counter", f"Monotonic count of `{raw}` events.")
        lines.append(f"{name} {int(counters[raw])}")

    if estimator_requests:
        # "estimator.requests.<name>.<tier>" counters become one
        # labelled family; estimator names may contain "-" but never
        # ".", so the last dot splits name from tier.
        family = f"{prefix}_estimator_requests_total"
        _family(
            lines,
            family,
            "counter",
            "Fix computations served, by estimator and QoS tier.",
        )
        for raw in sorted(estimator_requests):
            estimator, _, tier = raw[len(estimator_prefix) :].rpartition(".")
            lines.append(
                f'{family}{{estimator="{estimator}",tier="{tier}"}} '
                f"{int(estimator_requests[raw])}"
            )

    timings: Dict[str, Mapping[str, object]] = dict(snapshot.get("timings", {}))  # type: ignore[arg-type]
    if timings:
        hist_name = f"{prefix}_stage_duration_seconds"
        _family(
            lines,
            hist_name,
            "histogram",
            "Per-stage batch duration distribution in seconds.",
        )
        for stage in sorted(timings):
            hist: Optional[Mapping[str, object]] = timings[stage].get("histogram")  # type: ignore[assignment]
            if hist:
                _render_histogram(lines, hist_name, stage, hist)
        quant_name = f"{prefix}_stage_duration_seconds_quantile"
        _family(
            lines,
            quant_name,
            "gauge",
            "Estimated per-stage duration quantiles in seconds.",
        )
        for stage in sorted(timings):
            quantiles: Mapping[str, float] = timings[stage].get("quantiles", {})  # type: ignore[assignment]
            for label, value in quantiles.items():
                q = int(label.lstrip("p")) / 100.0
                lines.append(
                    f'{quant_name}{{stage="{stage}",quantile="{q}"}} {_fmt(value)}'
                )
        for gauge, key, help_text in (
            ("stage_batches", "batches", "Batches recorded per stage."),
            ("stage_items", "items", "Items processed per stage."),
            ("stage_max_seconds", "max_s", "Worst observed batch duration per stage in seconds."),
        ):
            name = f"{prefix}_{gauge}"
            _family(lines, name, "gauge", help_text)
            for stage in sorted(timings):
                value = timings[stage].get(key, 0)
                lines.append(f'{name}{{stage="{stage}"}} {_fmt(value)}')

    cache: Mapping[str, float] = snapshot.get("cache", {})  # type: ignore[assignment]
    if cache:
        cache_help = {
            "hits": "Steering-grid cache hits.",
            "misses": "Steering-grid cache misses.",
            "evictions": "Steering-grid cache evictions.",
            "size": "Entries currently in the steering-grid cache.",
            "max_size": "Steering-grid cache capacity.",
            "hit_rate": "Steering-grid cache hit rate (hits / lookups).",
        }
        for key in sorted(cache):
            suffix = "_total" if key in ("hits", "misses", "evictions") else ""
            name = f"{prefix}_steering_cache_{key}{suffix}"
            kind = "counter" if suffix else "gauge"
            _family(
                lines, name, kind, cache_help.get(key, f"Steering cache statistic `{key}`.")
            )
            lines.append(f"{name} {_fmt(cache[key])}")

    breakers: Mapping[str, str] = snapshot.get("breakers", {})  # type: ignore[assignment]
    if breakers:
        # Late import: repro.faults.breaker depends only on repro.errors,
        # but keeping obs import-light at module load avoids widening the
        # package's import graph for tracer-only users.
        from repro.faults.breaker import BREAKER_STATES

        name = f"{prefix}_circuit_breaker_state"
        _family(
            lines,
            name,
            "gauge",
            "Per-AP circuit breaker state (0 closed, 1 open, 2 half-open).",
        )
        for ap in sorted(breakers):
            state = breakers[ap]
            value = BREAKER_STATES.index(state) if state in BREAKER_STATES else -1
            lines.append(f'{name}{{ap="{ap}"}} {value}')

    slo: Mapping[str, Mapping[str, object]] = snapshot.get("slo", {})  # type: ignore[assignment]
    if slo:
        for metric, key, help_text in (
            ("slo_ok", "ok", "Objective compliance: 1 when within target, else 0."),
            ("slo_bad_fraction", "bad_fraction", "Observed bad-event fraction per objective."),
            ("slo_allowed_fraction", "allowed_fraction", "Error budget: allowed bad-event fraction per objective."),
            ("slo_burn_rate", "burn_rate", "Error-budget burn rate (observed / allowed bad fraction)."),
            ("slo_error_budget_remaining", "budget_remaining", "Fraction of the error budget left (1 - burn rate, floored at 0)."),
        ):
            name = f"{prefix}_{metric}"
            _family(lines, name, "gauge", help_text)
            for objective in sorted(slo):
                value = slo[objective].get(key, 0)
                rendered = _fmt(float(value)) if not isinstance(value, bool) else str(int(value))
                lines.append(f'{name}{{objective="{objective}"}} {rendered}')

    return "\n".join(lines) + "\n"
