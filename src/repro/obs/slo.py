"""Service-level objectives evaluated against live metrics snapshots.

An :class:`SloObjective` declares one promise about the serving plane —
"fix p99 latency stays under 1 s", "at least 90% of fixes succeed",
"no more than half the fixes ride the downgrade tier" — in the
error-budget form SRE practice uses: every objective reduces to an
*allowed bad-event fraction*, and the tracker measures the *observed*
bad fraction against it.

* ``kind="latency"`` objectives read a stage's duration histogram
  (Prometheus ``le`` buckets from :class:`repro.obs.histogram.Histogram`)
  and count batches slower than ``threshold_s`` as bad.  A
  "p99 <= 1 s" promise is exactly "at most 1% of batches exceed 1 s",
  so ``allowed_fraction = 1 - quantile``.
* ``kind="ratio"`` objectives read counters: bad events over total
  events (``fix.failed`` over ``fix.ok + fix.failed`` for success
  rate, ``fix.downgraded`` over all fixes for downgrade rate).

Each evaluation reports the observed bad fraction, the **burn rate**
(observed / allowed — 1.0 means the budget is being consumed exactly
as provisioned, >1 means the objective is being violated), and the
remaining error budget.  :meth:`SloTracker.evaluate` returns a plain
``{"objective": {...}}`` dict that drops into a metrics snapshot's
``slo`` section, which :func:`repro.obs.prometheus.render_prometheus`
renders as ``repro_slo_*`` gauges — so the HTTP ``/metrics`` endpoint
exposes live compliance without any extra plumbing.

Everything here is pure snapshot arithmetic: no clocks, no state, no
background threads, deterministic for a given snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SloObjective:
    """One declarative objective.

    Attributes
    ----------
    name:
        Objective identity; becomes the ``objective`` label on the
        ``repro_slo_*`` gauge families.
    kind:
        ``"latency"`` (histogram-driven) or ``"ratio"`` (counter-driven).
    allowed_fraction:
        The error budget: the bad-event fraction the objective
        tolerates.  Must be in ``(0, 1]`` — a zero budget makes burn
        rate undefined; demand perfection with a tiny budget instead.
    stage:
        Latency objectives: the stage timing to read (``"fix"``).
    threshold_s:
        Latency objectives: batches slower than this are bad events.
    bad_counters:
        Ratio objectives: counters summed into the bad-event count.
    total_counters:
        Ratio objectives: counters summed into the total-event count
        (should include the bad counters).
    """

    name: str
    kind: str
    allowed_fraction: float
    stage: str = ""
    threshold_s: float = 0.0
    bad_counters: Tuple[str, ...] = ()
    total_counters: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "ratio"):
            raise ConfigurationError(
                f"SLO kind must be 'latency' or 'ratio', got {self.kind!r}"
            )
        if not 0.0 < self.allowed_fraction <= 1.0:
            raise ConfigurationError(
                f"allowed_fraction must be in (0, 1], got {self.allowed_fraction}"
            )
        if self.kind == "latency" and (not self.stage or self.threshold_s <= 0.0):
            raise ConfigurationError(
                "latency objectives need a stage and a positive threshold_s"
            )
        if self.kind == "ratio" and (not self.bad_counters or not self.total_counters):
            raise ConfigurationError(
                "ratio objectives need bad_counters and total_counters"
            )


def latency_objective(
    name: str, stage: str, threshold_s: float, quantile: float = 0.99
) -> SloObjective:
    """Promise ``stage``'s ``quantile`` duration stays <= ``threshold_s``."""
    if not 0.0 < quantile < 1.0:
        raise ConfigurationError(f"quantile must be in (0, 1), got {quantile}")
    return SloObjective(
        name=name,
        kind="latency",
        stage=stage,
        threshold_s=threshold_s,
        allowed_fraction=1.0 - quantile,
    )


def success_rate_objective(
    name: str,
    target: float,
    bad_counters: Sequence[str] = ("fix.failed",),
    total_counters: Sequence[str] = ("fix.ok", "fix.failed"),
) -> SloObjective:
    """Promise at least ``target`` of events succeed (e.g. 0.9 = 90%)."""
    if not 0.0 < target < 1.0:
        raise ConfigurationError(f"target must be in (0, 1), got {target}")
    return SloObjective(
        name=name,
        kind="ratio",
        allowed_fraction=1.0 - target,
        bad_counters=tuple(bad_counters),
        total_counters=tuple(total_counters),
    )


def rate_objective(
    name: str,
    max_fraction: float,
    bad_counters: Sequence[str],
    total_counters: Sequence[str],
) -> SloObjective:
    """Promise ``bad_counters`` stay under ``max_fraction`` of the total."""
    return SloObjective(
        name=name,
        kind="ratio",
        allowed_fraction=max_fraction,
        bad_counters=tuple(bad_counters),
        total_counters=tuple(total_counters),
    )


def _latency_bad_fraction(
    objective: SloObjective, timings: Mapping[str, Mapping[str, object]]
) -> Tuple[float, int]:
    """(bad fraction, total batches) for a latency objective.

    Uses the histogram's ``le`` buckets: an observation is provably
    within threshold when its bucket's upper bound is <= threshold, so
    the bad count is total minus those — conservative by at most one
    bucket's width (log-spaced, ~1.6x).
    """
    timing = timings.get(objective.stage)
    if not timing:
        return 0.0, 0
    hist = timing.get("histogram")
    if not isinstance(hist, Mapping):
        return 0.0, 0
    bounds = [float(b) for b in hist.get("bounds", [])]  # type: ignore[union-attr]
    counts = [int(c) for c in hist.get("counts", [])]  # type: ignore[union-attr]
    total = sum(counts) + int(hist.get("overflow", 0))  # type: ignore[union-attr, call-overload]
    if total == 0:
        return 0.0, 0
    within = sum(
        count for bound, count in zip(bounds, counts) if bound <= objective.threshold_s
    )
    return (total - within) / total, total


def _ratio_bad_fraction(
    objective: SloObjective, counters: Mapping[str, int]
) -> Tuple[float, int]:
    """(bad fraction, total events) for a ratio objective."""
    bad = sum(int(counters.get(name, 0)) for name in objective.bad_counters)
    total = sum(int(counters.get(name, 0)) for name in objective.total_counters)
    if total == 0:
        return 0.0, 0
    return bad / total, total


class SloTracker:
    """Evaluates a set of objectives against metrics snapshots.

    Stateless between calls: every :meth:`evaluate` reads one snapshot
    and returns one verdict per objective, so the tracker can be shared
    by the HTTP endpoint, the CLI, and tests without synchronization.
    """

    def __init__(self, objectives: Sequence[SloObjective] = ()) -> None:
        names = [o.name for o in objectives]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate SLO objective names: {names}")
        self.objectives = tuple(objectives)

    @classmethod
    def default_objectives(
        cls,
        fix_p99_s: float = 2.0,
        min_success_rate: float = 0.9,
        max_downgrade_fraction: float = 0.5,
    ) -> "SloTracker":
        """The serving plane's stock promises.

        * ``fix-latency-p99`` — 99% of fix computations finish within
          ``fix_p99_s`` seconds (default 2 s: ~3x the measured 1-shard
          fix p50 of ~0.33 s, room for the 2-shard ~0.65 s p50).
        * ``fix-success`` — at least ``min_success_rate`` of attempted
          fixes produce a location (the chaos gate's 90% contract).
        * ``fix-downgrade`` — at most ``max_downgrade_fraction`` of
          fixes are served on a downgraded estimator tier.
        """
        return cls(
            (
                latency_objective("fix-latency-p99", "fix", fix_p99_s, quantile=0.99),
                success_rate_objective("fix-success", min_success_rate),
                rate_objective(
                    "fix-downgrade",
                    max_downgrade_fraction,
                    bad_counters=("fix.downgraded",),
                    total_counters=("fix.ok", "fix.failed"),
                ),
            )
        )

    def evaluate(self, snapshot: Mapping[str, object]) -> Dict[str, Dict[str, object]]:
        """Evaluate every objective against one metrics snapshot.

        Returns ``{objective_name: {ok, bad_fraction, allowed_fraction,
        burn_rate, budget_remaining, events}}`` — the shape
        :func:`~repro.obs.prometheus.render_prometheus` renders from a
        snapshot's ``slo`` section.  An objective with zero observed
        events is vacuously compliant (burn rate 0).
        """
        counters: Mapping[str, int] = snapshot.get("counters", {})  # type: ignore[assignment]
        timings: Mapping[str, Mapping[str, object]] = snapshot.get("timings", {})  # type: ignore[assignment]
        verdicts: Dict[str, Dict[str, object]] = {}
        for objective in self.objectives:
            if objective.kind == "latency":
                bad_fraction, events = _latency_bad_fraction(objective, timings)
            else:
                bad_fraction, events = _ratio_bad_fraction(objective, counters)
            burn_rate = bad_fraction / objective.allowed_fraction
            verdicts[objective.name] = {
                "ok": bad_fraction <= objective.allowed_fraction,
                "bad_fraction": bad_fraction,
                "allowed_fraction": objective.allowed_fraction,
                "burn_rate": burn_rate,
                "budget_remaining": max(0.0, 1.0 - burn_rate),
                "events": events,
            }
        return verdicts

    def attach(self, snapshot: Dict[str, object]) -> Dict[str, object]:
        """Return ``snapshot`` with its ``slo`` section filled in."""
        snapshot["slo"] = self.evaluate(snapshot)
        return snapshot
