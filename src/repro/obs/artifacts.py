"""Stage artifact capture: downsampled pseudospectra and cluster stats.

mD-Track-style per-stage diagnostic artifacts — what the pseudospectrum
looked like, how tight each (AoA, ToF) cluster was — are the primary
debugging tool for super-resolution estimators: a bad fix traced with
``ObsConfig(capture_artifacts=True)`` carries enough state to see
*which* stage degraded it without re-running the pipeline.

Artifacts are plain JSON-serializable dicts sized for trace spans: the
full A x T MUSIC pseudospectrum (hundreds of grid points per axis) is
strided down to at most ``max_bins`` per axis and converted to dB.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np


def downsample_spectrum(
    spectrum: np.ndarray,
    aoa_grid_deg: np.ndarray,
    tof_grid_s: np.ndarray,
    max_bins: int = 32,
) -> Dict[str, object]:
    """Strided, dB-scaled view of a MUSIC pseudospectrum for a trace span.

    Returns ``{"aoa_deg": [...], "tof_ns": [...], "power_db": [[...]]}``
    with at most ``max_bins`` entries per axis.  Striding (rather than
    averaging) keeps peak positions honest at reduced resolution.
    """
    spectrum = np.asarray(spectrum, dtype=float)
    aoa = np.asarray(aoa_grid_deg, dtype=float)
    tof = np.asarray(tof_grid_s, dtype=float)
    row_step = max(1, int(np.ceil(spectrum.shape[0] / max_bins)))
    col_step = max(1, int(np.ceil(spectrum.shape[1] / max_bins)))
    small = spectrum[::row_step, ::col_step]
    with np.errstate(divide="ignore"):
        power_db = 10.0 * np.log10(np.maximum(small, np.finfo(float).tiny))
    return {
        "aoa_deg": [round(float(v), 2) for v in aoa[::row_step]],
        "tof_ns": [round(float(v) * 1e9, 3) for v in tof[::col_step]],
        "power_db": [[round(float(v), 2) for v in row] for row in power_db],
    }


def cluster_summary(clusters: Sequence, likelihoods: Sequence[float] = ()) -> List[Dict[str, float]]:
    """Per-cluster (AoA, ToF) statistics for the ``cluster`` span.

    ``clusters`` are :class:`~repro.core.clustering.PathCluster` values;
    ``likelihoods``, when given, align with them (Eq. 8 outputs).
    """
    out: List[Dict[str, float]] = []
    for i, cluster in enumerate(clusters):
        entry = {
            "mean_aoa_deg": round(float(cluster.mean_aoa_deg), 3),
            "mean_tof_ns": round(float(cluster.mean_tof_s) * 1e9, 4),
            "std_aoa_deg": round(float(np.sqrt(cluster.var_aoa_deg2)), 4),
            "std_tof_ns": round(float(np.sqrt(cluster.var_tof_s2)) * 1e9, 4),
            "count": int(cluster.count),
            "mean_power": float(cluster.mean_power),
        }
        if i < len(likelihoods):
            entry["likelihood"] = round(float(likelihoods[i]), 5)
        out.append(entry)
    return out
