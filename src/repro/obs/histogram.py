"""Fixed-bucket log-scale histograms with quantile estimation.

The runtime metrics used to keep ``[count, total, max]`` per stage,
which answers "how slow on average" but not "how slow at the tail" —
and tail latency is what a serving deployment actually provisions for.
A :class:`Histogram` keeps a fixed array of log-spaced bucket counters
instead: observation is O(log B), memory is constant, quantiles come
from linear interpolation inside the covering bucket, and two
histograms with the same bounds merge by adding counters — which is
what lets :class:`~repro.runtime.executor.ParallelExecutor` workers
ship their per-item timings back to the parent process exactly.

Buckets are *upper* bounds (Prometheus ``le`` semantics): observation
``v`` lands in the first bucket with ``v <= bound``; anything above the
last bound lands in the implicit ``+Inf`` overflow bucket.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError


def log_buckets(start: float, factor: float, count: int) -> Tuple[float, ...]:
    """``count`` log-spaced upper bounds: ``start * factor**i``.

    ``log_buckets(1e-6, 4.0, 14)`` spans 1 microsecond to ~67 seconds —
    the default timing range, two buckets per decade.
    """
    if start <= 0:
        raise ConfigurationError(f"bucket start must be > 0, got {start}")
    if factor <= 1:
        raise ConfigurationError(f"bucket factor must be > 1, got {factor}")
    if count < 1:
        raise ConfigurationError(f"bucket count must be >= 1, got {count}")
    return tuple(start * factor**i for i in range(count))


#: Default timing buckets: 1 us .. ~67 s, a factor of 4 per bucket.
DEFAULT_TIMING_BUCKETS = log_buckets(1e-6, 4.0, 14)


class Histogram:
    """Counter-per-bucket histogram over fixed upper bounds.

    Not thread-safe by itself; :class:`~repro.runtime.metrics.RuntimeMetrics`
    guards its histograms with its own lock.  All state is plain data so
    instances pickle cleanly across process boundaries.
    """

    __slots__ = ("bounds", "counts", "overflow", "total", "sum", "max", "min")

    def __init__(self, bounds: Sequence[float] = DEFAULT_TIMING_BUCKETS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ConfigurationError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"bucket bounds must be strictly increasing, got {bounds}"
            )
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.overflow = 0  # the +Inf bucket
        self.total = 0
        self.sum = 0.0
        self.max = 0.0
        self.min = float("inf")

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = bisect_left(self.bounds, value)
        if index >= len(self.bounds):
            self.overflow += 1
        else:
            self.counts[index] += 1
        self.total += 1
        self.sum += value
        if value > self.max:
            self.max = value
        if value < self.min:
            self.min = value

    def merge(self, other: "Histogram") -> None:
        """Add ``other``'s counters into this histogram (exact, in place).

        Both histograms must share identical bucket bounds — merging is
        how worker processes' per-item timings aggregate into the parent
        snapshot, and mismatched bounds would silently misbucket.
        """
        if other.bounds != self.bounds:
            raise ConfigurationError(
                "cannot merge histograms with different bucket bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.overflow += other.overflow
        self.total += other.total
        self.sum += other.sum
        self.max = max(self.max, other.max)
        self.min = min(self.min, other.min)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        """Arithmetic mean of every observation (0.0 when empty)."""
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 < q <= 1) by in-bucket interpolation.

        The covering bucket is found from the cumulative counts; the
        estimate interpolates linearly between the bucket's lower and
        upper bound.  Observations in the ``+Inf`` overflow bucket are
        estimated with the recorded maximum.  Returns 0.0 when empty.
        """
        if not 0.0 < q <= 1.0:
            raise ConfigurationError(f"quantile must be in (0, 1], got {q}")
        if self.total == 0:
            return 0.0
        rank = q * self.total
        cumulative = 0
        for i, count in enumerate(self.counts):
            if count == 0:
                continue
            if cumulative + count >= rank:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i]
                # Clamp to what was actually seen so a single observation
                # reports itself, not its bucket's upper bound.
                lo = max(lo, min(self.min, hi))
                hi = min(hi, self.max)
                fraction = (rank - cumulative) / count
                return lo + (hi - lo) * fraction
            cumulative += count
        return self.max

    def quantiles(self, qs: Sequence[float] = (0.5, 0.9, 0.99)) -> Dict[str, float]:
        """``{"p50": ..., "p90": ..., "p99": ...}`` style summary."""
        return {f"p{int(q * 100)}": self.quantile(q) for q in qs}

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending with +Inf.

        This is exactly the Prometheus ``le`` series shape.
        """
        out: List[Tuple[float, int]] = []
        cumulative = 0
        for bound, count in zip(self.bounds, self.counts):
            cumulative += count
            out.append((bound, cumulative))
        out.append((float("inf"), cumulative + self.overflow))
        return out

    # ------------------------------------------------------------------
    # Serialization (worker -> parent, snapshot -> exposition)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-data form for snapshots and cross-process shipping."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "overflow": self.overflow,
            "total": self.total,
            "sum": self.sum,
            "max": self.max,
            "min": self.min if self.total else 0.0,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Histogram":
        """Rebuild a histogram produced by :meth:`to_dict`."""
        hist = cls(bounds=data["bounds"])  # type: ignore[arg-type]
        hist.counts = [int(c) for c in data["counts"]]  # type: ignore[index]
        hist.overflow = int(data["overflow"])
        hist.total = int(data["total"])
        hist.sum = float(data["sum"])
        hist.max = float(data["max"])
        hist.min = float(data["min"]) if hist.total else float("inf")
        return hist

    def copy(self) -> "Histogram":
        """Independent deep copy (snapshots must not alias live counters)."""
        clone = Histogram(self.bounds)
        clone.counts = list(self.counts)
        clone.overflow = self.overflow
        clone.total = self.total
        clone.sum = self.sum
        clone.max = self.max
        clone.min = self.min
        return clone

    def __len__(self) -> int:
        return self.total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram(total={self.total}, mean={self.mean:.3g}, "
            f"max={self.max:.3g}, buckets={len(self.bounds)})"
        )
