"""Hierarchical tracing: spans, exporters, and the no-op fast path.

A :class:`Tracer` produces one :class:`Span` tree per top-level
operation — for SpotFi, ``locate > ap[k] > sanitize|smooth|music|cluster
> solve`` — with wall-clock timing and free-form attributes (packet
counts, cluster likelihoods, the chosen direct-path AoA, solver
iterations/residuals).  Finished root spans land in an in-memory ring
buffer and are handed to every registered exporter, e.g. a
:class:`JsonlSpanExporter` writing one JSON object per line.

The default tracer everywhere is :data:`NOOP_TRACER`: its ``span()``
returns a shared inert handle whose ``__enter__``/``__exit__``/``set``
do nothing, so instrumented code paths cost a single attribute lookup
when tracing is off.  ``benchmarks/bench_obs_overhead.py`` asserts that
this stays below the regression budget.

Span identity is deterministic (a per-tracer counter, no RNG, no
global clock dependency beyond ``time.time`` for the start stamp), so
replaying a dataset produces byte-comparable traces modulo timing.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from types import TracebackType
from typing import IO, Any, Dict, Iterator, List, Optional, Sequence, Type, Union

from repro.errors import ConfigurationError
from repro.obs.config import ObsConfig


@dataclass
class Span:
    """One timed operation in a trace tree.

    Attributes
    ----------
    name:
        Operation name (``locate``, ``ap[0]``, ``music``...).
    span_id:
        Identifier unique within the tracer (``s1``, ``s2``...).
    parent_id:
        Enclosing span's id, or None for a root span.
    trace_id:
        Root span's id, shared by the whole tree.
    start_time_s:
        Wall-clock start (``time.time`` epoch seconds).
    duration_s:
        Elapsed monotonic time (``time.perf_counter`` based).
    status:
        ``"ok"``, or ``"error"`` when the body raised.
    attributes:
        Free-form JSON-serializable key/value pairs.
    children:
        Child spans in start order.
    """

    name: str
    span_id: str
    parent_id: Optional[str]
    trace_id: str
    start_time_s: float
    duration_s: float = 0.0
    status: str = "ok"
    attributes: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    # -- recording -----------------------------------------------------
    def set(self, key: str, value: Any) -> None:
        """Attach one attribute to the span."""
        self.attributes[key] = value

    def set_many(self, **attributes: Any) -> None:
        """Attach several attributes at once."""
        self.attributes.update(attributes)

    # -- reading -------------------------------------------------------
    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def find(self, name: str) -> List["Span"]:
        """Every span in the tree (including self) with the given name."""
        return [s for s in self.iter_spans() if s.name == name]

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form; inverse of :func:`span_from_dict`."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "start_time_s": self.start_time_s,
            "duration_s": self.duration_s,
            "status": self.status,
            "attributes": dict(self.attributes),
            "children": [c.to_dict() for c in self.children],
        }


def span_from_dict(data: Dict[str, Any]) -> Span:
    """Rebuild a :class:`Span` tree from :meth:`Span.to_dict` output."""
    return Span(
        name=data["name"],
        span_id=data["span_id"],
        parent_id=data.get("parent_id"),
        trace_id=data["trace_id"],
        start_time_s=float(data["start_time_s"]),
        duration_s=float(data["duration_s"]),
        status=data.get("status", "ok"),
        attributes=dict(data.get("attributes", {})),
        children=[span_from_dict(c) for c in data.get("children", [])],
    )


class SpanExporter:
    """Interface: receives every finished *root* span."""

    def export(self, span: Span) -> None:
        """Persist or forward one finished root span (subclasses override)."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any resources (default: nothing to do)."""


class JsonlSpanExporter(SpanExporter):
    """Write each finished root span as one JSON line.

    Accepts a path (opened lazily, append mode) or an open text stream.
    Lines round-trip through :func:`load_spans`.
    """

    def __init__(self, path_or_stream: Union[str, "os.PathLike[str]", IO[str]]) -> None:
        if hasattr(path_or_stream, "write"):
            self._stream: Optional[IO[str]] = path_or_stream
            self._path = None
            self._owns_stream = False
        else:
            self._stream = None
            self._path = str(path_or_stream)
            self._owns_stream = True

    def export(self, span: Span) -> None:
        """Append ``span`` (with its whole subtree) as one JSONL record."""
        if self._stream is None:
            self._stream = open(self._path, "a", encoding="utf-8")
        json.dump(span.to_dict(), self._stream, separators=(",", ":"))
        self._stream.write("\n")
        self._stream.flush()

    def close(self) -> None:
        """Close the underlying file if this exporter opened it."""
        if self._owns_stream and self._stream is not None:
            self._stream.close()
            self._stream = None


def load_spans(path: Union[str, "os.PathLike[str]"]) -> List[Span]:
    """Read every root span from a :class:`JsonlSpanExporter` file."""
    spans = []
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                spans.append(span_from_dict(json.loads(line)))
    return spans


class _ActiveSpan:
    """Context-manager handle for one live span of a real tracer."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute to the underlying span."""
        self.span.set(key, value)

    def set_many(self, **attributes: Any) -> None:
        """Attach several attributes to the underlying span."""
        self.span.set_many(**attributes)

    def __enter__(self) -> "_ActiveSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if exc_type is not None:
            self.span.status = "error"
            self.span.attributes.setdefault("error", exc_type.__name__)
        self._tracer._finish(self.span)


class _NoopSpan:
    """Shared inert span handle: every operation is a no-op."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        """Discard the attribute (tracing is off)."""

    def set_many(self, **attributes: Any) -> None:
        """Discard the attributes (tracing is off)."""

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Produces hierarchical spans with an in-memory ring of finished roots.

    Thread-safe: each thread keeps its own span stack (a ``locate`` on
    thread A never adopts thread B's spans as children), while the
    finished-span ring and exporters are shared under a lock.

    Parameters
    ----------
    config:
        :class:`~repro.obs.config.ObsConfig`; controls the ring size and
        whether the pipeline captures stage artifacts.
    exporters:
        :class:`SpanExporter` instances receiving every finished root.
    """

    enabled = True

    def __init__(
        self,
        config: Optional[ObsConfig] = None,
        exporters: Sequence[SpanExporter] = (),
    ) -> None:
        self.config = config or ObsConfig()
        self.exporters = list(exporters)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._finished: "deque[Span]" = deque(maxlen=self.config.max_finished_spans)
        self._next_id = 0

    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any) -> _ActiveSpan:
        """Open a span; use as a context manager.

        The span nests under the innermost span currently open on this
        thread; closing it appends it to its parent (or, for a root, to
        the ring buffer and every exporter).
        """
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            self._next_id += 1
            span_id = f"s{self._next_id}"
        span = Span(
            name=name,
            span_id=span_id,
            parent_id=parent.span_id if parent is not None else None,
            trace_id=parent.trace_id if parent is not None else span_id,
            start_time_s=time.time(),
            attributes=dict(attributes),
        )
        span._started_perf = time.perf_counter()  # type: ignore[attr-defined]
        stack.append(span)
        return _ActiveSpan(self, span)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _finish(self, span: Span) -> None:
        stack = self._stack()
        if not stack or stack[-1] is not span:
            raise ConfigurationError(
                f"span {span.name!r} closed out of order; open stack: "
                f"{[s.name for s in stack]}"
            )
        span.duration_s = time.perf_counter() - span._started_perf  # type: ignore[attr-defined]
        del span._started_perf  # type: ignore[attr-defined]
        stack.pop()
        if stack:
            stack[-1].children.append(span)
            return
        with self._lock:
            self._finished.append(span)
            exporters = list(self.exporters)
        for exporter in exporters:
            exporter.export(span)

    # ------------------------------------------------------------------
    def finished_spans(self) -> List[Span]:
        """Finished root spans, oldest first (bounded by the ring size)."""
        with self._lock:
            return list(self._finished)

    def clear(self) -> None:
        """Drop every buffered finished span."""
        with self._lock:
            self._finished.clear()

    def close(self) -> None:
        """Close every exporter."""
        for exporter in self.exporters:
            exporter.close()


class NoopTracer:
    """The zero-cost default: ``span()`` returns a shared inert handle.

    ``enabled`` is False so instrumented call sites can skip building
    attribute dicts entirely (``if tracer.enabled: ...``); even without
    that guard, entering a no-op span is a few attribute lookups.
    """

    enabled = False
    config = ObsConfig()

    def span(self, name: str, **attributes: Any) -> _NoopSpan:
        """Return the shared no-op span handle."""
        return _NOOP_SPAN

    def finished_spans(self) -> List[Span]:
        """Always empty: nothing is recorded."""
        return []

    def clear(self) -> None:
        """Nothing to clear."""

    def close(self) -> None:
        """Nothing to close."""


#: Shared no-op tracer; the default for every instrumented component.
NOOP_TRACER = NoopTracer()


def format_span_tree(span: Span, indent: int = 0, _lines: Optional[List[str]] = None) -> str:
    """Render a span tree as an indented text outline.

    Durations are shown in milliseconds; attributes inline, arrays
    elided to their shapes so artifact-laden spans stay readable.
    """
    lines: List[str] = [] if _lines is None else _lines
    attrs = []
    for key, value in span.attributes.items():
        if isinstance(value, dict):
            attrs.append(f"{key}=<{len(value)}-key artifact>")
        elif isinstance(value, (list, tuple)) and len(value) > 6:
            attrs.append(f"{key}=<{len(value)} items>")
        elif isinstance(value, list) and any(isinstance(v, dict) for v in value):
            attrs.append(f"{key}=<{len(value)} records>")
        elif isinstance(value, float):
            attrs.append(f"{key}={value:.4g}")
        else:
            attrs.append(f"{key}={value}")
    suffix = f"  [{', '.join(attrs)}]" if attrs else ""
    marker = "" if span.status == "ok" else f"  !{span.status}"
    lines.append(
        f"{'  ' * indent}{span.name:<{max(1, 24 - 2 * indent)}} "
        f"{span.duration_s * 1e3:9.2f} ms{marker}{suffix}"
    )
    for child in span.children:
        format_span_tree(child, indent + 1, lines)
    return "\n".join(lines)
