"""Hierarchical tracing: spans, exporters, sampling, and propagation.

A :class:`Tracer` produces one :class:`Span` tree per top-level
operation — for SpotFi, ``locate > ap[k] > sanitize|smooth|music|cluster
> solve`` — with wall-clock timing and free-form attributes (packet
counts, cluster likelihoods, the chosen direct-path AoA, solver
iterations/residuals).  Finished root spans land in an in-memory ring
buffer and are handed to every registered exporter, e.g. a
:class:`JsonlSpanExporter` writing one JSON object per line.

The default tracer everywhere is :data:`NOOP_TRACER`: its ``span()``
returns a shared inert handle whose ``__enter__``/``__exit__``/``set``
do nothing, so instrumented code paths cost a single attribute lookup
when tracing is off.  ``benchmarks/bench_obs_overhead.py`` asserts that
this stays below the regression budget.

Two features make traces usable across a sharded cluster:

* **Head-based sampling** — ``ObsConfig(sample_rate=)`` keeps that
  fraction of root spans.  The decision is made once, when the root
  opens, by a stratified counter (root *i* is kept iff
  ``floor(i * rate)`` advances — no RNG, so replays sample the same
  roots), and applies to the whole tree: children of an unsampled root
  are discarded without becoming accidental new roots.
* **Trace-context propagation** — :meth:`Tracer.current_context`
  captures the innermost open span as a :class:`TraceContext`
  (trace_id, parent span_id, sampled flag) that travels over the
  :mod:`repro.dist` wire protocol; :meth:`Tracer.span` accepts it via
  ``trace_context=`` so a shard-side root adopts the router's trace_id
  and parent.  Give each process a distinct ``service`` name
  (``Tracer(service="shard0")``) and span ids become cluster-unique.

Span identity is deterministic (a per-tracer counter, no RNG, no
global clock dependency beyond ``time.time`` for the start stamp), so
replaying a dataset produces byte-comparable traces modulo timing.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from types import TracebackType
from typing import IO, Any, Dict, Iterator, List, Optional, Sequence, Type, Union

from repro.errors import ConfigurationError
from repro.obs.config import ObsConfig


@dataclass
class Span:
    """One timed operation in a trace tree.

    Attributes
    ----------
    name:
        Operation name (``locate``, ``ap[0]``, ``music``...).
    span_id:
        Identifier unique within the tracer (``s1``, ``s2``..., or
        ``shard0-s1``... when the tracer has a ``service`` name).
    parent_id:
        Enclosing span's id, or None for a root span.  A root opened
        with a remote :class:`TraceContext` keeps the remote span's id
        here, so the collector can stitch trees across processes.
    trace_id:
        Root span's id, shared by the whole tree (and, under
        propagation, by every tree in the distributed trace).
    start_time_s:
        Wall-clock start (``time.time`` epoch seconds).
    duration_s:
        Elapsed monotonic time (``time.perf_counter`` based).
    status:
        ``"ok"``, or ``"error"`` when the body raised.
    attributes:
        Free-form JSON-serializable key/value pairs.
    children:
        Child spans in start order.
    """

    name: str
    span_id: str
    parent_id: Optional[str]
    trace_id: str
    start_time_s: float
    duration_s: float = 0.0
    status: str = "ok"
    attributes: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    # -- recording -----------------------------------------------------
    def set(self, key: str, value: Any) -> None:
        """Attach one attribute to the span."""
        self.attributes[key] = value

    def set_many(self, **attributes: Any) -> None:
        """Attach several attributes at once."""
        self.attributes.update(attributes)

    # -- reading -------------------------------------------------------
    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def find(self, name: str) -> List["Span"]:
        """Every span in the tree (including self) with the given name."""
        return [s for s in self.iter_spans() if s.name == name]

    @property
    def end_time_s(self) -> float:
        """Wall-clock end estimate: start plus the measured duration."""
        return self.start_time_s + self.duration_s

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form; inverse of :func:`span_from_dict`."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "start_time_s": self.start_time_s,
            "duration_s": self.duration_s,
            "status": self.status,
            "attributes": dict(self.attributes),
            "children": [c.to_dict() for c in self.children],
        }


def span_from_dict(data: Dict[str, Any]) -> Span:
    """Rebuild a :class:`Span` tree from :meth:`Span.to_dict` output."""
    return Span(
        name=data["name"],
        span_id=data["span_id"],
        parent_id=data.get("parent_id"),
        trace_id=data["trace_id"],
        start_time_s=float(data["start_time_s"]),
        duration_s=float(data["duration_s"]),
        status=data.get("status", "ok"),
        attributes=dict(data.get("attributes", {})),
        children=[span_from_dict(c) for c in data.get("children", [])],
    )


def clamp_span_tree(span: Span) -> Span:
    """Clamp every descendant to its parent's ``[start, end]`` window.

    ``start_time_s`` comes from ``time.time`` while ``duration_s`` is
    ``time.perf_counter``-based, so under wall-clock adjustment (NTP
    step, VM resume) a child's reconstructed interval can poke outside
    its parent's.  Consumers that sort or plot by timestamp then see
    impossible trees, so exporters and the finished-span ring clamp at
    export time: a child's start is raised to its parent's start and
    its end lowered to its parent's end (duration floors at zero).
    Mutates ``span`` in place and returns it.
    """
    for child in span.children:
        start = max(child.start_time_s, span.start_time_s)
        end = min(child.end_time_s, span.end_time_s)
        child.start_time_s = start
        child.duration_s = max(0.0, end - start)
        clamp_span_tree(child)
    return span


@dataclass(frozen=True)
class TraceContext:
    """Portable trace coordinates: what crosses a process boundary.

    ``sampled=False`` contexts deliberately carry empty ids — the
    decision *not* to record still has to propagate, otherwise a
    downstream tracer would start a fresh (sampled) trace for work the
    head already voted to drop.
    """

    trace_id: str
    span_id: str
    sampled: bool = True

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form for the wire's JSON control plane."""
        return {"trace_id": self.trace_id, "span_id": self.span_id, "sampled": self.sampled}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceContext":
        """Tolerant inverse of :meth:`to_dict` (unknown keys ignored)."""
        return cls(
            trace_id=str(data.get("trace_id", "")),
            span_id=str(data.get("span_id", "")),
            sampled=bool(data.get("sampled", True)),
        )


class SpanExporter:
    """Interface: receives every finished *root* span."""

    def export(self, span: Span) -> None:
        """Persist or forward one finished root span (subclasses override)."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any resources (default: nothing to do)."""


class JsonlSpanExporter(SpanExporter):
    """Write each finished root span as one JSON line.

    Accepts a path (opened lazily, append mode) or an open text stream.
    Lines round-trip through :func:`load_spans`.
    """

    def __init__(self, path_or_stream: Union[str, "os.PathLike[str]", IO[str]]) -> None:
        if hasattr(path_or_stream, "write"):
            self._stream: Optional[IO[str]] = path_or_stream  # type: ignore[assignment]
            self._path: Optional[str] = None
            self._owns_stream = False
        else:
            self._stream = None
            self._path = str(path_or_stream)
            self._owns_stream = True

    def export(self, span: Span) -> None:
        """Append ``span`` (with its whole subtree) as one JSONL record."""
        if self._stream is None:
            assert self._path is not None
            self._stream = open(self._path, "a", encoding="utf-8")
        json.dump(span.to_dict(), self._stream, separators=(",", ":"))
        self._stream.write("\n")
        self._stream.flush()

    def close(self) -> None:
        """Close the underlying file if this exporter opened it."""
        if self._owns_stream and self._stream is not None:
            self._stream.close()
            self._stream = None


def load_spans(path: Union[str, "os.PathLike[str]"]) -> List[Span]:
    """Read every root span from a :class:`JsonlSpanExporter` file."""
    spans = []
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                spans.append(span_from_dict(json.loads(line)))
    return spans


class _ActiveSpan:
    """Context-manager handle for one live span of a real tracer."""

    __slots__ = ("_tracer", "span")

    #: This handle records: attributes and children are kept.
    recording = True

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute to the underlying span."""
        self.span.set(key, value)

    def set_many(self, **attributes: Any) -> None:
        """Attach several attributes to the underlying span."""
        self.span.set_many(**attributes)

    def __enter__(self) -> "_ActiveSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if exc_type is not None:
            self.span.status = "error"
            self.span.attributes.setdefault("error", exc_type.__name__)
        self._tracer._finish(self.span)


class _NoopSpan:
    """Shared inert span handle: every operation is a no-op."""

    __slots__ = ()

    #: Nothing is recorded; call sites may skip attribute building.
    recording = False

    def set(self, key: str, value: Any) -> None:
        """Discard the attribute (tracing is off)."""

    def set_many(self, **attributes: Any) -> None:
        """Discard the attributes (tracing is off)."""

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class _UnsampledSpan:
    """Handle for a span inside a sampled-out trace.

    Behaves like :class:`_NoopSpan` (nothing recorded) but keeps the
    tracer's per-thread unsampled depth balanced, so nested ``span()``
    calls under an unsampled root are also discarded instead of opening
    fresh roots, and sampling resumes once the tree unwinds.
    """

    __slots__ = ("_tracer",)

    recording = False

    def __init__(self, tracer: "Tracer") -> None:
        self._tracer = tracer

    def set(self, key: str, value: Any) -> None:
        """Discard the attribute (this trace was sampled out)."""

    def set_many(self, **attributes: Any) -> None:
        """Discard the attributes (this trace was sampled out)."""

    def __enter__(self) -> "_UnsampledSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self._tracer._exit_unsampled()


#: Union of every handle ``Tracer.span`` may return.
SpanHandle = Union[_ActiveSpan, _UnsampledSpan, _NoopSpan]


class Tracer:
    """Produces hierarchical spans with an in-memory ring of finished roots.

    Thread-safe: each thread keeps its own span stack (a ``locate`` on
    thread A never adopts thread B's spans as children), while the
    finished-span ring and exporters are shared under a lock.

    Parameters
    ----------
    config:
        :class:`~repro.obs.config.ObsConfig`; controls the ring size,
        the head sampling rate, and whether the pipeline captures stage
        artifacts.
    exporters:
        :class:`SpanExporter` instances receiving every finished root.
    service:
        Optional process identity prefixed onto span ids
        (``shard0-s1``) so traces merged from several processes never
        collide.  Empty (the default) keeps the compact ``s1`` ids.
    """

    enabled = True

    def __init__(
        self,
        config: Optional[ObsConfig] = None,
        exporters: Sequence[SpanExporter] = (),
        service: str = "",
    ) -> None:
        self.config = config or ObsConfig()
        self.exporters = list(exporters)
        self.service = service
        self._lock = threading.Lock()
        self._local = threading.local()
        self._finished: "deque[Span]" = deque(maxlen=self.config.max_finished_spans)
        self._next_id = 0
        self._root_count = 0

    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        trace_context: Optional[TraceContext] = None,
        **attributes: Any,
    ) -> SpanHandle:
        """Open a span; use as a context manager.

        The span nests under the innermost span currently open on this
        thread; closing it appends it to its parent (or, for a root, to
        the ring buffer and every exporter).  A root opened while the
        head sampler votes "drop" returns an inert handle instead —
        check ``.recording`` to skip expensive attribute capture.

        ``trace_context`` (roots only; ignored when a parent span is
        open) adopts a remote trace: the new root joins the context's
        trace_id under its span_id, and inherits its sampling decision.
        """
        if self._unsampled_depth() > 0:
            self._enter_unsampled()
            return _UnsampledSpan(self)
        stack = self._stack()
        parent = stack[-1] if stack else None
        if parent is None and not self._sample_root(trace_context):
            self._enter_unsampled()
            return _UnsampledSpan(self)
        remote = trace_context if parent is None else None
        if remote is not None and not remote.trace_id:
            remote = None
        with self._lock:
            self._next_id += 1
            span_id = f"{self.service}-s{self._next_id}" if self.service else f"s{self._next_id}"
        if parent is not None:
            parent_id: Optional[str] = parent.span_id
            trace_id = parent.trace_id
        elif remote is not None:
            parent_id = remote.span_id or None
            trace_id = remote.trace_id
        else:
            parent_id = None
            trace_id = span_id
        span = Span(
            name=name,
            span_id=span_id,
            parent_id=parent_id,
            trace_id=trace_id,
            start_time_s=time.time(),
            attributes=dict(attributes),
        )
        span._started_perf = time.perf_counter()  # type: ignore[attr-defined]
        stack.append(span)
        return _ActiveSpan(self, span)

    @property
    def recording(self) -> bool:
        """Would work done now on this thread be captured?

        False only while the thread is inside a sampled-out trace.
        Instrumented hot paths use this (and the matching attribute on
        span handles) to skip diagnostic-only work — e.g. the pipeline
        falls back to the fast executor fan-out for unsampled fixes.
        """
        return self._unsampled_depth() == 0

    def current_context(self) -> Optional[TraceContext]:
        """Trace coordinates of this thread's innermost open span.

        Returns a ``sampled=False`` context (empty ids) when the thread
        is inside a sampled-out trace — callers should still propagate
        it so downstream tracers honor the head's decision — and None
        when no span is open at all.
        """
        if self._unsampled_depth() > 0:
            return TraceContext(trace_id="", span_id="", sampled=False)
        stack = self._stack()
        if not stack:
            return None
        top = stack[-1]
        return TraceContext(trace_id=top.trace_id, span_id=top.span_id, sampled=True)

    # -- sampling ------------------------------------------------------
    def _sample_root(self, trace_context: Optional[TraceContext]) -> bool:
        """Head decision for a new root: remote verdict, else the counter."""
        if trace_context is not None:
            return trace_context.sampled
        rate = self.config.sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        with self._lock:
            self._root_count += 1
            count = self._root_count
        # Stratified counter sampling: keep root i iff floor(i * rate)
        # advanced past floor((i - 1) * rate).  Deterministic (replays
        # sample identical roots) and evenly spread — exactly
        # round(n * rate) of the first n roots are kept.
        return math.floor(count * rate) > math.floor((count - 1) * rate)

    def _unsampled_depth(self) -> int:
        return int(getattr(self._local, "unsampled_depth", 0))

    def _enter_unsampled(self) -> None:
        self._local.unsampled_depth = self._unsampled_depth() + 1

    def _exit_unsampled(self) -> None:
        self._local.unsampled_depth = max(0, self._unsampled_depth() - 1)

    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _finish(self, span: Span) -> None:
        stack = self._stack()
        if not stack or stack[-1] is not span:
            raise ConfigurationError(
                f"span {span.name!r} closed out of order; open stack: "
                f"{[s.name for s in stack]}"
            )
        span.duration_s = time.perf_counter() - span._started_perf  # type: ignore[attr-defined]
        del span._started_perf  # type: ignore[attr-defined]
        stack.pop()
        if stack:
            stack[-1].children.append(span)
            return
        clamp_span_tree(span)
        with self._lock:
            self._finished.append(span)
            exporters = list(self.exporters)
        for exporter in exporters:
            exporter.export(span)

    # ------------------------------------------------------------------
    def finished_spans(self) -> List[Span]:
        """Finished root spans, oldest first (bounded by the ring size)."""
        with self._lock:
            return list(self._finished)

    def clear(self) -> None:
        """Drop every buffered finished span."""
        with self._lock:
            self._finished.clear()

    def close(self) -> None:
        """Close every exporter."""
        for exporter in self.exporters:
            exporter.close()


class NoopTracer:
    """The zero-cost default: ``span()`` returns a shared inert handle.

    ``enabled`` is False so instrumented call sites can skip building
    attribute dicts entirely (``if tracer.enabled: ...``); even without
    that guard, entering a no-op span is a few attribute lookups.
    """

    enabled = False
    config = ObsConfig()
    service = ""
    recording = False

    def span(
        self,
        name: str,
        trace_context: Optional[TraceContext] = None,
        **attributes: Any,
    ) -> _NoopSpan:
        """Return the shared no-op span handle."""
        return _NOOP_SPAN

    def current_context(self) -> Optional[TraceContext]:
        """No spans, no context."""
        return None

    def finished_spans(self) -> List[Span]:
        """Always empty: nothing is recorded."""
        return []

    def clear(self) -> None:
        """Nothing to clear."""

    def close(self) -> None:
        """Nothing to close."""


#: Shared no-op tracer; the default for every instrumented component.
NOOP_TRACER = NoopTracer()


def format_span_tree(span: Span, indent: int = 0, _lines: Optional[List[str]] = None) -> str:
    """Render a span tree as an indented text outline.

    Durations are shown in milliseconds; attributes inline, arrays
    elided to their shapes so artifact-laden spans stay readable.
    """
    lines: List[str] = [] if _lines is None else _lines
    attrs = []
    for key, value in span.attributes.items():
        if isinstance(value, dict):
            attrs.append(f"{key}=<{len(value)}-key artifact>")
        elif isinstance(value, (list, tuple)) and len(value) > 6:
            attrs.append(f"{key}=<{len(value)} items>")
        elif isinstance(value, list) and any(isinstance(v, dict) for v in value):
            attrs.append(f"{key}=<{len(value)} records>")
        elif isinstance(value, float):
            attrs.append(f"{key}={value:.4g}")
        else:
            attrs.append(f"{key}={value}")
    suffix = f"  [{', '.join(attrs)}]" if attrs else ""
    marker = "" if span.status == "ok" else f"  !{span.status}"
    lines.append(
        f"{'  ' * indent}{span.name:<{max(1, 24 - 2 * indent)}} "
        f"{span.duration_s * 1e3:9.2f} ms{marker}{suffix}"
    )
    for child in span.children:
        format_span_tree(child, indent + 1, lines)
    return "\n".join(lines)
