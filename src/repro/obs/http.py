"""Live telemetry over HTTP: ``/metrics``, ``/healthz``, ``/traces``.

:class:`TelemetryServer` is a stdlib-only (``http.server``) exporter
that makes a running process scrapable while it works, instead of only
printing an exposition at exit:

* ``GET /metrics`` — Prometheus plain-text exposition (whatever the
  ``metrics_fn`` callback renders, normally
  :func:`repro.obs.prometheus.render_prometheus` over a live snapshot).
* ``GET /healthz`` — JSON health payload from ``health_fn`` (breaker
  states, buffer depths, shard liveness...).  Replies 200 when the
  payload's ``"ok"`` key is truthy (or absent), 503 otherwise, so load
  balancers and chaos tests can gate on the status code alone.
* ``GET /traces`` — JSON array of recent finished root spans from
  ``traces_fn`` (normally the tracer's in-memory ring, serialized with
  :meth:`repro.obs.trace.Span.to_dict`).

The server runs on a daemon thread (``ThreadingHTTPServer``, one
thread per request) and is attachable to anything that can supply the
three callbacks — :class:`repro.server.SpotFiServer` and every
:mod:`repro.dist` shard use it.  Callbacks therefore MUST be
thread-safe: hand in snapshot-producing closures
(:class:`~repro.runtime.metrics.RuntimeMetrics` and the tracer ring
are lock-protected), never methods of single-threaded objects like
``ShardRouter``.

``port=0`` binds an ephemeral port (read it back from ``.port`` after
:meth:`start`), which keeps tests and multi-process deployments free
of port collisions.  Endpoint callback failures are answered with 500
and counted in ``errors`` rather than killing the serving thread.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ConfigurationError

#: Content type of the Prometheus plain-text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _TelemetryHandler(BaseHTTPRequestHandler):
    """Request handler bound to one :class:`TelemetryServer`."""

    server: "_TelemetryHTTPServer"

    def do_GET(self) -> None:  # noqa: N802 - http.server API name
        """Dispatch ``/metrics``, ``/healthz``, ``/traces``; 404 otherwise."""
        owner = self.server.owner
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/metrics":
                body = owner.metrics_fn().encode("utf-8")
                self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
            elif path == "/healthz":
                payload = owner.health_fn() if owner.health_fn is not None else {"ok": True}
                status = 200 if payload.get("ok", True) else 503
                self._reply(status, "application/json", _json_bytes(payload))
            elif path == "/traces":
                spans = owner.traces_fn() if owner.traces_fn is not None else []
                self._reply(200, "application/json", _json_bytes(spans))
            else:
                self._reply(404, "text/plain; charset=utf-8", b"not found\n")
        except BrokenPipeError:
            owner.record_endpoint_error(path)
        except Exception as exc:
            owner.record_endpoint_error(path)
            try:
                self._reply(
                    500,
                    "text/plain; charset=utf-8",
                    f"telemetry callback failed: {type(exc).__name__}: {exc}\n".encode("utf-8"),
                )
            except OSError:
                pass  # client already gone; the error is counted above

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr logging (scrapes are periodic)."""


def _json_bytes(payload: Any) -> bytes:
    return json.dumps(payload, separators=(",", ":"), default=str).encode("utf-8")


class _TelemetryHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that knows its owning :class:`TelemetryServer`."""

    daemon_threads = True
    allow_reuse_address = True
    owner: "TelemetryServer"


class TelemetryServer:
    """Background HTTP exporter for metrics, health, and recent traces.

    Parameters
    ----------
    metrics_fn:
        Zero-arg callable returning the Prometheus exposition text.
    health_fn:
        Optional zero-arg callable returning a JSON-serializable dict;
        its ``"ok"`` key (default True) selects the 200/503 status.
    traces_fn:
        Optional zero-arg callable returning a JSON-serializable list
        (normally ``[s.to_dict() for s in tracer.finished_spans()]``).
    host / port:
        Bind address; ``port=0`` picks an ephemeral port.

    Use as a context manager or call :meth:`start`/:meth:`stop`.
    """

    def __init__(
        self,
        metrics_fn: Callable[[], str],
        health_fn: Optional[Callable[[], Dict[str, Any]]] = None,
        traces_fn: Optional[Callable[[], List[Dict[str, Any]]]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if port < 0 or port > 65535:
            raise ConfigurationError(f"port must be in [0, 65535], got {port}")
        self.metrics_fn = metrics_fn
        self.health_fn = health_fn
        self.traces_fn = traces_fn
        self.host = host
        self._requested_port = port
        self._httpd: Optional[_TelemetryHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        #: Per-path count of endpoint callback failures.
        self.errors: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def start(self) -> "TelemetryServer":
        """Bind the socket and launch the serving daemon thread."""
        if self._httpd is not None:
            raise ConfigurationError("telemetry server already started")
        httpd = _TelemetryHTTPServer((self.host, self._requested_port), _TelemetryHandler)
        httpd.owner = self
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name=f"telemetry-{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the serving thread down and close the socket (idempotent)."""
        httpd, thread = self._httpd, self._thread
        self._httpd = None
        self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    @property
    def port(self) -> int:
        """The bound port (resolves ephemeral ``port=0`` after start)."""
        if self._httpd is not None:
            return int(self._httpd.server_address[1])
        return self._requested_port

    @property
    def url(self) -> str:
        """Base URL of the running endpoint."""
        return f"http://{self.host}:{self.port}"

    def record_endpoint_error(self, path: str) -> None:
        """Count one failed endpoint callback (typed error accounting)."""
        with self._lock:
            self.errors[path] = self.errors.get(path, 0) + 1

    # ------------------------------------------------------------------
    def __enter__(self) -> "TelemetryServer":
        if self._httpd is None:
            self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def fetch_json(url: str, timeout_s: float = 10.0) -> Any:
    """GET ``url`` and decode the JSON body, accepting non-2xx replies.

    ``/healthz`` deliberately answers 503 when unhealthy while still
    carrying the diagnostic payload; a plain ``urlopen`` would raise
    and discard it.  This helper reads the body either way, so chaos
    probes can assert on the payload of a degraded endpoint.
    """
    import urllib.error
    import urllib.request

    try:
        with urllib.request.urlopen(url, timeout=timeout_s) as response:
            body = response.read()
    except urllib.error.HTTPError as error:
        body = error.read()
    return json.loads(body.decode("utf-8"))
