"""Observability configuration knobs.

Kept in a tiny standalone module so anything (pipeline, server, CLI,
benchmarks) can import :class:`ObsConfig` without pulling the tracer or
exposition machinery along.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ObsConfig:
    """Tunables for tracing and stage artifact capture.

    Attributes
    ----------
    capture_artifacts:
        Record heavyweight stage artifacts into trace spans: the
        downsampled per-AP mean MUSIC pseudospectrum (``music`` span)
        and per-cluster (AoA, ToF) statistics (``cluster`` span).  Off
        by default — artifacts cost memory and serialized trace size,
        and exist for post-mortem analysis, not steady-state serving.
    artifact_max_bins:
        Downsampling cap per pseudospectrum axis.  The full spectrum is
        A x T grid points (hundreds each); artifacts keep at most this
        many rows/columns by strided subsampling.
    max_finished_spans:
        Capacity of the tracer's in-memory ring buffer of finished root
        spans.  Oldest spans are discarded first.
    sample_rate:
        Head-based sampling rate in ``[0.0, 1.0]``: the fraction of
        *root* spans that are recorded.  Sampling is decided once when a
        trace starts (deterministically, by a stratified counter — no
        RNG) and the decision propagates to every child span and, via
        :class:`~repro.obs.trace.TraceContext`, across process
        boundaries.  ``1.0`` records everything (the default); ``0.0``
        records nothing while keeping the tracer wired up.
    """

    capture_artifacts: bool = False
    artifact_max_bins: int = 32
    max_finished_spans: int = 256
    sample_rate: float = 1.0

    def __post_init__(self) -> None:
        if self.artifact_max_bins < 2:
            raise ConfigurationError(
                f"artifact_max_bins must be >= 2, got {self.artifact_max_bins}"
            )
        if self.max_finished_spans < 1:
            raise ConfigurationError(
                f"max_finished_spans must be >= 1, got {self.max_finished_spans}"
            )
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ConfigurationError(
                f"sample_rate must be within [0.0, 1.0], got {self.sample_rate}"
            )
