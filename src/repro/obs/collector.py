"""Cluster trace collection: merge per-process span exports into one tree.

Each process in a sharded deployment exports its *own* finished root
spans to a JSONL file (``router.jsonl``, ``shard0.jsonl``, ...).  A
shard-side root opened under a remote :class:`~repro.obs.trace.TraceContext`
carries the router's trace_id and keeps the router span's id in its
``parent_id`` — information enough to stitch the pieces back together
after the fact, which is exactly what this module does:

* group every exported root by ``trace_id``;
* within a trace, re-attach any root whose ``parent_id`` names a span
  that lives in another process's tree (the shard ``handle.flush`` root
  becomes a child of the router ``shard.flush`` span);
* return the stitched top-level roots, renderable by
  :func:`~repro.obs.trace.format_span_tree` like any local trace.

Stitching is by-id and order-insensitive, so files may be collected in
any order and a missing file degrades gracefully: unstitchable roots
stay top-level instead of disappearing.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from repro.obs.trace import Span, format_span_tree, load_spans

PathLike = Union[str, "os.PathLike[str]"]


def merge_spans(roots: Iterable[Span]) -> List[Span]:
    """Stitch exported root spans into per-trace trees.

    ``roots`` are finished root spans from any number of processes.
    Roots sharing a ``trace_id`` are candidates for stitching: when a
    root's ``parent_id`` resolves to exactly one span somewhere else in
    the same trace, it is attached as that span's child (children stay
    sorted by start time).  Returns the remaining top-level roots,
    sorted by ``(trace_id, start_time_s)`` for stable rendering.
    """
    by_trace: Dict[str, List[Span]] = {}
    for root in roots:
        by_trace.setdefault(root.trace_id, []).append(root)

    merged: List[Span] = []
    for trace_id in sorted(by_trace):
        trace_roots = sorted(by_trace[trace_id], key=lambda s: s.start_time_s)
        # Index every span id in this trace; ids colliding across
        # processes (tracers without a service prefix) are ambiguous
        # and excluded as attachment points.
        owner: Dict[str, Span] = {}
        ambiguous = set()
        for root in trace_roots:
            for span in root.iter_spans():
                if span.span_id in owner:
                    ambiguous.add(span.span_id)
                else:
                    owner[span.span_id] = span
        for span_id in ambiguous:
            owner.pop(span_id, None)

        top_level: List[Span] = []
        for root in trace_roots:
            parent = owner.get(root.parent_id) if root.parent_id else None
            if parent is not None and parent is not root and root.span_id not in ambiguous:
                parent.children.append(root)
                parent.children.sort(key=lambda s: s.start_time_s)
            else:
                top_level.append(root)
        merged.extend(top_level)
    return merged


def merge_trace_files(paths: Sequence[PathLike]) -> List[Span]:
    """Load several JSONL span exports and stitch them (see :func:`merge_spans`).

    Missing or empty files are skipped — a shard that never sampled a
    trace simply contributes nothing.
    """
    roots: List[Span] = []
    for path in paths:
        if Path(path).exists():
            roots.extend(load_spans(path))
    return merge_spans(roots)


def collect_trace_dir(directory: PathLike) -> List[Span]:
    """Stitch every ``*.jsonl`` export found under ``directory``."""
    paths = sorted(Path(directory).glob("*.jsonl"))
    return merge_trace_files(paths)


def format_merged_traces(roots: Sequence[Span]) -> str:
    """Render stitched traces, one blank-line-separated tree per trace."""
    blocks = []
    for root in roots:
        blocks.append(f"trace {root.trace_id}\n{format_span_tree(root)}")
    return "\n\n".join(blocks)
