"""Canonical trace stage names.

Span names are metric identity: per-stage histograms, the Prometheus
``stage`` label, SLO objectives, and cross-run trace diffs all key on
the literal string passed to ``Tracer.span(...)``.  A typo'd name
(``"musik"``) doesn't error — it silently fragments the histograms and
drops the stage out of every dashboard.  This module is the single
source of truth for which names exist; lint rule REP010
(:mod:`repro.analysis.rules`) flags any ``tracer.span("...")`` literal
not registered here.

Adding a stage is deliberate: put the name in :data:`CANONICAL_STAGES`
(or a regex in :data:`STAGE_PATTERNS` for indexed families like
``ap[3]``) in the same commit that introduces the span call.
"""

from __future__ import annotations

import re
from typing import FrozenSet, Tuple

#: Exact span names the pipeline, server, and dist layer may open.
CANONICAL_STAGES: FrozenSet[str] = frozenset(
    {
        # core pipeline (repro.core.pipeline)
        "locate",  # one fix attempt; root of the per-fix subtree
        "sanitize",  # Algorithm 1 CSI phase cleanup, per AP
        "smooth",  # smoothed CSI matrix construction, per AP
        "music",  # 2D MUSIC pseudospectrum + peak search, per AP
        "cluster",  # Eq. 8-9 path clustering / direct-path pick, per AP
        "solve",  # localization least-squares over AP reports
        # server (repro.server)
        "fix",  # one flush-triggered fix computation, incl. retries
        "breaker.transition",  # circuit breaker state change
        "track.resume",  # adoption of a failed peer's track checkpoints
        # mobility (repro.mobility.handoff)
        "handoff",  # one serving-set change under the roaming policy
        # dist router (repro.dist.router)
        "flush",  # router-side flush fan-out; root of a distributed trace
        "shard.flush",  # one shard's FLUSH request within a router flush
        "batch",  # one shipped ingest batch; root of a distributed trace
        # dist shard (repro.dist.shard)
        "handle.flush",  # shard-side FLUSH handling under a remote context
        "handle.batch",  # shard-side INGEST handling under a remote context
        # dist supervisor (repro.dist.supervisor)
        "supervisor.restart",  # relaunch of a dead shard process
        "supervisor.probe",  # half-open HEALTH probe before re-admission
    }
)

#: Indexed stage families, matched as full-string regexes.
STAGE_PATTERNS: Tuple["re.Pattern[str]", ...] = (
    re.compile(r"ap\[\d+\]"),  # per-AP subtree within locate
)


def is_canonical_stage(name: str) -> bool:
    """True when ``name`` is a registered span name or pattern match."""
    if name in CANONICAL_STAGES:
        return True
    return any(pattern.fullmatch(name) is not None for pattern in STAGE_PATTERNS)
