"""Observability for the SpotFi pipeline: tracing, histograms, exposition.

SpotFi's accuracy hinges on a chain of stages — ToF sanitization
(Alg. 1), smoothed-CSI 2-D MUSIC (Sec. 3.1), likelihood clustering
(Eq. 8) and the localization solve (Eq. 9) — and a bad fix gives no
insight into *which* stage degraded it.  This package is the diagnostic
layer:

* :mod:`repro.obs.trace` — :class:`Tracer` producing hierarchical spans
  (``locate > ap[k] > sanitize|smooth|music|cluster > solve``) with
  wall-clock and stage attributes, a JSONL :class:`JsonlSpanExporter`,
  and an in-memory ring buffer.  The default :data:`NOOP_TRACER` is
  zero-cost, so instrumented code paths pay nothing until tracing is
  switched on.
* :mod:`repro.obs.histogram` — fixed log-scale bucket
  :class:`Histogram` with p50/p90/p99 quantile estimates and exact
  cross-process ``merge``, backing
  :class:`~repro.runtime.metrics.RuntimeMetrics`.
* :mod:`repro.obs.prometheus` — ``render_prometheus(snapshot)``
  plain-text exposition of a metrics snapshot.
* :mod:`repro.obs.artifacts` — opt-in capture of downsampled MUSIC
  pseudospectra and per-cluster (AoA, ToF) statistics into the trace
  (``ObsConfig(capture_artifacts=True)``).
"""

from repro.obs.artifacts import cluster_summary, downsample_spectrum
from repro.obs.config import ObsConfig
from repro.obs.histogram import DEFAULT_TIMING_BUCKETS, Histogram, log_buckets
from repro.obs.prometheus import render_prometheus
from repro.obs.trace import (
    NOOP_TRACER,
    JsonlSpanExporter,
    NoopTracer,
    Span,
    Tracer,
    format_span_tree,
    load_spans,
)

__all__ = [
    "ObsConfig",
    "Tracer",
    "NoopTracer",
    "NOOP_TRACER",
    "Span",
    "JsonlSpanExporter",
    "load_spans",
    "format_span_tree",
    "Histogram",
    "log_buckets",
    "DEFAULT_TIMING_BUCKETS",
    "render_prometheus",
    "downsample_spectrum",
    "cluster_summary",
]
