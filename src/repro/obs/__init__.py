"""Observability for the SpotFi pipeline: tracing, histograms, exposition.

SpotFi's accuracy hinges on a chain of stages — ToF sanitization
(Alg. 1), smoothed-CSI 2-D MUSIC (Sec. 3.1), likelihood clustering
(Eq. 8) and the localization solve (Eq. 9) — and a bad fix gives no
insight into *which* stage degraded it.  This package is the diagnostic
layer:

* :mod:`repro.obs.trace` — :class:`Tracer` producing hierarchical spans
  (``locate > ap[k] > sanitize|smooth|music|cluster > solve``) with
  wall-clock and stage attributes, a JSONL :class:`JsonlSpanExporter`,
  an in-memory ring buffer, deterministic head sampling
  (``ObsConfig(sample_rate=)``), and :class:`TraceContext` propagation
  across process boundaries.  The default :data:`NOOP_TRACER` is
  zero-cost, so instrumented code paths pay nothing until tracing is
  switched on.
* :mod:`repro.obs.stages` — the canonical span-name registry (lint
  rule REP010 flags ``tracer.span`` literals missing from it).
* :mod:`repro.obs.counters` — the canonical metric counter registry
  (flow rule REP018 flags ``metrics.increment``/``record_*`` literals
  missing from it).
* :mod:`repro.obs.collector` — merge per-process JSONL span exports
  into stitched cluster-wide trace trees.
* :mod:`repro.obs.histogram` — fixed log-scale bucket
  :class:`Histogram` with p50/p90/p99 quantile estimates and exact
  cross-process ``merge``, backing
  :class:`~repro.runtime.metrics.RuntimeMetrics`.
* :mod:`repro.obs.prometheus` — ``render_prometheus(snapshot)``
  plain-text exposition of a metrics snapshot.
* :mod:`repro.obs.http` — :class:`TelemetryServer`, a stdlib HTTP
  endpoint serving live ``/metrics``, ``/healthz``, and ``/traces``.
* :mod:`repro.obs.slo` — declarative service-level objectives with
  burn-rate / error-budget accounting over metrics snapshots.
* :mod:`repro.obs.benchdiff` — the ``spotfi-benchdiff`` regression
  gate diffing two committed BENCH_*.json files.
* :mod:`repro.obs.artifacts` — opt-in capture of downsampled MUSIC
  pseudospectra and per-cluster (AoA, ToF) statistics into the trace
  (``ObsConfig(capture_artifacts=True)``).
"""

from repro.obs.artifacts import cluster_summary, downsample_spectrum
from repro.obs.benchdiff import BenchDiff, MetricDelta, diff_benchmarks, diff_files
from repro.obs.collector import (
    collect_trace_dir,
    format_merged_traces,
    merge_spans,
    merge_trace_files,
)
from repro.obs.config import ObsConfig
from repro.obs.counters import (
    CANONICAL_COUNTERS,
    CANONICAL_STAGE_COUNTERS,
    COUNTER_PATTERNS,
    is_canonical_counter,
    is_canonical_stage_counter,
)
from repro.obs.histogram import DEFAULT_TIMING_BUCKETS, Histogram, log_buckets
from repro.obs.http import PROMETHEUS_CONTENT_TYPE, TelemetryServer, fetch_json
from repro.obs.prometheus import render_prometheus
from repro.obs.slo import (
    SloObjective,
    SloTracker,
    latency_objective,
    rate_objective,
    success_rate_objective,
)
from repro.obs.stages import CANONICAL_STAGES, STAGE_PATTERNS, is_canonical_stage
from repro.obs.trace import (
    NOOP_TRACER,
    JsonlSpanExporter,
    NoopTracer,
    Span,
    TraceContext,
    Tracer,
    clamp_span_tree,
    format_span_tree,
    load_spans,
)

__all__ = [
    "ObsConfig",
    "Tracer",
    "NoopTracer",
    "NOOP_TRACER",
    "Span",
    "TraceContext",
    "JsonlSpanExporter",
    "load_spans",
    "clamp_span_tree",
    "format_span_tree",
    "merge_spans",
    "merge_trace_files",
    "collect_trace_dir",
    "format_merged_traces",
    "CANONICAL_STAGES",
    "STAGE_PATTERNS",
    "is_canonical_stage",
    "CANONICAL_COUNTERS",
    "CANONICAL_STAGE_COUNTERS",
    "COUNTER_PATTERNS",
    "is_canonical_counter",
    "is_canonical_stage_counter",
    "Histogram",
    "log_buckets",
    "DEFAULT_TIMING_BUCKETS",
    "render_prometheus",
    "TelemetryServer",
    "fetch_json",
    "PROMETHEUS_CONTENT_TYPE",
    "SloObjective",
    "SloTracker",
    "latency_objective",
    "success_rate_objective",
    "rate_objective",
    "BenchDiff",
    "MetricDelta",
    "diff_benchmarks",
    "diff_files",
    "downsample_spectrum",
    "cluster_summary",
]
