"""Benchmark regression diffing: compare two BENCH_*.json files.

The repo tracks its performance trajectory in committed JSON baselines
(``BENCH_runtime.json``, ``BENCH_dist.json``, ``BENCH_estimators.json``)
written by the ``benchmarks/`` scripts.  Until now a regression in
fixes/s or fix p99 only surfaced if a human read the JSON; this module
is the automated comparison: ``spotfi-benchdiff BASE NEW`` aligns the
two files' rows, computes the relative change of every shared metric,
and — with ``--check`` — exits non-zero when any metric moved more
than the threshold *in its bad direction*.

Alignment and direction are schema-aware but schema-light:

* rows are matched by their identity keys (``workers``, ``shards``,
  ``name``, ``tier``), so reordered or partially-overlapping row sets
  compare correctly; unmatched rows are reported but never fail the
  check (changed sweep parameters are not a regression);
* metric direction comes from the metric's last path segment —
  throughput-like metrics (``fixes_per_s``, ``packets_per_s``,
  ``speedup``) regress by going *down*, latency/error-like metrics
  (``time_s``, ``p50_ms``, ``p99_ms``, ``median_error_m``) by going
  *up*; metrics with unknown direction are listed as informational;
* nested ``stages`` dicts flatten to ``stages.fix.p99_ms`` paths.

Pure stdlib, deterministic, no clocks: two identical files always diff
clean, which CI exploits as a plumbing self-test.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError

#: Row keys that identify a row rather than measure it.
IDENTITY_KEYS: Tuple[str, ...] = ("workers", "shards", "name", "tier", "estimator")

#: Metric leaf names where larger is better (regression = decrease).
HIGHER_BETTER: Tuple[str, ...] = (
    "fixes_per_s",
    "packets_per_s",
    "speedup",
    "fixes",
    "fixes_ok",
    "fixes_total",
)

#: Metric leaf names where smaller is better (regression = increase).
LOWER_BETTER: Tuple[str, ...] = (
    "time_s",
    "p50_ms",
    "p99_ms",
    "median_error_m",
    "p90_error_m",
    "median_fix_latency_ms",
)

#: Baselines below this magnitude make relative change meaningless.
_MIN_BASELINE = 1e-12


@dataclass(frozen=True)
class MetricDelta:
    """One metric compared across the two files."""

    row: str
    metric: str
    base: float
    new: float
    change_pct: float
    direction: str  # "higher_better" | "lower_better" | "informational"
    regression: bool

    def describe(self) -> str:
        """One text line: ``row metric base -> new (+x.x%) [REGRESSION]``."""
        flag = "  REGRESSION" if self.regression else ""
        return (
            f"{self.row:<24} {self.metric:<28} "
            f"{self.base:>12.4f} -> {self.new:>12.4f} "
            f"({self.change_pct:+7.1f}%){flag}"
        )


@dataclass(frozen=True)
class BenchDiff:
    """Full comparison of two benchmark files."""

    benchmark: str
    deltas: Tuple[MetricDelta, ...]
    unmatched_base: Tuple[str, ...]
    unmatched_new: Tuple[str, ...]
    threshold_pct: float

    @property
    def regressions(self) -> List[MetricDelta]:
        """Deltas that moved past the threshold in their bad direction."""
        return [d for d in self.deltas if d.regression]

    def render(self) -> str:
        """Human-readable report, one line per compared metric."""
        lines = [
            f"benchmark: {self.benchmark}  (threshold {self.threshold_pct:.1f}%, "
            f"{len(self.deltas)} metrics, {len(self.regressions)} regressions)"
        ]
        lines.extend(delta.describe() for delta in self.deltas)
        for row in self.unmatched_base:
            lines.append(f"{row:<24} only in baseline (ignored)")
        for row in self.unmatched_new:
            lines.append(f"{row:<24} only in candidate (ignored)")
        return "\n".join(lines)


def _rows(data: Mapping[str, object]) -> List[Mapping[str, object]]:
    """Extract the row list (``rows`` or ``estimators``) from one file."""
    for key in ("rows", "estimators"):
        rows = data.get(key)
        if isinstance(rows, list):
            return [row for row in rows if isinstance(row, Mapping)]
    raise ConfigurationError(
        "benchmark JSON has no 'rows' or 'estimators' list; "
        f"top-level keys: {sorted(data)}"
    )


def _row_key(row: Mapping[str, object], index: int) -> str:
    """Stable identity for one row, from its identity keys (else its index)."""
    parts = [f"{key}={row[key]}" for key in IDENTITY_KEYS if key in row]
    return " ".join(parts) if parts else f"row[{index}]"


def _flatten_metrics(
    row: Mapping[str, object], prefix: str = ""
) -> Dict[str, float]:
    """Numeric leaves of one row, identity keys excluded, dicts dotted."""
    metrics: Dict[str, float] = {}
    for key, value in row.items():
        if not prefix and key in IDENTITY_KEYS:
            continue
        path = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            metrics[path] = float(value)
        elif isinstance(value, Mapping):
            metrics.update(_flatten_metrics(value, prefix=f"{path}."))
    return metrics


def _direction(metric: str) -> str:
    leaf = metric.rsplit(".", 1)[-1]
    if leaf in HIGHER_BETTER:
        return "higher_better"
    if leaf in LOWER_BETTER:
        return "lower_better"
    return "informational"


def diff_benchmarks(
    base: Mapping[str, object],
    new: Mapping[str, object],
    threshold_pct: float = 10.0,
) -> BenchDiff:
    """Compare two benchmark dicts (see module docstring for the rules).

    Raises :class:`~repro.errors.ConfigurationError` when the files
    describe different benchmarks or the threshold is not positive.
    """
    if threshold_pct <= 0.0:
        raise ConfigurationError(f"threshold_pct must be > 0, got {threshold_pct}")
    base_name = str(base.get("benchmark", "?"))
    new_name = str(new.get("benchmark", "?"))
    if base_name != new_name:
        raise ConfigurationError(
            f"cannot diff different benchmarks: {base_name!r} vs {new_name!r}"
        )

    base_rows = {_row_key(row, i): row for i, row in enumerate(_rows(base))}
    new_rows = {_row_key(row, i): row for i, row in enumerate(_rows(new))}

    deltas: List[MetricDelta] = []
    for key in base_rows:
        if key not in new_rows:
            continue
        base_metrics = _flatten_metrics(base_rows[key])
        new_metrics = _flatten_metrics(new_rows[key])
        for metric in sorted(set(base_metrics) & set(new_metrics)):
            old_value = base_metrics[metric]
            new_value = new_metrics[metric]
            direction = _direction(metric)
            if abs(old_value) < _MIN_BASELINE:
                change_pct = 0.0 if abs(new_value) < _MIN_BASELINE else float("inf")
                gated = False  # relative change vs ~0 baseline is noise
            else:
                change_pct = (new_value - old_value) / abs(old_value) * 100.0
                gated = direction != "informational"
            if direction == "higher_better":
                regressed = gated and change_pct < -threshold_pct
            elif direction == "lower_better":
                regressed = gated and change_pct > threshold_pct
            else:
                regressed = False
            deltas.append(
                MetricDelta(
                    row=key,
                    metric=metric,
                    base=old_value,
                    new=new_value,
                    change_pct=change_pct,
                    direction=direction,
                    regression=regressed,
                )
            )

    return BenchDiff(
        benchmark=base_name,
        deltas=tuple(deltas),
        unmatched_base=tuple(k for k in base_rows if k not in new_rows),
        unmatched_new=tuple(k for k in new_rows if k not in base_rows),
        threshold_pct=threshold_pct,
    )


def diff_files(
    base_path: Union[str, Path],
    new_path: Union[str, Path],
    threshold_pct: float = 10.0,
) -> BenchDiff:
    """Load two benchmark JSON files and diff them."""
    with open(base_path, "r", encoding="utf-8") as stream:
        base = json.load(stream)
    with open(new_path, "r", encoding="utf-8") as stream:
        new = json.load(stream)
    return diff_benchmarks(base, new, threshold_pct=threshold_pct)


def build_parser() -> argparse.ArgumentParser:
    """CLI argument parser for ``spotfi-benchdiff``."""
    parser = argparse.ArgumentParser(
        prog="spotfi-benchdiff",
        description=(
            "Diff two BENCH_*.json benchmark files and flag metrics that "
            "moved past a threshold in their bad direction."
        ),
    )
    parser.add_argument("baseline", help="baseline benchmark JSON (the committed file)")
    parser.add_argument("candidate", help="candidate benchmark JSON (the fresh run)")
    parser.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        metavar="PCT",
        help="relative change (percent) counted as a regression (default 10)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when any regression exceeds the threshold",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        diff = diff_files(args.baseline, args.candidate, threshold_pct=args.threshold)
    except (ConfigurationError, OSError, json.JSONDecodeError) as exc:
        print(f"spotfi-benchdiff: {exc}", file=sys.stderr)
        return 2
    print(diff.render())
    if args.check and diff.regressions:
        print(
            f"spotfi-benchdiff: {len(diff.regressions)} regression(s) beyond "
            f"{args.threshold:.1f}% — failing --check",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
