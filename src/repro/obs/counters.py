"""Canonical metric counter names.

Counter names are cross-process identity: the Prometheus exposition,
the cluster rollup (:mod:`repro.dist.rollup`), the SLO tracker, and the
chaos gates all key on the literal strings handed to
:meth:`~repro.runtime.metrics.RuntimeMetrics.increment` and the
``record_*`` helpers.  A typo'd counter (``"dist.failover.reruted"``)
doesn't error — it silently splits the series and every dashboard,
alert, and gate built on the canonical name reads zero.

This module is the single source of truth for which counters exist,
mirroring :mod:`repro.obs.stages` for span names.  Flow lint rule
REP018 (:mod:`repro.analysis.flow`) flags any counter literal not
registered here.

Adding a counter is deliberate: put the name in
:data:`CANONICAL_COUNTERS` (or a regex in :data:`COUNTER_PATTERNS` for
keyed families like ``quarantine.<reason>``) in the same commit that
introduces the ``increment`` call.
"""

from __future__ import annotations

import re
from typing import FrozenSet, Tuple

#: Exact counter names the runtime, server, faults, and dist layers emit
#: via :meth:`RuntimeMetrics.increment` (including the expanded forms of
#: ``record_drop`` — ``drop.<reason>`` — which are listed literally).
CANONICAL_COUNTERS: FrozenSet[str] = frozenset(
    {
        # server ingest / fix accounting (repro.server)
        "ingest.accepted",
        "buffers.evicted",
        "fix.ok",
        "fix.failed",
        "fix.degraded",
        "fix.downgraded",
        "drop.overflow",
        "drop.stale",
        "drop.breaker",
        # circuit breaker (repro.server / repro.faults.breaker)
        "breaker.opened",
        "breaker.closed",
        "breaker.transitions",
        "breaker.downgrades",
        # track lifecycle (repro.mobility.tracks)
        "track.created",
        "track.confirmed",
        "track.closed",
        "track.evicted",
        "track.resumed",
        "track.gated",
        # AP roaming (repro.mobility.handoff)
        "handoff.events",
        "handoff.ap_added",
        "handoff.ap_dropped",
        # motion synthesis (repro.mobility.motion)
        "mobility.bursts",
        # fault injection (repro.faults)
        "faults.injected.total",
        "faults.network.total",
        "quarantine.total",
        # dist router / failover (repro.dist.router)
        "dist.batches.sent",
        "dist.frames.sent",
        "dist.fixes.received",
        "dist.replies.stray",
        "dist.failover.shard_down",
        "dist.failover.rerouted",
        "dist.failover.replayed",
        "dist.failover.stranded",
        "dist.failover.readmitted",
        "dist.failover.inflight_lost",
        "dist.journal.overflow",
        "dist.dedup.duplicates",
        "dist.tracks.resumed",
        "dist.tracks.restored",
        "dist.health.ok",
        "dist.health.failed",
        # dist supervisor (repro.dist.supervisor)
        "dist.supervisor.down_detected",
        "dist.supervisor.restarts",
        "dist.supervisor.restart_failed",
        "dist.supervisor.readmitted",
        "dist.supervisor.budget_exhausted",
        "dist.supervisor.probe_ok",
        "dist.supervisor.probe_failed",
    }
)

#: Keyed counter families, matched as full-string regexes.  These cover
#: the dynamic (f-string) names whose *suffix* is data-derived: the
#: fault kind, the quarantine reason, the error class name.
COUNTER_PATTERNS: Tuple["re.Pattern[str]", ...] = (
    re.compile(r"faults\.injected\.[a-z0-9_]+"),
    re.compile(r"faults\.network\.[a-z0-9_]+"),
    re.compile(r"quarantine\.[a-z0-9_]+"),
    re.compile(r"drop\.[a-z0-9_]+"),
    # per-estimator request accounting: estimator.requests.<name>.<tier>
    re.compile(r"estimator\.requests\.[a-z0-9_]+\.[a-z0-9_]+"),
)

#: Stage names the ``record_submit/complete/error/retry/timeout``
#: helpers may be called with.  Each expands into ``<stage>.submitted``
#: / ``.completed`` / ``.errors[.<kind>]`` / ``.retries`` /
#: ``.timeouts`` counters, so the *stage* is the registered identity.
CANONICAL_STAGE_COUNTERS: FrozenSet[str] = frozenset(
    {
        "estimate",  # per-packet estimation fan-out (executors)
        "fix",  # one flush-triggered fix (repro.server)
        "map",  # Executor.map_ordered default stage
        "dist.request",  # one router->shard request (repro.dist.router)
    }
)

#: Stage families with a data-derived suffix (``estimate.<name>`` per
#: registered estimator).
STAGE_COUNTER_PATTERNS: Tuple["re.Pattern[str]", ...] = (
    re.compile(r"estimate\.[a-z0-9_]+"),
)


def is_canonical_counter(name: str) -> bool:
    """True when ``name`` is a registered counter or pattern match."""
    if name in CANONICAL_COUNTERS:
        return True
    return any(pattern.fullmatch(name) is not None for pattern in COUNTER_PATTERNS)


def is_canonical_counter_prefix(prefix: str) -> bool:
    """True when some registered counter or family starts with ``prefix``.

    Used for f-string counter names (``f"faults.injected.{kind}"``):
    only the literal prefix is statically known, so the check passes when
    any canonical name or pattern could complete it.
    """
    if any(name.startswith(prefix) for name in CANONICAL_COUNTERS):
        return True
    return any(
        pattern.pattern.startswith(re.escape(prefix))
        or re.match(pattern.pattern, prefix) is not None
        for pattern in COUNTER_PATTERNS
    )


def is_canonical_stage_counter(stage: str) -> bool:
    """True when ``stage`` is a registered ``record_*`` stage name."""
    if stage in CANONICAL_STAGE_COUNTERS:
        return True
    return any(
        pattern.fullmatch(stage) is not None for pattern in STAGE_COUNTER_PATTERNS
    )
