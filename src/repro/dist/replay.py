"""Streaming replay: feed captures and datasets into an ingest sink.

Bridges the offline data formats (:mod:`repro.io`) to anything with an
``ingest(ap_id, frame)`` method — a local
:class:`~repro.server.SpotFiServer` or a
:class:`~repro.dist.router.ShardRouter` fronting many shards; the
:class:`IngestSink` protocol captures exactly that shared surface.

Two paths:

* :func:`stream_dat_capture` pulls Intel 5300 ``.dat`` records through
  the lazy :func:`~repro.io.csitool.iter_dat_records` generator — one
  record is decoded, converted and ingested at a time, so a multi-hour
  capture replays in O(1) memory.
* :func:`stream_dataset` replays a simulated
  :class:`~repro.io.traces.LocationDataset` packet-interleaved across
  its APs, the arrival order a live central server would see.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Optional, Protocol, Union

import numpy as np

from repro.io.csitool import iter_dat_records
from repro.io.traces import LocationDataset
from repro.wifi.csi import CsiFrame


class IngestSink(Protocol):
    """Anything that accepts ``(ap_id, frame)`` ingest calls.

    Both :class:`~repro.server.SpotFiServer` and
    :class:`~repro.dist.router.ShardRouter` satisfy this; return values
    are deliberately ignored so the two (synchronous fix events vs.
    pipelined delivery) interchange freely.
    """

    def ingest(self, ap_id: str, frame: CsiFrame) -> object:
        """Accept one packet's CSI from one AP."""
        ...


def stream_dat_capture(
    sink: IngestSink,
    path: Union[str, Path],
    ap_id: str,
    source: str,
    scaled: bool = True,
    apply_permutation: bool = False,
    timestamp_offset_s: float = 0.0,
) -> int:
    """Stream one AP's ``.dat`` capture into the sink; returns the count.

    Records stream lazily through
    :func:`~repro.io.csitool.iter_dat_records` — nothing is
    materialized.  Non-single-stream (Ntx > 1) records are skipped: the
    serving path is single-transmitter, matching
    :func:`~repro.io.csitool.trace_from_records`.
    """
    count = 0
    for record in iter_dat_records(path):
        if record.ntx != 1:
            continue
        if apply_permutation:
            record = replace(record, csi=record.permuted_csi())
        csi = record.scaled_csi() if scaled else record.csi.astype(np.complex128)
        frame = CsiFrame(
            csi=csi,
            rssi_dbm=record.total_rss_dbm(),
            timestamp_s=record.timestamp_low / 1e6 + timestamp_offset_s,
            source=source,
        )
        sink.ingest(ap_id, frame)
        count += 1
    return count


def stream_dataset(
    sink: IngestSink,
    dataset: LocationDataset,
    source: str = "",
    max_packets: Optional[int] = None,
) -> int:
    """Replay a dataset packet-interleaved across APs; returns the count.

    Packet ``k`` of every AP is ingested before packet ``k + 1`` of any
    — the arrival order a live deployment sees.  ``source`` overrides
    the frames' source key (useful to fan one dataset out as several
    synthetic targets); the default keeps each frame's own.
    """
    num_packets = min(len(trace) for trace in dataset.traces)
    if max_packets is not None:
        num_packets = min(num_packets, max_packets)
    count = 0
    for k in range(num_packets):
        for i, trace in enumerate(dataset.traces):
            frame = trace[k]
            if source:
                frame = CsiFrame(
                    csi=frame.csi,
                    rssi_dbm=frame.rssi_dbm,
                    timestamp_s=frame.timestamp_s,
                    source=source,
                )
            sink.ingest(f"ap{i}", frame)
            count += 1
    return count
