"""Shard workers: one subprocess, one full :class:`~repro.server.SpotFiServer`.

A shard is the unit of horizontal scale in :mod:`repro.dist`.  Each one
hosts a complete streaming server — bounded ingest buffers,
:class:`~repro.faults.FrameValidator` admission control, and per-AP
circuit breakers all intact — behind a blocking socket loop speaking the
:mod:`repro.dist.protocol` message framing over TCP or a Unix domain
socket.  The :class:`~repro.dist.router.ShardRouter` consistent-hashes
``source`` keys across shards, so every packet burst for one target
lands on exactly one shard and burst assembly needs no cross-process
coordination.

Lifecycle: :class:`ShardProcess` forks a worker with a picklable
:class:`ShardConfig`; the worker builds its server, listens, and serves
until it receives a ``SHUTDOWN`` message or a SIGTERM/SIGINT, at which
point it *drains* — every source with buffered packets gets a final
``flush()`` so partial bursts become fix attempts instead of silently
dropped data — and replies ``BYE`` with the drained fixes.
"""

from __future__ import annotations

import os
import multiprocessing
import selectors
import signal
import socket
import time
from dataclasses import dataclass, field, replace
from types import FrameType
from typing import Dict, List, Optional, Set, Tuple, cast

import numpy as np

from repro.core.pipeline import SpotFi, SpotFiConfig
from repro.dist import protocol
from repro.dist.protocol import BindAddress, MessageType, WireFix, parse_bind
from repro.errors import ConfigurationError, ReproError, TraceFormatError
from repro.faults.network import NetworkFaultInjector, NetworkFaultSpec
from repro.mobility.tracks import TrackManager
from repro.obs.config import ObsConfig
from repro.obs.http import TelemetryServer
from repro.obs.trace import JsonlSpanExporter, TraceContext, Tracer
from repro.runtime import RuntimeMetrics, create_executor
from repro.server import FixEvent, SpotFiServer
from repro.wifi.csi import CsiFrame
from repro.testbed.layout import (
    Testbed,
    home_testbed,
    office_testbed,
    small_testbed,
)
from repro.wifi.intel5300 import Intel5300

_TESTBEDS = {"office": office_testbed, "small": small_testbed, "home": home_testbed}


@dataclass(frozen=True)
class ShardConfig:
    """Picklable recipe for one shard's :class:`~repro.server.SpotFiServer`.

    Shipped to the worker process at fork time; everything needed to
    rebuild the server lives here as plain data (the testbed is named,
    not embedded, so the config stays picklable on every start method).

    Telemetry knobs: ``trace_dir`` switches the shard from the no-op
    tracer to a real one exporting finished spans to
    ``{trace_dir}/{shard_id}.jsonl`` (head-sampled at ``sample_rate``,
    span ids prefixed with the shard id for cluster-unique identity);
    ``http_port`` > 0 serves live ``/metrics``, ``/healthz`` and
    ``/traces`` on that port for the shard's lifetime.
    """

    shard_id: str
    testbed: str = "small"
    packets_per_fix: int = 8
    min_aps: int = 2
    max_buffered_packets: int = 0
    overflow_policy: str = "drop-oldest"
    max_burst_age_s: float = 0.0
    breaker_threshold: int = 0
    breaker_recovery_s: float = 10.0
    workers: int = 1
    seed: int = 0
    #: Enable per-source track lifecycle management
    #: (:class:`~repro.mobility.tracks.TrackManager`, origin = the shard
    #: id); fixes then carry track ids and failover checkpoints.
    track: bool = False
    estimator: str = ""
    downgrade_tier: str = ""
    trace_dir: str = ""
    sample_rate: float = 1.0
    http_port: int = 0
    http_host: str = "127.0.0.1"
    #: Transport fault specs applied to every accepted connection (the
    #: server half of network chaos; the router half is its
    #: ``socket_wrapper``).  Frozen specs keep the config picklable.
    network_faults: Tuple[NetworkFaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ConfigurationError(
                f"sample_rate must be within [0.0, 1.0], got {self.sample_rate}"
            )
        if not 0 <= self.http_port <= 65535:
            raise ConfigurationError(
                f"http_port must be in [0, 65535], got {self.http_port}"
            )


def build_server(config: ShardConfig) -> SpotFiServer:
    """Construct the shard's in-process server from its config.

    The full serving stack is assembled exactly as ``repro serve`` does:
    a shared :class:`~repro.runtime.RuntimeMetrics` instance threads
    through the executor and the server so one snapshot covers both.
    """
    try:
        testbed: Testbed = _TESTBEDS[config.testbed]()
    except KeyError:
        raise ReproError(
            f"unknown testbed {config.testbed!r}; available: {sorted(_TESTBEDS)}"
        ) from None
    metrics = RuntimeMetrics()
    executor = create_executor(config.workers, metrics=metrics)
    tracer: Optional[Tracer] = None
    if config.trace_dir:
        os.makedirs(config.trace_dir, exist_ok=True)
        tracer = Tracer(
            config=ObsConfig(sample_rate=config.sample_rate),
            exporters=[
                JsonlSpanExporter(
                    os.path.join(config.trace_dir, f"{config.shard_id}.jsonl")
                )
            ],
            service=config.shard_id,
        )
    spotfi = SpotFi(
        Intel5300().grid(),
        bounds=testbed.bounds,
        config=SpotFiConfig(packets_per_fix=config.packets_per_fix),
        rng=np.random.default_rng(config.seed),
        executor=executor,
        tracer=tracer,
    )
    return SpotFiServer(
        spotfi=spotfi,
        aps={f"ap{i}": ap for i, ap in enumerate(testbed.aps)},
        packets_per_fix=config.packets_per_fix,
        min_aps=config.min_aps,
        track=config.track,
        track_manager=(
            TrackManager(origin=config.shard_id, metrics=metrics)
            if config.track
            else None
        ),
        max_buffered_packets=config.max_buffered_packets,
        overflow_policy=config.overflow_policy,
        max_burst_age_s=config.max_burst_age_s,
        metrics=metrics,
        breaker_threshold=config.breaker_threshold,
        breaker_recovery_s=config.breaker_recovery_s,
        estimator=config.estimator,
        downgrade_tier=config.downgrade_tier,
    )


class SeqDeduper:
    """Sliding-window ``(source, seq)`` dedup for at-least-once ingest.

    The router journals sent-but-unacked batches and replays them to
    the new ring owner after a failover; frames the dead shard already
    processed (and whose fixes died with it) can thus arrive a second
    time at *this* shard.  Admission is keyed on the router-assigned
    per-source sequence number: a seq already seen, or at or below
    ``high_water - window``, is a duplicate.  ``seq <= 0`` marks
    unsequenced legacy traffic and is always admitted.
    """

    def __init__(self, window: int = 4096) -> None:
        self.window = max(1, int(window))
        self._seen: Dict[str, Set[int]] = {}
        self._high: Dict[str, int] = {}

    def admit(self, source: str, seq: int) -> bool:
        """True when ``(source, seq)`` is first seen (process the frame)."""
        if seq <= 0:
            return True
        high = self._high.get(source, 0)
        if seq <= high - self.window:
            return False
        seen = self._seen.setdefault(source, set())
        if seq in seen:
            return False
        seen.add(seq)
        if seq > high:
            self._high[source] = seq
        if len(seen) > 2 * self.window:
            floor = self._high[source] - self.window
            self._seen[source] = {s for s in seen if s > floor}
        return True


class ShardServer:
    """The socket loop wrapping one :class:`~repro.server.SpotFiServer`.

    Single-threaded and selector-driven: accepts connections, reads one
    framed request at a time, and answers each with exactly one reply
    message (``FIXES``, ``HEALTH_OK``, ``METRICS_REPLY``, ``BYE``, or
    ``ERROR``).  Library errors — malformed frames, validation
    rejections, backpressure — become ``ERROR`` replies carrying the
    exception class name, so the router can map them back onto the
    :class:`~repro.errors.ReproError` hierarchy; they never kill the
    shard.  A broken connection is dropped and the loop keeps serving.
    """

    def __init__(self, config: ShardConfig, bind: BindAddress) -> None:
        self.config = config
        self.bind = bind
        self.server = build_server(config)
        self.telemetry: Optional[TelemetryServer] = None
        self._stopping = False
        self._drained: List[WireFix] = []
        self._last_timestamp_s = 0.0
        self._deduper = SeqDeduper()
        self._fault_injector: Optional[NetworkFaultInjector] = None
        if config.network_faults:
            self._fault_injector = NetworkFaultInjector(
                config.network_faults,
                rng=np.random.default_rng(config.seed + 1),
                metrics=self.server.metrics,
            )

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def _wire_fix(self, event: FixEvent) -> WireFix:
        return protocol.WireFix(
            source=event.source,
            timestamp_s=event.timestamp_s,
            ok=event.ok,
            x=event.fix.position.x if event.ok else float("nan"),
            y=event.fix.position.y if event.ok else float("nan"),
            num_aps=event.num_aps,
            shard=self.config.shard_id,
            estimator=event.estimator,
            downgraded=event.downgraded,
            track_id=event.track_id,
            # Piggyback the track checkpoint so the router always holds
            # a copy fresh as of this fix — failover needs no extra RTT.
            track=self.server.export_track(event.source),
        )

    def _handle_ingest(
        self, entries: List[Tuple[str, CsiFrame, int]]
    ) -> Tuple[MessageType, bytes]:
        fixes: List[WireFix] = []
        for ap_id, frame, seq in entries:
            if not self._deduper.admit(frame.source, seq):
                # Replayed after a failover but already processed here
                # before the ack was lost; dropping it keeps delivery
                # effectively-once and fix counts exact.
                self.server.metrics.increment("dist.dedup.duplicates")
                continue
            self._last_timestamp_s = max(self._last_timestamp_s, frame.timestamp_s)
            event = self.server.ingest(ap_id, frame)
            if event is not None:
                fixes.append(self._wire_fix(event))
        return MessageType.FIXES, protocol.encode_fixes(fixes)

    def _handle_traced_ingest(self, payload: bytes) -> Tuple[MessageType, bytes]:
        """INGEST with a router trace context: adopt it for this batch.

        The ``handle.batch`` root span joins the router's trace, so any
        ``fix > locate > ap[k]`` subtrees triggered by these frames nest
        under it and the collector can stitch the whole distributed
        trace back together by trace_id.
        """
        context, suffix = protocol.split_traced_ingest(payload)
        entries = protocol.decode_frames_seq(suffix)
        with self.server.spotfi.tracer.span(
            "handle.batch",
            trace_context=context,
            shard=self.config.shard_id,
            frames=len(entries),
        ):
            return self._handle_ingest(entries)

    def _handle_flush(self, payload: bytes) -> Tuple[MessageType, bytes]:
        request = protocol.decode_json(payload)
        if not isinstance(request, dict):
            raise TraceFormatError("FLUSH payload must be a JSON object")
        raw_context = request.get("trace")
        if isinstance(raw_context, dict):
            # Legacy-tolerant propagation: tracing-unaware shards ignore
            # the extra JSON key; tracing-aware ones adopt the context.
            context = TraceContext.from_dict(raw_context)
            with self.server.spotfi.tracer.span(
                "handle.flush", trace_context=context, shard=self.config.shard_id
            ):
                return self._flush_sources(request)
        return self._flush_sources(request)

    def _flush_sources(self, request: Dict[str, object]) -> Tuple[MessageType, bytes]:
        sources = request.get("sources")
        if sources is None:
            sources = self.server.sources()
        if not isinstance(sources, list):
            raise TraceFormatError("FLUSH 'sources' must be a JSON array")
        timestamp_s = float(request.get("timestamp_s", self._last_timestamp_s))  # type: ignore[arg-type]
        estimator = request.get("estimator") or None
        fixes: List[WireFix] = []
        for source in sources:
            event = self.server.flush(
                str(source), timestamp_s, estimator=estimator  # type: ignore[arg-type]
            )
            if event is not None:
                fixes.append(self._wire_fix(event))
        return MessageType.FIXES, protocol.encode_fixes(fixes)

    def _handle_metrics(self) -> Tuple[MessageType, bytes]:
        reply = {
            "shard_id": self.config.shard_id,
            "snapshot": self.server.metrics_snapshot(),
            "breakers": self.server.breaker_states(),
        }
        return MessageType.METRICS_REPLY, protocol.encode_json(reply)

    def _handle_request(
        self, msg_type: MessageType, payload: bytes
    ) -> Tuple[MessageType, bytes]:
        if msg_type == MessageType.INGEST:
            return self._handle_ingest(protocol.decode_frames_seq(payload))
        if msg_type == MessageType.INGEST_TRACED:
            return self._handle_traced_ingest(payload)
        if msg_type == MessageType.FLUSH:
            return self._handle_flush(payload)
        if msg_type == MessageType.HEALTH:
            return MessageType.HEALTH_OK, protocol.encode_json(
                {
                    "shard_id": self.config.shard_id,
                    "pid": os.getpid(),
                    "http_port": self.config.http_port,
                }
            )
        if msg_type == MessageType.METRICS:
            return self._handle_metrics()
        if msg_type == MessageType.RESUME:
            resumed = self.server.restore_tracks(protocol.decode_resume(payload))
            return MessageType.RESUME_OK, protocol.encode_json({"resumed": resumed})
        if msg_type == MessageType.SHUTDOWN:
            self._stopping = True
            return MessageType.BYE, protocol.encode_fixes(self.drain())
        raise TraceFormatError(f"unexpected request type {msg_type.name}")

    # ------------------------------------------------------------------
    # Drain / shutdown
    # ------------------------------------------------------------------
    def drain(self) -> List[WireFix]:
        """Flush every source with buffered packets; return the fixes.

        Called on ``SHUTDOWN`` and on SIGTERM/SIGINT so partial bursts
        become final fix attempts instead of dying with the process.
        Idempotent: sources drained once have empty buffers and produce
        nothing on a second pass.
        """
        fixes: List[WireFix] = []
        for source in self.server.sources():
            if not any(self.server.pending_packets(source).values()):
                continue
            event = self.server.flush(source, self._last_timestamp_s)
            if event is not None:
                fixes.append(self._wire_fix(event))
        self._drained.extend(fixes)
        return fixes

    def request_stop(self) -> None:
        """Ask the serve loop to exit after the current request."""
        self._stopping = True

    # ------------------------------------------------------------------
    # Serve loop
    # ------------------------------------------------------------------
    def serve_forever(self, poll_interval_s: float = 0.2) -> None:
        """Accept and serve connections until stopped.

        One selector multiplexes the listening socket and every client
        connection; requests are handled to completion one at a time
        (the shard's parallelism lives in its executor, not its socket
        loop, which keeps `SpotFiServer`'s single-threaded invariants).
        """
        listener = self.bind.listen()
        listener.setblocking(False)
        selector = selectors.DefaultSelector()
        selector.register(listener, selectors.EVENT_READ, data=None)
        if self.config.http_port and self.telemetry is None:
            self.telemetry = TelemetryServer(
                metrics_fn=self.server.metrics_exposition,
                health_fn=self._health_payload,
                traces_fn=self._trace_payload,
                host=self.config.http_host,
                port=self.config.http_port,
            ).start()
        try:
            while not self._stopping:
                for key, _ in selector.select(timeout=poll_interval_s):
                    if key.data is None:
                        conn, _addr = listener.accept()
                        conn.setblocking(True)
                        if self._fault_injector is not None:
                            conn = cast(
                                socket.socket,
                                self._fault_injector.wrap(
                                    conn, peer=self.config.shard_id
                                ),
                            )
                        selector.register(conn, selectors.EVENT_READ, data="conn")
                    else:
                        self._serve_one(selector, key.fileobj)
                    if self._stopping:
                        break
        finally:
            for key in list(selector.get_map().values()):
                selector.unregister(key.fileobj)
                key.fileobj.close()
            selector.close()
            if self.bind.kind == "unix":
                try:
                    os.unlink(self.bind.path)
                except OSError:
                    pass
            if self._stopping:
                self.drain()
            if self.telemetry is not None:
                self.telemetry.stop()
                self.telemetry = None
            self.server.spotfi.executor.close()
            self.server.spotfi.tracer.close()

    def _health_payload(self) -> Dict[str, object]:
        """Shard-flavored ``/healthz`` body: server health plus identity."""
        payload = self.server.health_snapshot()
        payload["shard_id"] = self.config.shard_id
        payload["pid"] = os.getpid()
        payload["stopping"] = self._stopping
        return payload

    def _trace_payload(self) -> List[Dict[str, object]]:
        """Recent finished root spans from the shard's tracer ring."""
        return [span.to_dict() for span in self.server.spotfi.tracer.finished_spans()]

    def _serve_one(self, selector: selectors.BaseSelector, sock: socket.socket) -> None:
        try:
            message = protocol.recv_message(sock)
        except (TraceFormatError, OSError):
            selector.unregister(sock)
            sock.close()
            return
        if message is None:
            selector.unregister(sock)
            sock.close()
            return
        msg_type, payload = message
        try:
            reply_type, reply_payload = self._handle_request(msg_type, payload)
        except ReproError as exc:
            reply_type = MessageType.ERROR
            reply_payload = protocol.encode_json(
                {"kind": type(exc).__name__, "message": str(exc)}
            )
        try:
            protocol.send_message(sock, reply_type, reply_payload)
        except OSError:
            selector.unregister(sock)
            sock.close()


def run_shard(spec: str, config: ShardConfig) -> None:
    """Worker entry point: build a shard, serve until signalled.

    SIGTERM and SIGINT flip the stop flag so the loop exits at the next
    request boundary, drains buffered bursts through ``flush()``, and
    returns — the graceful half of failover (the router handles the
    ungraceful half, SIGKILL, by re-routing the dead shard's key range).
    """
    shard = ShardServer(config, parse_bind(spec))

    def _stop(_signum: int, _frame: Optional[FrameType]) -> None:
        shard.request_stop()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    shard.serve_forever()


class ShardProcess:
    """Handle on a shard subprocess: spawn, probe, terminate, kill.

    Thin supervisor used by the router-side helpers and the chaos
    harness.  ``kill()`` is deliberately SIGKILL — the point of the
    kill-one-shard scenario is an *ungraceful* death with no drain.
    """

    def __init__(self, spec: str, config: ShardConfig) -> None:
        self.spec = spec
        self.config = config
        self.process = multiprocessing.Process(
            target=run_shard, args=(spec, config), daemon=True
        )

    def start(self) -> None:
        """Fork the worker process (does not wait for readiness)."""
        self.process.start()

    def wait_ready(self, timeout_s: float = 30.0) -> None:
        """Block until the shard answers a HEALTH probe.

        Polls with short connect attempts; raises
        :class:`~repro.errors.ReproError` when the deadline passes or
        the process dies first.
        """
        bind = parse_bind(self.spec)
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if not self.process.is_alive():
                raise ReproError(
                    f"shard {self.config.shard_id!r} exited during startup "
                    f"(exitcode {self.process.exitcode})"
                )
            try:
                with bind.connect(timeout_s=1.0) as sock:
                    protocol.send_message(sock, MessageType.HEALTH)
                    reply = protocol.recv_message(sock)
                if reply is not None and reply[0] == MessageType.HEALTH_OK:
                    return
            except (OSError, TraceFormatError):
                pass
            time.sleep(0.05)
        raise ReproError(
            f"shard {self.config.shard_id!r} not ready after {timeout_s:.0f}s"
        )

    def terminate(self) -> None:
        """SIGTERM: graceful stop — the shard drains before exiting."""
        if self.process.is_alive():
            self.process.terminate()

    def kill(self) -> None:
        """SIGKILL: ungraceful death, no drain (chaos scenarios)."""
        if self.process.is_alive():
            self.process.kill()

    def join(self, timeout_s: float = 10.0) -> Optional[int]:
        """Wait for exit; returns the exit code (None if still alive)."""
        self.process.join(timeout_s)
        return self.process.exitcode


def start_shards(
    num_shards: int,
    config: ShardConfig,
    directory: str,
    base_port: int = 0,
    host: str = "127.0.0.1",
    http_base_port: int = 0,
    ready_timeout_s: float = 30.0,
) -> Dict[str, ShardProcess]:
    """Spawn ``num_shards`` workers and wait until all answer HEALTH.

    With ``base_port == 0`` (default) each shard listens on a Unix
    socket ``{directory}/shard{i}.sock`` — no port allocation races;
    otherwise shard ``i`` binds ``tcp:{host}:{base_port + i}``.  With
    ``http_base_port`` set, shard ``i`` additionally serves its HTTP
    telemetry endpoint on ``http_base_port + i`` (overriding any
    ``http_port`` in the template config).  ``ready_timeout_s`` bounds
    each shard's HEALTH wait.  Returns ``{shard_id: ShardProcess}``; on
    any startup failure the shards already running are killed before
    the error propagates.
    """
    shards: Dict[str, ShardProcess] = {}
    try:
        for i in range(num_shards):
            shard_id = f"shard{i}"
            if base_port:
                spec = f"tcp:{host}:{base_port + i}"
            else:
                spec = f"unix:{os.path.join(directory, shard_id + '.sock')}"
            shard_config = replace(
                config,
                shard_id=shard_id,
                http_port=http_base_port + i if http_base_port else config.http_port,
            )
            process = ShardProcess(spec, shard_config)
            process.start()
            shards[shard_id] = process
        for process in shards.values():
            process.wait_ready(timeout_s=ready_timeout_s)
    except BaseException:
        for process in shards.values():
            process.kill()
        raise
    return shards
