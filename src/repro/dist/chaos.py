"""Kill-one-shard chaos: SIGKILL a live shard mid-stream, measure survival.

The distributed counterpart of :mod:`repro.faults.chaos`: instead of
corrupting CSI, the fault is an *ungraceful shard death* — no drain, no
goodbye, the process is simply gone — injected while packet bursts are
in flight.  What must survive is the contract the router advertises:

* the dead shard's key range re-hashes onto the survivors
  (``dist.failover.*`` counters say how much was lost vs. re-routed);
* sources keep streaming and, because live senders oversample, the new
  owner assembles complete bursts from the post-failover packets;
* the router itself never crashes, and the surviving shards shut down
  cleanly at the end.

Success is counted **per source**: a source succeeds when at least one
successful fix event was delivered for it by the end of the run.  That
matches what a user of the cluster observes — "did target X get a
position?" — and is robust to the burst-boundary ambiguity that an
at-most-once failover necessarily creates.  The resulting
:class:`~repro.faults.chaos.ChaosReport` plugs into the same CLI gate
(``repro chaos --scenario shard-kill``) as the fault-injection runs.
"""

from __future__ import annotations

import math
import tempfile
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.dist.protocol import WireFix
from repro.dist.router import ShardRouter
from repro.dist.shard import ShardConfig, start_shards
from repro.errors import ConfigurationError, ShardUnavailableError
from repro.faults.chaos import PACKET_INTERVAL_S, ChaosReport
from repro.runtime import RuntimeMetrics
from repro.testbed.layout import home_testbed, office_testbed, small_testbed
from repro.wifi.csi import CsiFrame

_TESTBEDS = {"office": office_testbed, "small": small_testbed, "home": home_testbed}


def run_shard_kill(
    testbed: str = "small",
    seed: int = 7,
    packets_per_fix: int = 6,
    bursts: int = 3,
    min_aps: int = 2,
    num_shards: int = 3,
    oversample: float = 2.5,
    kill_fraction: float = 0.4,
    probe: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> ChaosReport:
    """Stream ``bursts`` sources across shards, SIGKILL one mid-stream.

    ``bursts`` sources stream concurrently (packet ``k`` of every source
    before packet ``k + 1`` of any), each targeting the next testbed
    location.  After ``kill_fraction`` of the stream, the shard owning
    the *first* source is killed — ungracefully, so its partial bursts
    and in-flight replies are lost.  ``oversample`` keeps senders
    transmitting ``packets_per_fix * oversample`` packets per source, so
    post-failover traffic alone can complete a burst on the new owner.

    Returns a :class:`~repro.faults.chaos.ChaosReport` with
    ``scenario="shard-kill"``: ``fixes_attempted`` is the source count,
    ``fixes_ok`` the sources that got at least one successful fix,
    ``injected`` the ``dist.failover.*`` counters, and ``breakers`` the
    surviving shards' breaker states namespaced ``shard/ap``.

    ``probe``, when given, starts the cluster telemetry endpoint
    (:func:`repro.dist.rollup.start_cluster_telemetry`) on an ephemeral
    port and invokes the callback with the ``/healthz`` payload twice —
    once with every shard alive, and once immediately after the kill,
    while the cluster is degraded.  The payload comes over real HTTP,
    so the probe asserts exactly what an external health checker would
    observe mid-scenario.
    """
    if testbed not in _TESTBEDS:
        raise ConfigurationError(
            f"unknown testbed {testbed!r}; available: {sorted(_TESTBEDS)}"
        )
    if num_shards < 2:
        raise ConfigurationError("shard-kill needs at least 2 shards")
    if oversample < 1.0:
        raise ConfigurationError("oversample must be >= 1.0")
    if not 0.0 < kill_fraction < 1.0:
        raise ConfigurationError("kill_fraction must be in (0, 1)")
    tb = _TESTBEDS[testbed]()
    sim = tb.simulator()
    stream_packets = max(packets_per_fix, int(round(packets_per_fix * oversample)))
    sources = [f"chaos-{burst:02d}" for burst in range(bursts)]
    targets = {
        source: tb.targets[burst % len(tb.targets)].position
        for burst, source in enumerate(sources)
    }
    data_rng = np.random.default_rng(seed + 1)
    traces = {
        source: [
            sim.generate_trace(
                targets[source], ap, stream_packets, rng=data_rng, source=source
            )
            for ap in tb.aps
        ]
        for source in sources
    }
    config = ShardConfig(
        shard_id="template",
        testbed=testbed,
        packets_per_fix=packets_per_fix,
        min_aps=min_aps,
        max_burst_age_s=4.0 * stream_packets * PACKET_INTERVAL_S,
        seed=seed,
    )
    kill_at = max(1, int(stream_packets * kill_fraction))
    metrics = RuntimeMetrics()
    fixes_by_source: Dict[str, List[WireFix]] = {source: [] for source in sources}
    breakers: Dict[str, str] = {}
    killed_shard = ""
    telemetry = None
    with tempfile.TemporaryDirectory(prefix="repro-dist-") as tmp:
        shards = start_shards(num_shards, config, tmp)
        specs = {shard_id: proc.spec for shard_id, proc in shards.items()}
        router = ShardRouter(
            specs,
            batch_max_frames=len(tb.aps),
            metrics=metrics,
        )
        if probe is not None:
            from repro.dist.rollup import start_cluster_telemetry
            from repro.obs.http import fetch_json

            telemetry = start_cluster_telemetry(specs, router_metrics=metrics)
            probe(fetch_json(f"{telemetry.url}/healthz"))
        try:
            for k in range(stream_packets):
                if k == kill_at:
                    killed_shard = router.owner_of(sources[0])
                    shards[killed_shard].kill()
                    shards[killed_shard].join()
                    if telemetry is not None and probe is not None:
                        probe(fetch_json(f"{telemetry.url}/healthz"))
                # All sources share one timeline: stale-burst eviction is
                # age-based, and sources interleaved on one shard must
                # not age each other's partial bursts out.
                stamp = k * PACKET_INTERVAL_S
                for source in sources:
                    for i, trace in enumerate(traces[source]):
                        frame = trace[k]
                        router.ingest(
                            f"ap{i}",
                            CsiFrame(
                                csi=frame.csi,
                                rssi_dbm=frame.rssi_dbm,
                                timestamp_s=stamp,
                                source=source,
                            ),
                        )
                for fix in router.take_fixes():
                    fixes_by_source[fix.source].append(fix)
            for fix in router.flush():
                fixes_by_source[fix.source].append(fix)
            for reply in router.pull_metrics():
                shard_id = str(reply.get("shard_id", "?"))
                for ap_id, state in dict(reply.get("breakers", {})).items():
                    breakers[f"{shard_id}/{ap_id}"] = str(state)
            for fix in router.shutdown():
                fixes_by_source[fix.source].append(fix)
        except ShardUnavailableError:
            # Every shard died — the report below shows zero successes;
            # the router API contract (no crash) still held.
            pass
        finally:
            if telemetry is not None:
                telemetry.stop()
            router.close()
            for proc in shards.values():
                proc.kill()
                proc.join()
    errors: List[float] = []
    fixes_ok = 0
    for source in sources:
        ok = [fix for fix in fixes_by_source[source] if fix.ok]
        if not ok:
            continue
        fixes_ok += 1
        last = ok[-1]
        target = targets[source]
        errors.append(math.hypot(last.x - target.x, last.y - target.y))
    counters = metrics.snapshot()["counters"]
    injected = {
        name[len("dist.failover.") :]: int(value)
        for name, value in counters.items()
        if name.startswith("dist.failover.")
    }
    injected["killed_shards"] = 1 if killed_shard else 0
    return ChaosReport(
        scenario="shard-kill",
        testbed=testbed,
        seed=seed,
        bursts=bursts,
        fixes_attempted=len(sources),
        fixes_ok=fixes_ok,
        degraded_fixes=0,
        median_error_m=float(np.median(errors)) if errors else float("nan"),
        quarantined={},
        injected=injected,
        breakers=breakers,
    )
