"""Distributed chaos: shard death and transport faults under live load.

The distributed counterpart of :mod:`repro.faults.chaos`: instead of
corrupting CSI, the faults live below the application — an *ungraceful
shard death* (:func:`run_shard_kill`), or transport misbehaviour on the
router↔shard sockets (:func:`run_network_chaos`: connection resets,
slow/black-holed links, corrupted bytes, crash-and-restart under a
supervisor) — injected while packet bursts are in flight.  What must
survive is the contract the router advertises:

* the dead shard's key range re-hashes onto the survivors, its journaled
  in-flight frames are replayed to the new owner
  (``dist.failover.replayed``) and shard-side ``(source, seq)`` dedup
  keeps redelivery idempotent;
* sources keep streaming and the new owner assembles complete bursts;
* the supervisor restarts crashed shards and re-admits them after a
  passing health probe, so no source ends the run unroutable;
* the router itself never crashes, and the shards shut down cleanly.

Success is counted **per source**: a source succeeds when at least one
successful fix event was delivered for it by the end of the run.  That
matches what a user of the cluster observes — "did target X get a
position?".  The resulting :class:`~repro.faults.chaos.ChaosReport`
plugs into the same CLI gate (``repro chaos --scenario <name>``) as the
fault-injection runs; network scenarios additionally report
``replayed`` / ``unrouted_sources`` / ``excess_fixes`` so the gate can
assert at-least-once delivery with exact fix-count accounting.
"""

from __future__ import annotations

import math
import tempfile
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.dist.protocol import WireFix
from repro.dist.router import ShardRouter
from repro.dist.shard import ShardConfig, start_shards
from repro.dist.supervisor import ShardSupervisor
from repro.errors import ConfigurationError, ShardUnavailableError
from repro.faults.chaos import PACKET_INTERVAL_S, ChaosReport
from repro.faults.network import (
    BlackHole,
    ConnectionReset,
    CorruptBytes,
    NetworkFaultInjector,
    NetworkFaultSpec,
    SlowLink,
)
from repro.runtime import RuntimeMetrics
from repro.testbed.layout import home_testbed, office_testbed, small_testbed
from repro.wifi.csi import CsiFrame

_TESTBEDS = {"office": office_testbed, "small": small_testbed, "home": home_testbed}

#: The transport chaos matrix (``repro chaos --scenario <name>``).
NETWORK_SCENARIOS = ("corrupt-bytes", "crash-restart", "reset-storm", "slow-link")


def network_scenario_specs(scenario: str) -> Tuple[NetworkFaultSpec, ...]:
    """Transport fault mix for one matrix scenario.

    ``crash-restart`` returns no wire faults — its fault is a SIGKILL
    mid-stream with the supervisor responsible for the comeback.  The
    ``slow-link`` mix pairs latency with a low-probability black hole so
    the scenario also exercises timeout-triggered failover + replay.
    """
    if scenario == "reset-storm":
        return (ConnectionReset(probability=0.02),)
    if scenario == "slow-link":
        return (
            SlowLink(probability=0.25, delay_s=0.01),
            BlackHole(probability=0.03),
        )
    if scenario == "corrupt-bytes":
        return (CorruptBytes(probability=0.05, flips=4),)
    if scenario == "crash-restart":
        return ()
    raise ConfigurationError(
        f"unknown network scenario {scenario!r}; "
        f"available: {sorted(NETWORK_SCENARIOS)}"
    )


def run_shard_kill(
    testbed: str = "small",
    seed: int = 7,
    packets_per_fix: int = 6,
    bursts: int = 3,
    min_aps: int = 2,
    num_shards: int = 3,
    oversample: float = 2.5,
    kill_fraction: float = 0.4,
    probe: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> ChaosReport:
    """Stream ``bursts`` sources across shards, SIGKILL one mid-stream.

    ``bursts`` sources stream concurrently (packet ``k`` of every source
    before packet ``k + 1`` of any), each targeting the next testbed
    location.  After ``kill_fraction`` of the stream, the shard owning
    the *first* source is killed — ungracefully, so its partial bursts
    and in-flight replies are lost.  ``oversample`` keeps senders
    transmitting ``packets_per_fix * oversample`` packets per source, so
    post-failover traffic alone can complete a burst on the new owner.

    Returns a :class:`~repro.faults.chaos.ChaosReport` with
    ``scenario="shard-kill"``: ``fixes_attempted`` is the source count,
    ``fixes_ok`` the sources that got at least one successful fix,
    ``injected`` the ``dist.failover.*`` counters, and ``breakers`` the
    surviving shards' breaker states namespaced ``shard/ap``.

    ``probe``, when given, starts the cluster telemetry endpoint
    (:func:`repro.dist.rollup.start_cluster_telemetry`) on an ephemeral
    port and invokes the callback with the ``/healthz`` payload twice —
    once with every shard alive, and once immediately after the kill,
    while the cluster is degraded.  The payload comes over real HTTP,
    so the probe asserts exactly what an external health checker would
    observe mid-scenario.
    """
    if testbed not in _TESTBEDS:
        raise ConfigurationError(
            f"unknown testbed {testbed!r}; available: {sorted(_TESTBEDS)}"
        )
    if num_shards < 2:
        raise ConfigurationError("shard-kill needs at least 2 shards")
    if oversample < 1.0:
        raise ConfigurationError("oversample must be >= 1.0")
    if not 0.0 < kill_fraction < 1.0:
        raise ConfigurationError("kill_fraction must be in (0, 1)")
    tb = _TESTBEDS[testbed]()
    sim = tb.simulator()
    stream_packets = max(packets_per_fix, int(round(packets_per_fix * oversample)))
    sources = [f"chaos-{burst:02d}" for burst in range(bursts)]
    targets = {
        source: tb.targets[burst % len(tb.targets)].position
        for burst, source in enumerate(sources)
    }
    data_rng = np.random.default_rng(seed + 1)
    traces = {
        source: [
            sim.generate_trace(
                targets[source], ap, stream_packets, rng=data_rng, source=source
            )
            for ap in tb.aps
        ]
        for source in sources
    }
    config = ShardConfig(
        shard_id="template",
        testbed=testbed,
        packets_per_fix=packets_per_fix,
        min_aps=min_aps,
        max_burst_age_s=4.0 * stream_packets * PACKET_INTERVAL_S,
        seed=seed,
    )
    kill_at = max(1, int(stream_packets * kill_fraction))
    metrics = RuntimeMetrics()
    fixes_by_source: Dict[str, List[WireFix]] = {source: [] for source in sources}
    breakers: Dict[str, str] = {}
    killed_shard = ""
    telemetry = None
    with tempfile.TemporaryDirectory(prefix="repro-dist-") as tmp:
        shards = start_shards(num_shards, config, tmp)
        specs = {shard_id: proc.spec for shard_id, proc in shards.items()}
        router = ShardRouter(
            specs,
            batch_max_frames=len(tb.aps),
            metrics=metrics,
        )
        if probe is not None:
            from repro.dist.rollup import start_cluster_telemetry
            from repro.obs.http import fetch_json

            telemetry = start_cluster_telemetry(specs, router_metrics=metrics)
            probe(fetch_json(f"{telemetry.url}/healthz"))
        try:
            for k in range(stream_packets):
                if k == kill_at:
                    killed_shard = router.owner_of(sources[0])
                    shards[killed_shard].kill()
                    shards[killed_shard].join()
                    if telemetry is not None and probe is not None:
                        probe(fetch_json(f"{telemetry.url}/healthz"))
                # All sources share one timeline: stale-burst eviction is
                # age-based, and sources interleaved on one shard must
                # not age each other's partial bursts out.
                stamp = k * PACKET_INTERVAL_S
                for source in sources:
                    for i, trace in enumerate(traces[source]):
                        frame = trace[k]
                        router.ingest(
                            f"ap{i}",
                            CsiFrame(
                                csi=frame.csi,
                                rssi_dbm=frame.rssi_dbm,
                                timestamp_s=stamp,
                                source=source,
                            ),
                        )
                for fix in router.take_fixes():
                    fixes_by_source[fix.source].append(fix)
            for fix in router.flush():
                fixes_by_source[fix.source].append(fix)
            for reply in router.pull_metrics():
                shard_id = str(reply.get("shard_id", "?"))
                for ap_id, state in dict(reply.get("breakers", {})).items():
                    breakers[f"{shard_id}/{ap_id}"] = str(state)
            for fix in router.shutdown():
                fixes_by_source[fix.source].append(fix)
        except ShardUnavailableError:
            # Every shard died — the report below shows zero successes;
            # the router API contract (no crash) still held.
            pass
        finally:
            if telemetry is not None:
                telemetry.stop()
            router.close()
            for proc in shards.values():
                proc.kill()
                proc.join(timeout_s=10.0)
    errors: List[float] = []
    fixes_ok = 0
    for source in sources:
        ok = [fix for fix in fixes_by_source[source] if fix.ok]
        if not ok:
            continue
        fixes_ok += 1
        last = ok[-1]
        target = targets[source]
        errors.append(math.hypot(last.x - target.x, last.y - target.y))
    counters = metrics.snapshot()["counters"]
    injected = {
        name[len("dist.failover.") :]: int(value)
        for name, value in counters.items()
        if name.startswith("dist.failover.")
    }
    injected["killed_shards"] = 1 if killed_shard else 0
    return ChaosReport(
        scenario="shard-kill",
        testbed=testbed,
        seed=seed,
        bursts=bursts,
        fixes_attempted=len(sources),
        fixes_ok=fixes_ok,
        degraded_fixes=0,
        median_error_m=float(np.median(errors)) if errors else float("nan"),
        quarantined={},
        injected=injected,
        breakers=breakers,
    )


def run_network_chaos(
    scenario: str,
    testbed: str = "small",
    seed: int = 7,
    packets_per_fix: int = 6,
    bursts: int = 3,
    min_aps: int = 2,
    num_shards: int = 3,
    oversample: float = 4.0,
    restart_budget: int = 2,
    probe: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> ChaosReport:
    """Stream sources through a faulty transport with a supervisor on duty.

    One scenario of the chaos matrix (:data:`NETWORK_SCENARIOS`): the
    router's shard sockets are wrapped by a seeded
    :class:`~repro.faults.network.NetworkFaultInjector` carrying the
    scenario's fault mix, and a :class:`~repro.dist.supervisor.ShardSupervisor`
    polls every round, restarting crashed shards (``crash-restart``
    SIGKILLs the first source's owner mid-stream) and re-admitting
    recovered ones after a health probe.  After the stream, the run
    *settles*: the supervisor is polled until no shard is left dead, so
    the final flush/shutdown sees a whole ring.

    The report's ``injected`` dict carries the scenario verdicts the CLI
    gate asserts beyond fix success:

    * ``replayed`` — journaled frames replayed after failovers (>= 1
      proves at-least-once delivery actually engaged);
    * ``unrouted_sources`` — sources whose ring owner is not a live
      process at the end (must be 0: nobody is stranded);
    * ``excess_fixes`` — successful fixes beyond what the delivered
      packet budget can explain (must be 0: shard-side dedup absorbed
      every redelivery instead of double-counting).

    ``probe`` mirrors :func:`run_shard_kill`: called with the cluster
    ``/healthz`` payload once while healthy and once mid-degradation
    (after the kill; network-only scenarios probe after the stream).
    """
    if scenario not in NETWORK_SCENARIOS:
        raise ConfigurationError(
            f"unknown network scenario {scenario!r}; "
            f"available: {sorted(NETWORK_SCENARIOS)}"
        )
    if testbed not in _TESTBEDS:
        raise ConfigurationError(
            f"unknown testbed {testbed!r}; available: {sorted(_TESTBEDS)}"
        )
    if num_shards < 2:
        raise ConfigurationError("network chaos needs at least 2 shards")
    if oversample < 1.0:
        raise ConfigurationError("oversample must be >= 1.0")
    tb = _TESTBEDS[testbed]()
    sim = tb.simulator()
    stream_packets = max(packets_per_fix, int(round(packets_per_fix * oversample)))
    sources = [f"chaos-{burst:02d}" for burst in range(bursts)]
    targets = {
        source: tb.targets[burst % len(tb.targets)].position
        for burst, source in enumerate(sources)
    }
    data_rng = np.random.default_rng(seed + 1)
    traces = {
        source: [
            sim.generate_trace(
                targets[source], ap, stream_packets, rng=data_rng, source=source
            )
            for ap in tb.aps
        ]
        for source in sources
    }
    config = ShardConfig(
        shard_id="template",
        testbed=testbed,
        packets_per_fix=packets_per_fix,
        min_aps=min_aps,
        max_burst_age_s=4.0 * stream_packets * PACKET_INTERVAL_S,
        seed=seed,
    )
    specs_mix = network_scenario_specs(scenario)
    injector: Optional[NetworkFaultInjector] = None
    metrics = RuntimeMetrics()
    if specs_mix:
        injector = NetworkFaultInjector(
            list(specs_mix), rng=np.random.default_rng(seed + 2), metrics=metrics
        )
    kill_at = max(1, int(stream_packets * 0.4)) if scenario == "crash-restart" else -1
    fixes_by_source: Dict[str, List[WireFix]] = {source: [] for source in sources}
    breakers: Dict[str, str] = {}
    killed_shard = ""
    unrouted = 0
    flush_rounds = 1
    telemetry = None
    with tempfile.TemporaryDirectory(prefix="repro-dist-") as tmp:
        shards = start_shards(num_shards, config, tmp)
        specs = {shard_id: proc.spec for shard_id, proc in shards.items()}
        router = ShardRouter(
            specs,
            batch_max_frames=len(tb.aps),
            metrics=metrics,
            socket_timeout_s=10.0,
            connect_timeout_s=2.0,
            socket_wrapper=injector.wrap if injector is not None else None,
        )
        supervisor = ShardSupervisor(
            shards,
            router=router,
            restart_budget=restart_budget,
            backoff_base_s=0.05,
            backoff_max_s=0.5,
            metrics=metrics,
        )
        if probe is not None:
            from repro.dist.rollup import start_cluster_telemetry
            from repro.obs.http import fetch_json

            telemetry = start_cluster_telemetry(specs, router_metrics=metrics)
            probe(fetch_json(f"{telemetry.url}/healthz"))
        try:
            for k in range(stream_packets):
                if k == kill_at:
                    killed_shard = router.owner_of(sources[0])
                    shards[killed_shard].kill()
                    shards[killed_shard].join()
                    if telemetry is not None and probe is not None:
                        probe(fetch_json(f"{telemetry.url}/healthz"))
                stamp = k * PACKET_INTERVAL_S
                for source in sources:
                    for i, trace in enumerate(traces[source]):
                        frame = trace[k]
                        _ingest_with_recovery(
                            router,
                            supervisor,
                            f"ap{i}",
                            CsiFrame(
                                csi=frame.csi,
                                rssi_dbm=frame.rssi_dbm,
                                timestamp_s=stamp,
                                source=source,
                            ),
                        )
                supervisor.poll()
                for fix in router.take_fixes():
                    fixes_by_source[fix.source].append(fix)
            if telemetry is not None and probe is not None and kill_at < 0:
                probe(fetch_json(f"{telemetry.url}/healthz"))
            flushed, flush_rounds = _flush_with_recovery(router, supervisor)
            for fix in flushed:
                fixes_by_source[fix.source].append(fix)
            for reply in router.pull_metrics():
                shard_id = str(reply.get("shard_id", "?"))
                for ap_id, state in dict(reply.get("breakers", {})).items():
                    breakers[f"{shard_id}/{ap_id}"] = str(state)
            for source in sources:
                owner = router.owner_of(source)
                proc = shards.get(owner)
                if proc is None or not proc.process.is_alive():
                    unrouted += 1
            for fix in router.shutdown():
                fixes_by_source[fix.source].append(fix)
        except ShardUnavailableError:
            # Budget exhausted with everything dead — the report shows
            # zero successes; the router/supervisor contract still held.
            unrouted = len(sources)
        finally:
            if telemetry is not None:
                telemetry.stop()
            router.close()
            for proc in shards.values():
                proc.kill()
                proc.join(timeout_s=10.0)
    errors: List[float] = []
    fixes_ok = 0
    excess_fixes = 0
    # Every (source, ap) stream carries stream_packets unique seqs, so
    # at most stream_packets // packets_per_fix ingest-triggered fixes
    # can exist per source, plus one forced partial-burst fix per flush
    # round (a re-flush only sees frames replayed after the previous
    # one, so each unique frame still feeds at most one fix) and one for
    # a second shard holding frames at shutdown.
    fix_cap = stream_packets // packets_per_fix + flush_rounds + 1
    for source in sources:
        ok = [fix for fix in fixes_by_source[source] if fix.ok]
        excess_fixes += max(0, len(ok) - fix_cap)
        if not ok:
            continue
        fixes_ok += 1
        last = ok[-1]
        target = targets[source]
        errors.append(math.hypot(last.x - target.x, last.y - target.y))
    counters = metrics.snapshot()["counters"]
    injected = {
        name[len("dist.failover.") :]: int(value)
        for name, value in counters.items()
        if name.startswith("dist.failover.")
    }
    for name, value in counters.items():
        if name.startswith("dist.supervisor."):
            injected[name[len("dist.") :]] = int(value)
        elif name.startswith("faults.network."):
            injected[name[len("faults.") :]] = int(value)
    injected.setdefault("replayed", 0)
    injected["killed_shards"] = 1 if killed_shard else 0
    injected["unrouted_sources"] = unrouted
    injected["excess_fixes"] = excess_fixes
    return ChaosReport(
        scenario=scenario,
        testbed=testbed,
        seed=seed,
        bursts=bursts,
        fixes_attempted=len(sources),
        fixes_ok=fixes_ok,
        degraded_fixes=0,
        median_error_m=float(np.median(errors)) if errors else float("nan"),
        quarantined={},
        injected=injected,
        breakers=breakers,
    )


def _settle(
    router: ShardRouter, supervisor: ShardSupervisor, timeout_s: float = 10.0
) -> None:
    """Poll the supervisor until no shard is dead (or the deadline hits)."""
    deadline = time.monotonic() + timeout_s
    while router.dead_shards() and time.monotonic() < deadline:
        supervisor.poll(force=True)
        if router.dead_shards():
            time.sleep(0.02)


def _flush_with_recovery(
    router: ShardRouter, supervisor: ShardSupervisor, max_rounds: int = 5
) -> Tuple[List[WireFix], int]:
    """Flush every shard, re-settling and re-flushing after mid-flush faults.

    A fault striking *during* the final flush fails the shard mid-drain:
    its journaled frames are replayed (or stranded until a readmit), so
    one flush pass is not enough — the replayed frames sit buffered on
    their new owner.  Settle and flush again until a pass completes with
    the ring whole.  Returns the collected fixes and the number of flush
    rounds actually run (the caller's fix-count accounting needs it:
    each round may force one partial-burst fix per source).
    """
    fixes: List[WireFix] = []
    rounds = 0
    for _ in range(max_rounds):
        _settle(router, supervisor)
        rounds += 1
        fixes.extend(router.flush())
        if not router.dead_shards():
            break
    return fixes, rounds


def _ingest_with_recovery(
    router: ShardRouter,
    supervisor: ShardSupervisor,
    ap_id: str,
    frame: CsiFrame,
) -> None:
    """Ingest one frame, riding out transient total-ring outages.

    A fault storm can briefly fail every shard between supervisor
    polls; a real client would back off and retry, so the harness does
    the same: force a recovery poll and retry until the supervisor
    itself gives up (budget exhaustion propagates).
    """
    for _ in range(10):
        try:
            router.ingest(ap_id, frame)
            return
        except ShardUnavailableError:
            # Raises once every shard is dead with its budget spent.
            readmitted = supervisor.poll(force=True)
            if not readmitted:
                time.sleep(0.05)
    router.ingest(ap_id, frame)


def run_moving_target(
    testbed: str = "small",
    seed: int = 7,
    packets_per_fix: int = 6,
    bursts: int = 8,
    min_aps: int = 2,
    num_shards: int = 3,
    num_sources: int = 3,
    speed: str = "pedestrian",
    kill_fraction: float = 0.4,
    probe: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> ChaosReport:
    """Kill a shard mid-track; its tracks must *resume*, not restart.

    ``num_sources`` moving targets walk the testbed route at ``speed``
    (see :data:`~repro.testbed.mobility.SPEED_PROFILES`), their CSI
    re-raytraced per burst by :func:`repro.mobility.motion.motion_bursts`
    under a shared :class:`~repro.mobility.handoff.HandoffPolicy`, while
    tracking shards (``ShardConfig(track=True)``) assemble fixes and
    maintain per-source Kalman tracks.  After ``kill_fraction`` of the
    ``bursts``, the shard owning the first source is SIGKILLed; the
    router hands its cached track checkpoints to the ring successors
    (``RESUME``) before replaying journaled traffic.

    The report's ``injected`` section carries the failover counters plus
    the track-continuity verdicts the CLI gate asserts:

    * ``resumed_tracks`` — rerouted sources whose post-kill fixes kept
      the pre-kill track id (the id embeds the minting shard, so a
      resumed track is provably the dead shard's state, adopted);
    * ``cold_restarts`` — rerouted sources that instead minted a fresh
      track on the successor (must be 0);
    * ``duplicate_track_ids`` — sources whose fixes carry more than one
      track id (must be 0: one target, one track).
    """
    if testbed not in _TESTBEDS:
        raise ConfigurationError(
            f"unknown testbed {testbed!r}; available: {sorted(_TESTBEDS)}"
        )
    if num_shards < 2:
        raise ConfigurationError("moving-target needs at least 2 shards")
    if num_sources < 1:
        raise ConfigurationError("moving-target needs at least 1 source")
    if not 0.0 < kill_fraction < 1.0:
        raise ConfigurationError("kill_fraction must be in (0, 1)")
    if bursts < 3:
        raise ConfigurationError(
            "moving-target needs >= 3 bursts (pre-kill, kill, post-kill)"
        )
    from repro.mobility.evaluation import sample_speed_trajectory
    from repro.mobility.handoff import HandoffPolicy
    from repro.mobility.motion import motion_bursts

    tb = _TESTBEDS[testbed]()
    sim = tb.simulator()
    aps = {f"ap{i}": ap for i, ap in enumerate(tb.aps)}
    burst_period_s = packets_per_fix * PACKET_INTERVAL_S
    trajectory = sample_speed_trajectory(tb, speed, bursts, burst_period_s)
    sources = [f"chaos-{idx:02d}" for idx in range(num_sources)]
    metrics = RuntimeMetrics()
    # One shared roaming policy: every source hands off between APs as
    # it moves, and the handoff.* counters land in this run's report.
    # The cap keeps the serving set to the strongest three APs, so a
    # target crossing the floor actually changes cells mid-track.
    policy = HandoffPolicy(
        min_serving=min_aps, max_serving=max(min_aps, 3), metrics=metrics
    )
    bursts_by_source = {
        source: motion_bursts(
            sim,
            aps,
            trajectory,
            packets_per_fix,
            rng=np.random.default_rng(seed + 1 + idx),
            source=source,
            packet_interval_s=PACKET_INTERVAL_S,
            policy=policy,
            metrics=metrics,
        )
        for idx, source in enumerate(sources)
    }
    config = ShardConfig(
        shard_id="template",
        testbed=testbed,
        packets_per_fix=packets_per_fix,
        min_aps=min_aps,
        max_burst_age_s=4.0 * bursts * burst_period_s,
        seed=seed,
        track=True,
    )
    kill_at = max(1, int(len(trajectory) * kill_fraction))
    kill_stamp = trajectory[kill_at][0]
    fixes_by_source: Dict[str, List[WireFix]] = {source: [] for source in sources}
    breakers: Dict[str, str] = {}
    killed_shard = ""
    owners_before_kill: Dict[str, str] = {}
    telemetry = None
    with tempfile.TemporaryDirectory(prefix="repro-dist-") as tmp:
        shards = start_shards(num_shards, config, tmp)
        specs = {shard_id: proc.spec for shard_id, proc in shards.items()}
        router = ShardRouter(
            specs,
            batch_max_frames=len(tb.aps),
            metrics=metrics,
        )
        if probe is not None:
            from repro.dist.rollup import start_cluster_telemetry
            from repro.obs.http import fetch_json

            telemetry = start_cluster_telemetry(specs, router_metrics=metrics)
            probe(fetch_json(f"{telemetry.url}/healthz"))
        try:
            for b in range(len(trajectory)):
                if b == kill_at:
                    owners_before_kill = {
                        source: router.owner_of(source) for source in sources
                    }
                    killed_shard = owners_before_kill[sources[0]]
                    shards[killed_shard].kill()
                    shards[killed_shard].join()
                    if telemetry is not None and probe is not None:
                        probe(fetch_json(f"{telemetry.url}/healthz"))
                # Interleave packet-by-packet across sources (packet k of
                # every source before packet k + 1 of any), as a live
                # collection plane would deliver them.
                for k in range(packets_per_fix):
                    for source in sources:
                        burst = bursts_by_source[source][b]
                        for rec in burst.recordings:
                            frame = rec.trace[k]
                            router.ingest(
                                rec.ap_id,
                                CsiFrame(
                                    csi=frame.csi,
                                    rssi_dbm=frame.rssi_dbm,
                                    timestamp_s=frame.timestamp_s,
                                    source=source,
                                ),
                            )
                for fix in router.take_fixes():
                    fixes_by_source[fix.source].append(fix)
            for fix in router.flush():
                fixes_by_source[fix.source].append(fix)
            for reply in router.pull_metrics():
                shard_id = str(reply.get("shard_id", "?"))
                for ap_id, state in dict(reply.get("breakers", {})).items():
                    breakers[f"{shard_id}/{ap_id}"] = str(state)
            for fix in router.shutdown():
                fixes_by_source[fix.source].append(fix)
        except ShardUnavailableError:
            pass
        finally:
            if telemetry is not None:
                telemetry.stop()
            router.close()
            for proc in shards.values():
                proc.kill()
                proc.join(timeout_s=10.0)
    # ------------------------------------------------------------------
    # Per-fix track error against the moving ground truth.
    errors: List[float] = []
    fixes_ok = 0
    for source in sources:
        ok = [fix for fix in fixes_by_source[source] if fix.ok]
        if not ok:
            continue
        fixes_ok += 1
        for fix in ok:
            # The fix timestamp is the newest packet of burst b, so it
            # maps back to the waypoint by integer division.
            b = min(int(fix.timestamp_s / burst_period_s), len(trajectory) - 1)
            truth = trajectory[b][1]
            errors.append(math.hypot(fix.x - truth.x, fix.y - truth.y))
    # ------------------------------------------------------------------
    # Track-continuity verdicts (see docstring).
    rerouted = [
        source
        for source in sources
        if owners_before_kill.get(source) == killed_shard
    ]
    resumed_tracks = 0
    cold_restarts = 0
    duplicate_track_ids = 0
    for source in sources:
        ids = {
            fix.track_id for fix in fixes_by_source[source] if fix.track_id
        }
        duplicate_track_ids += max(0, len(ids) - 1)
    for source in rerouted:
        pre = {
            fix.track_id
            for fix in fixes_by_source[source]
            if fix.track_id and fix.timestamp_s < kill_stamp
        }
        post = {
            fix.track_id
            for fix in fixes_by_source[source]
            if fix.track_id and fix.timestamp_s >= kill_stamp
        }
        if pre and post <= pre and post:
            resumed_tracks += 1
        for track_id in post - pre:
            # A track id minted after the kill under any *other* origin
            # means the successor restarted the track cold.
            if f"@{killed_shard}#" not in track_id:
                cold_restarts += 1
    counters = metrics.snapshot()["counters"]
    injected = {
        name[len("dist.failover.") :]: int(value)
        for name, value in counters.items()
        if name.startswith("dist.failover.")
    }
    injected["tracks_handed_off"] = int(counters.get("dist.tracks.resumed", 0))
    injected["tracks_restored"] = int(counters.get("dist.tracks.restored", 0))
    injected["killed_shards"] = 1 if killed_shard else 0
    injected["rerouted_sources"] = len(rerouted)
    injected["resumed_tracks"] = resumed_tracks
    injected["cold_restarts"] = cold_restarts
    injected["duplicate_track_ids"] = duplicate_track_ids
    injected["handoff_events"] = int(counters.get("handoff.events", 0))
    return ChaosReport(
        scenario="moving-target",
        testbed=testbed,
        seed=seed,
        bursts=len(trajectory),
        fixes_attempted=len(sources),
        fixes_ok=fixes_ok,
        degraded_fixes=0,
        median_error_m=float(np.median(errors)) if errors else float("nan"),
        quarantined={},
        injected=injected,
        breakers=breakers,
    )
