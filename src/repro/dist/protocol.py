"""The ``repro.dist`` wire protocol: length-prefixed binary messages.

Shards and the router speak a compact framed protocol over TCP or Unix
domain sockets.  Every message is::

    +-------+---------+----------+--------------+=========+
    | magic | version | msg type | payload len  | payload |
    | 2 B   | 1 B     | 1 B      | 4 B (u32 BE) | N bytes |
    +-------+---------+----------+--------------+=========+

* ``magic`` is ``b"SD"`` (SpotFi Dist); anything else is rejected.
* ``version`` is :data:`PROTOCOL_VERSION`; peers speaking a different
  version are rejected up front instead of mis-parsing payloads.
* ``msg type`` is a :class:`MessageType` value.
* ``payload len`` is bounded by :data:`MAX_PAYLOAD_BYTES` so a corrupt
  or hostile header cannot make a peer allocate gigabytes.

CSI ingest (:data:`MessageType.INGEST`) carries a binary batch of
``(ap_id, CsiFrame)`` entries — see :func:`encode_frames` — because the
frame matrix dominates the payload and JSON would triple it.  Control
messages (flush, health, metrics, fix events) carry JSON payloads, which
keeps them debuggable and schema-flexible.

Malformed input maps onto the library's error hierarchy:

* framing damage (bad magic/version/type, truncated or oversized
  payloads, undecodable JSON) raises
  :class:`~repro.errors.TraceFormatError`;
* structurally well-framed but semantically invalid frames (too few
  antennas/subcarriers, non-finite CSI) raise
  :class:`~repro.errors.ValidationError` — the same verdict the in-server
  :class:`~repro.faults.validator.FrameValidator` hands out.
"""

from __future__ import annotations

import json
import math
import socket
import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CsiShapeError, TraceFormatError, ValidationError
from repro.obs.trace import TraceContext
from repro.wifi.csi import CsiFrame

#: First two bytes of every message.
MAGIC = b"SD"

#: Wire protocol version; bumped on any layout change.  Version 2 added
#: the per-frame delivery sequence number to INGEST batches (the
#: at-least-once failover dedup key).
PROTOCOL_VERSION = 2

#: Upper bound on a single message payload (guards allocation).
MAX_PAYLOAD_BYTES = 64 * 1024 * 1024

#: Message header: magic, version, msg type, payload length.
HEADER = struct.Struct("!2sBBI")

# rssi_dbm, timestamp_s, antennas, subcarriers, seq
_FRAME_META = struct.Struct("!ddHHI")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")

#: On-wire dtype for CSI matrices (explicit endianness; 16 B per entry).
WIRE_CSI_DTYPE = "<c16"


class MessageType(IntEnum):
    """Message kinds the router and shards exchange.

    Request/reply pairing: ``INGEST``/``INGEST_TRACED``/``FLUSH`` ->
    ``FIXES``, ``HEALTH`` -> ``HEALTH_OK``, ``METRICS`` ->
    ``METRICS_REPLY``, ``SHUTDOWN`` -> ``BYE``.  Any request may instead
    be answered with ``ERROR`` (JSON ``{"kind": ..., "message": ...}``).

    ``INGEST_TRACED`` is ``INGEST`` with a trace-context prefix (see
    :func:`encode_traced_ingest`); a router only emits it when a live,
    sampled trace needs to follow the batch, so tracing-unaware
    deployments never see the new type.

    ``RESUME`` hands a failed shard's track checkpoints to its ring
    successor during failover (JSON ``{"tracks": {source: checkpoint}}``,
    see :mod:`repro.mobility.tracks`); the successor adopts the tracks
    and answers ``RESUME_OK`` (``{"resumed": n}``).  The router sends it
    *before* replaying journaled traffic, so the restored state is in
    place when the replayed packets trigger fixes.
    """

    INGEST = 1
    FLUSH = 2
    FIXES = 3
    HEALTH = 4
    HEALTH_OK = 5
    METRICS = 6
    METRICS_REPLY = 7
    SHUTDOWN = 8
    BYE = 9
    ERROR = 10
    INGEST_TRACED = 11
    RESUME = 12
    RESUME_OK = 13


#: Declared request -> reply pairing, checked by analysis rule REP017:
#: every message type must either appear here or be listed in
#: :data:`UNPAIRED_MESSAGES`, so adding an enum member without deciding
#: its conversation role fails the static-analysis gate.
REQUEST_REPLY: Dict[MessageType, MessageType] = {
    MessageType.INGEST: MessageType.FIXES,
    MessageType.INGEST_TRACED: MessageType.FIXES,
    MessageType.FLUSH: MessageType.FIXES,
    MessageType.HEALTH: MessageType.HEALTH_OK,
    MessageType.METRICS: MessageType.METRICS_REPLY,
    MessageType.SHUTDOWN: MessageType.BYE,
    MessageType.RESUME: MessageType.RESUME_OK,
}

#: Message types that are deliberately not part of a request/reply pair.
#: ERROR may answer *any* request (see the MessageType docstring).
UNPAIRED_MESSAGES = frozenset({MessageType.ERROR})


# ----------------------------------------------------------------------
# Message framing
# ----------------------------------------------------------------------
def encode_message(msg_type: MessageType, payload: bytes = b"") -> bytes:
    """Frame one message: header plus payload."""
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise TraceFormatError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte protocol cap"
        )
    return HEADER.pack(MAGIC, PROTOCOL_VERSION, int(msg_type), len(payload)) + payload


def decode_header(data: bytes) -> Tuple[MessageType, int]:
    """Parse and validate a message header; returns (type, payload length)."""
    if len(data) < HEADER.size:
        raise TraceFormatError(
            f"message header truncated: got {len(data)} of {HEADER.size} bytes"
        )
    magic, version, raw_type, length = HEADER.unpack_from(data)
    if magic != MAGIC:
        raise TraceFormatError(f"bad protocol magic {magic!r}; expected {MAGIC!r}")
    if version != PROTOCOL_VERSION:
        raise TraceFormatError(
            f"unsupported protocol version {version}; this peer speaks "
            f"{PROTOCOL_VERSION}"
        )
    try:
        msg_type = MessageType(raw_type)
    except ValueError:
        raise TraceFormatError(f"unknown message type {raw_type}") from None
    if length > MAX_PAYLOAD_BYTES:
        raise TraceFormatError(
            f"declared payload of {length} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte protocol cap"
        )
    return msg_type, length


def decode_message(data: bytes) -> Tuple[MessageType, bytes]:
    """Decode one complete in-memory message (header + payload)."""
    msg_type, length = decode_header(data)
    payload = data[HEADER.size : HEADER.size + length]
    if len(payload) < length:
        raise TraceFormatError(
            f"message payload truncated: got {len(payload)} of {length} bytes"
        )
    return msg_type, payload


# ----------------------------------------------------------------------
# Socket I/O
# ----------------------------------------------------------------------
def send_message(
    sock: socket.socket, msg_type: MessageType, payload: bytes = b""
) -> None:
    """Write one framed message to a connected socket."""
    sock.sendall(encode_message(msg_type, payload))


def recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes.

    Returns None on a clean EOF before the first byte (peer closed
    between messages); raises :class:`TraceFormatError` when the stream
    ends mid-read (a message was cut off).
    """
    chunks: List[bytes] = []
    remaining = count
    while remaining > 0:
        # Deadline is armed by the caller via sock.settimeout (router and
        # shard both do); recv then raises socket.timeout, not hangs.
        chunk = sock.recv(remaining)  # repro: noqa REP014
        if not chunk:
            if remaining == count:
                return None
            raise TraceFormatError(
                f"connection closed mid-message: got {count - remaining} of "
                f"{count} bytes"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Optional[Tuple[MessageType, bytes]]:
    """Read one framed message; None on clean EOF at a message boundary."""
    header = recv_exact(sock, HEADER.size)
    if header is None:
        return None
    msg_type, length = decode_header(header)
    if length == 0:
        return msg_type, b""
    payload = recv_exact(sock, length)
    if payload is None:
        raise TraceFormatError("connection closed before the message payload")
    return msg_type, payload


# ----------------------------------------------------------------------
# CSI frame batches (binary)
# ----------------------------------------------------------------------
def _encode_str(value: str) -> bytes:
    raw = value.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ValidationError(f"string field of {len(raw)} bytes exceeds 65535")
    return _U16.pack(len(raw)) + raw


class _Cursor:
    """Bounds-checked reader over a payload buffer."""

    __slots__ = ("data", "offset")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def take(self, count: int) -> bytes:
        end = self.offset + count
        if end > len(self.data):
            raise TraceFormatError(
                f"frame batch truncated at byte {self.offset}: wanted {count} "
                f"more bytes, {len(self.data) - self.offset} left"
            )
        chunk = self.data[self.offset : end]
        self.offset = end
        return chunk

    def take_str(self) -> str:
        (length,) = _U16.unpack(self.take(_U16.size))
        try:
            return self.take(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise TraceFormatError(f"undecodable string field: {exc}") from exc


def encode_frames(entries: Sequence[Tuple[Any, ...]]) -> bytes:
    """Encode a batch of entries into an INGEST payload.

    Each entry is ``(ap_id, frame)`` or ``(ap_id, frame, seq)``; ``seq``
    is the router-assigned per-source delivery sequence number used for
    at-least-once redelivery dedup on the shard side.  Omitted (or 0) it
    means "unsequenced" — such frames bypass dedup entirely.
    """
    chunks: List[bytes] = [_U32.pack(len(entries))]
    for entry in entries:
        ap_id, frame = entry[0], entry[1]
        seq = int(entry[2]) if len(entry) > 2 else 0
        if not 0 <= seq <= 0xFFFFFFFF:
            raise ValidationError(f"frame seq {seq} outside the u32 range")
        csi = np.ascontiguousarray(frame.csi, dtype=np.complex128)
        chunks.append(_encode_str(ap_id))
        chunks.append(_encode_str(frame.source))
        chunks.append(
            _FRAME_META.pack(
                float(frame.rssi_dbm),
                float(frame.timestamp_s),
                csi.shape[0],
                csi.shape[1],
                seq,
            )
        )
        chunks.append(csi.astype(WIRE_CSI_DTYPE).tobytes())
    return b"".join(chunks)


def decode_frames_seq(payload: bytes) -> List[Tuple[str, CsiFrame, int]]:
    """Decode an INGEST payload into ``(ap_id, CsiFrame, seq)`` entries.

    Framing damage raises :class:`TraceFormatError`; a well-framed entry
    whose CSI is semantically invalid (too few antennas/subcarriers,
    non-finite values) raises :class:`ValidationError`.
    """
    cursor = _Cursor(payload)
    (count,) = _U32.unpack(cursor.take(_U32.size))
    entries: List[Tuple[str, CsiFrame, int]] = []
    for index in range(count):
        ap_id = cursor.take_str()
        source = cursor.take_str()
        rssi_dbm, timestamp_s, antennas, subcarriers, seq = _FRAME_META.unpack(
            cursor.take(_FRAME_META.size)
        )
        if antennas < 2 or subcarriers < 2:
            raise ValidationError(
                f"frame {index}: CSI needs >= 2 antennas and >= 2 subcarriers, "
                f"got ({antennas}, {subcarriers})"
            )
        raw = cursor.take(antennas * subcarriers * 16)
        csi = (
            np.frombuffer(raw, dtype=WIRE_CSI_DTYPE)
            .reshape(antennas, subcarriers)
            .astype(np.complex128)
        )
        try:
            frame = CsiFrame(
                csi=csi, rssi_dbm=rssi_dbm, timestamp_s=timestamp_s, source=source
            )
        except CsiShapeError as exc:
            raise ValidationError(f"frame {index}: {exc}") from exc
        entries.append((ap_id, frame, seq))
    if cursor.offset != len(payload):
        raise TraceFormatError(
            f"frame batch has {len(payload) - cursor.offset} trailing bytes"
        )
    return entries


def decode_frames(payload: bytes) -> List[Tuple[str, CsiFrame]]:
    """Decode an INGEST payload back into ``(ap_id, CsiFrame)`` entries.

    The sequence-number-free view of :func:`decode_frames_seq`, for
    callers that predate at-least-once delivery.
    """
    return [(ap_id, frame) for ap_id, frame, _seq in decode_frames_seq(payload)]


# ----------------------------------------------------------------------
# Trace-context propagation
# ----------------------------------------------------------------------
def encode_trace_context(context: TraceContext) -> bytes:
    """Encode one trace context as a u16-length-prefixed JSON blob."""
    raw = json.dumps(context.to_dict(), separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )
    if len(raw) > 0xFFFF:
        raise ValidationError(f"trace context of {len(raw)} bytes exceeds 65535")
    return _U16.pack(len(raw)) + raw


def encode_traced_ingest(
    entries: Sequence[Tuple[Any, ...]], context: TraceContext
) -> bytes:
    """Encode an ``INGEST_TRACED`` payload: trace context, then the batch.

    The suffix is byte-identical to a plain :func:`encode_frames`
    payload, so the shard-side decode path is shared.
    """
    return encode_trace_context(context) + encode_frames(entries)


def split_traced_ingest(payload: bytes) -> Tuple[TraceContext, bytes]:
    """Split an ``INGEST_TRACED`` payload into context + raw batch suffix.

    The suffix is a plain INGEST payload; decode it with
    :func:`decode_frames` or :func:`decode_frames_seq` as needed.
    """
    if len(payload) < _U16.size:
        raise TraceFormatError("INGEST_TRACED payload shorter than its length prefix")
    (length,) = _U16.unpack_from(payload)
    end = _U16.size + length
    if len(payload) < end:
        raise TraceFormatError(
            f"trace context truncated: declared {length} bytes, "
            f"{len(payload) - _U16.size} available"
        )
    try:
        data = json.loads(payload[_U16.size : end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceFormatError(f"undecodable trace context: {exc}") from exc
    if not isinstance(data, dict):
        raise TraceFormatError("trace context must be a JSON object")
    return TraceContext.from_dict(data), payload[end:]


def decode_traced_ingest(
    payload: bytes,
) -> Tuple[TraceContext, List[Tuple[str, CsiFrame]]]:
    """Split an ``INGEST_TRACED`` payload into its context and batch."""
    context, suffix = split_traced_ingest(payload)
    return context, decode_frames(suffix)


# ----------------------------------------------------------------------
# JSON payloads (control plane)
# ----------------------------------------------------------------------
def encode_json(obj: Any) -> bytes:
    """Serialize a control-plane payload (compact separators)."""
    return json.dumps(obj, separators=(",", ":"), sort_keys=True).encode("utf-8")


def decode_json(payload: bytes) -> Any:
    """Parse a control-plane payload; bad JSON is a framing error."""
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceFormatError(f"undecodable JSON payload: {exc}") from exc


@dataclass(frozen=True)
class WireFix:
    """A fix event flattened for the wire.

    Carries the outcome a client needs (position, success, AP count) and
    the shard that produced it — not the full
    :class:`~repro.core.pipeline.SpotFiFix`, whose per-AP reports and
    spectra stay shard-local (pull them via tracing on the shard).

    When the shard tracks, fixes also carry the ``track_id`` and a
    compact ``track`` checkpoint (see
    :meth:`repro.mobility.tracks.ManagedTrack.checkpoint`) so the
    router always holds a fresh copy it can hand to the ring successor
    on failover.  Both fields are optional on the wire — pre-tracking
    peers simply never set them.
    """

    source: str
    timestamp_s: float
    ok: bool
    x: float = float("nan")
    y: float = float("nan")
    num_aps: int = 0
    shard: str = ""
    estimator: str = ""
    downgraded: bool = False
    track_id: str = ""
    track: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data view (JSON-safe; NaN position encoded as null)."""
        data: Dict[str, Any] = {
            "source": self.source,
            "timestamp_s": self.timestamp_s,
            "ok": self.ok,
            "x": None if math.isnan(self.x) else self.x,
            "y": None if math.isnan(self.y) else self.y,
            "num_aps": self.num_aps,
            "shard": self.shard,
            "estimator": self.estimator,
            "downgraded": self.downgraded,
        }
        # Tracking fields ride only when set, keeping non-tracking
        # payloads byte-identical to the historical encoding.
        if self.track_id:
            data["track_id"] = self.track_id
        if self.track is not None:
            data["track"] = self.track
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WireFix":
        """Rebuild a fix shipped by :meth:`to_dict`."""
        try:
            return cls(
                source=str(data["source"]),
                timestamp_s=float(data["timestamp_s"]),
                ok=bool(data["ok"]),
                x=float("nan") if data.get("x") is None else float(data["x"]),
                y=float("nan") if data.get("y") is None else float(data["y"]),
                num_aps=int(data.get("num_aps", 0)),
                shard=str(data.get("shard", "")),
                estimator=str(data.get("estimator", "")),
                downgraded=bool(data.get("downgraded", False)),
                track_id=str(data.get("track_id", "")),
                track=dict(data["track"])
                if isinstance(data.get("track"), dict)
                else None,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceFormatError(f"malformed wire fix {data!r}: {exc}") from exc


def encode_fixes(fixes: Sequence[WireFix]) -> bytes:
    """Encode a FIXES/BYE payload."""
    return encode_json({"fixes": [fix.to_dict() for fix in fixes]})


def decode_fixes(payload: bytes) -> List[WireFix]:
    """Decode a FIXES/BYE payload."""
    data = decode_json(payload)
    if not isinstance(data, dict) or not isinstance(data.get("fixes"), list):
        raise TraceFormatError("FIXES payload must be a JSON object with 'fixes'")
    return [WireFix.from_dict(entry) for entry in data["fixes"]]


def encode_resume(tracks: Dict[str, Dict[str, Any]]) -> bytes:
    """Encode a RESUME payload: track checkpoints keyed by source."""
    return encode_json({"tracks": tracks})


def decode_resume(payload: bytes) -> Dict[str, Dict[str, Any]]:
    """Decode a RESUME payload."""
    data = decode_json(payload)
    if not isinstance(data, dict) or not isinstance(data.get("tracks"), dict):
        raise TraceFormatError("RESUME payload must be a JSON object with 'tracks'")
    tracks: Dict[str, Dict[str, Any]] = {}
    for source, checkpoint in data["tracks"].items():
        if not isinstance(checkpoint, dict):
            raise TraceFormatError(
                f"RESUME checkpoint for {source!r} must be an object"
            )
        tracks[str(source)] = checkpoint
    return tracks


# ----------------------------------------------------------------------
# Bind addresses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BindAddress:
    """A parsed ``unix:/path`` or ``tcp:host:port`` endpoint."""

    kind: str
    path: str = ""
    host: str = ""
    port: int = 0

    def spec(self) -> str:
        """The canonical string form (inverse of :func:`parse_bind`)."""
        if self.kind == "unix":
            return f"unix:{self.path}"
        return f"tcp:{self.host}:{self.port}"

    def connect(self, timeout_s: float = 10.0) -> socket.socket:
        """Open a blocking client connection to this endpoint."""
        if self.kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(timeout_s)
        try:
            sock.connect(self.path if self.kind == "unix" else (self.host, self.port))
        except OSError:
            sock.close()
            raise
        return sock

    def listen(self, backlog: int = 16) -> socket.socket:
        """Bind and listen on this endpoint (shard side)."""
        if self.kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.bind(self.path)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((self.host, self.port))
        sock.listen(backlog)
        return sock


def parse_bind(spec: str) -> BindAddress:
    """Parse ``unix:/path/to.sock`` or ``tcp:HOST:PORT`` into an address."""
    if spec.startswith("unix:"):
        path = spec[len("unix:") :]
        if not path:
            raise TraceFormatError(f"bind spec {spec!r} has an empty socket path")
        return BindAddress(kind="unix", path=path)
    if spec.startswith("tcp:"):
        rest = spec[len("tcp:") :]
        host, sep, port_text = rest.rpartition(":")
        if not sep or not host:
            raise TraceFormatError(
                f"bind spec {spec!r} must look like tcp:HOST:PORT"
            )
        try:
            port = int(port_text)
        except ValueError:
            raise TraceFormatError(
                f"bind spec {spec!r} has a non-numeric port {port_text!r}"
            ) from None
        if not 0 < port < 65536:
            raise TraceFormatError(f"bind spec {spec!r} port out of range")
        return BindAddress(kind="tcp", host=host, port=port)
    raise TraceFormatError(
        f"bind spec {spec!r} must start with 'unix:' or 'tcp:'"
    )
