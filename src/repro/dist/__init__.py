"""Distributed serving: shard workers, consistent-hash routing, rollup.

``repro.dist`` scales the streaming :class:`~repro.server.SpotFiServer`
horizontally: shard subprocesses each host a full server behind a
length-prefixed binary wire protocol (:mod:`~repro.dist.protocol`), a
:class:`ShardRouter` consistent-hashes ``source`` keys onto them with
batching, pipelining and failover (:mod:`~repro.dist.router`), and the
rollup path merges every shard's metrics into one Prometheus exposition
(:mod:`~repro.dist.rollup`).  A :class:`ShardSupervisor`
(:mod:`~repro.dist.supervisor`) restarts crashed shards and re-admits
them to the ring after a passing health probe, closing the failover
loop.  See ``docs/DIST.md`` for the protocol layout, shard lifecycle,
and the at-least-once delivery / supervision model.
"""

from repro.dist.protocol import (
    MAGIC,
    MAX_PAYLOAD_BYTES,
    PROTOCOL_VERSION,
    BindAddress,
    MessageType,
    WireFix,
    decode_frames,
    decode_frames_seq,
    decode_message,
    encode_frames,
    encode_message,
    parse_bind,
    split_traced_ingest,
)
from repro.dist.replay import IngestSink, stream_dat_capture, stream_dataset
from repro.dist.rollup import merge_snapshots, pull_shard_metrics, rollup_exposition
from repro.dist.router import HashRing, ShardRouter
from repro.dist.shard import (
    SeqDeduper,
    ShardConfig,
    ShardProcess,
    ShardServer,
    build_server,
    run_shard,
    start_shards,
)
from repro.dist.supervisor import ShardSupervisor

__all__ = [
    "MAGIC",
    "MAX_PAYLOAD_BYTES",
    "PROTOCOL_VERSION",
    "BindAddress",
    "HashRing",
    "IngestSink",
    "MessageType",
    "SeqDeduper",
    "ShardConfig",
    "ShardProcess",
    "ShardRouter",
    "ShardServer",
    "ShardSupervisor",
    "WireFix",
    "build_server",
    "decode_frames",
    "decode_frames_seq",
    "decode_message",
    "encode_frames",
    "encode_message",
    "merge_snapshots",
    "parse_bind",
    "pull_shard_metrics",
    "rollup_exposition",
    "run_shard",
    "split_traced_ingest",
    "start_shards",
    "stream_dat_capture",
    "stream_dataset",
]
