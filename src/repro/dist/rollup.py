"""Cluster-wide metrics rollup: many shard snapshots, one exposition.

Each shard keeps its own :class:`~repro.runtime.RuntimeMetrics` — the
same counters, stage timings and histograms a single-process deployment
would have.  The rollup path pulls every shard's plain-data snapshot
over the wire (``METRICS`` / ``METRICS_REPLY``), rehydrates each with
:meth:`~repro.runtime.metrics.RuntimeMetrics.from_snapshot`, folds them
together with :meth:`~repro.runtime.metrics.RuntimeMetrics.merge` —
histogram buckets add, so cluster-wide p50/p99 are computed over the
union of per-item samples, not averaged per shard — and renders one
Prometheus exposition.

Shard-scoped gauges keep their origin visible: breaker states are
namespaced ``{shard_id}/{ap_id}`` (one target AP can only trip on the
shard that serves it), and steering-cache stats are summed with the hit
rate recomputed from the summed hits/misses.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from repro.dist import protocol
from repro.dist.protocol import MessageType, parse_bind
from repro.errors import TraceFormatError
from repro.obs import render_prometheus
from repro.runtime import RuntimeMetrics

_CACHE_COUNTER_KEYS = ("hits", "misses", "evictions", "entries")


def merge_snapshots(snapshots: List[Mapping[str, Any]]) -> Dict[str, Any]:
    """Merge per-shard metrics snapshots into one cluster snapshot.

    Counters add; timings add with histograms merged bucket-wise (all
    shards share :data:`~repro.obs.histogram.DEFAULT_TIMING_BUCKETS`);
    ``cache`` sections are summed with ``hit_rate`` recomputed from the
    totals.  Returns the same plain-data shape a single server's
    :meth:`~repro.server.SpotFiServer.metrics_snapshot` produces.
    """
    merged = RuntimeMetrics()
    cache_totals: Dict[str, float] = {}
    saw_cache = False
    for snapshot in snapshots:
        merged.merge(RuntimeMetrics.from_snapshot(dict(snapshot)))
        cache = snapshot.get("cache")
        if isinstance(cache, Mapping):
            saw_cache = True
            for key in _CACHE_COUNTER_KEYS:
                cache_totals[key] = cache_totals.get(key, 0.0) + float(
                    cache.get(key, 0)
                )
    result: Dict[str, Any] = merged.snapshot()
    if saw_cache:
        attempts = cache_totals.get("hits", 0.0) + cache_totals.get("misses", 0.0)
        cache_totals["hit_rate"] = (
            cache_totals.get("hits", 0.0) / attempts if attempts else 0.0
        )
        result["cache"] = cache_totals
    return result


def rollup_exposition(
    shard_replies: List[Mapping[str, Any]],
    router_metrics: Optional[RuntimeMetrics] = None,
) -> str:
    """Render one Prometheus exposition for the whole cluster.

    ``shard_replies`` are ``METRICS_REPLY`` payloads (as returned by
    :meth:`~repro.dist.router.ShardRouter.pull_metrics`): each carries
    ``shard_id``, a metrics ``snapshot``, and per-AP ``breakers``.
    Breaker gauges are namespaced ``{shard_id}/{ap_id}`` so a tripped
    breaker is attributable to the shard that owns the target.  When
    ``router_metrics`` is given, the router's own ``dist.*`` counters
    (failover, batching, health) are folded into the same exposition.
    """
    snapshots: List[Mapping[str, Any]] = []
    breakers: Dict[str, str] = {}
    for reply in shard_replies:
        shard_id = str(reply.get("shard_id", "?"))
        snapshot = reply.get("snapshot")
        if isinstance(snapshot, Mapping):
            snapshots.append(snapshot)
        shard_breakers = reply.get("breakers")
        if isinstance(shard_breakers, Mapping):
            for ap_id, state in shard_breakers.items():
                breakers[f"{shard_id}/{ap_id}"] = str(state)
    merged = merge_snapshots(snapshots)
    if router_metrics is not None:
        router_side = RuntimeMetrics.from_snapshot(merged)
        router_side.merge(router_metrics)
        merged = dict(router_side.snapshot(), cache=merged.get("cache", {}))
        if not merged["cache"]:
            del merged["cache"]
    if breakers:
        merged["breakers"] = breakers
    return render_prometheus(merged)


def pull_shard_metrics(
    shards: Mapping[str, str], timeout_s: float = 10.0
) -> List[Dict[str, Any]]:
    """Pull metrics directly from shard endpoints (no router needed).

    One short-lived connection per shard: send ``METRICS``, read the
    reply, disconnect.  Shards that cannot be reached or answer with
    anything but a well-formed ``METRICS_REPLY`` are skipped — a metrics
    scrape must not fail because one shard is down.
    """
    replies: List[Dict[str, Any]] = []
    for _shard_id, spec in sorted(shards.items()):
        try:
            with parse_bind(spec).connect(timeout_s=timeout_s) as sock:
                protocol.send_message(sock, MessageType.METRICS)
                message = protocol.recv_message(sock)
        except (OSError, TraceFormatError):
            continue
        if message is None or message[0] != MessageType.METRICS_REPLY:
            continue
        try:
            reply = protocol.decode_json(message[1])
        except TraceFormatError:
            continue
        if isinstance(reply, dict):
            replies.append(reply)
    return replies
