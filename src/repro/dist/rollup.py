"""Cluster-wide metrics rollup: many shard snapshots, one exposition.

Each shard keeps its own :class:`~repro.runtime.RuntimeMetrics` — the
same counters, stage timings and histograms a single-process deployment
would have.  The rollup path pulls every shard's plain-data snapshot
over the wire (``METRICS`` / ``METRICS_REPLY``), rehydrates each with
:meth:`~repro.runtime.metrics.RuntimeMetrics.from_snapshot`, folds them
together with :meth:`~repro.runtime.metrics.RuntimeMetrics.merge` —
histogram buckets add, so cluster-wide p50/p99 are computed over the
union of per-item samples, not averaged per shard — and renders one
Prometheus exposition.

Shard-scoped gauges keep their origin visible: breaker states are
namespaced ``{shard_id}/{ap_id}`` (one target AP can only trip on the
shard that serves it), and steering-cache stats are summed with the hit
rate recomputed from the summed hits/misses.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from repro.dist import protocol
from repro.dist.protocol import MessageType, parse_bind
from repro.errors import TraceFormatError
from repro.obs import render_prometheus
from repro.obs.collector import collect_trace_dir
from repro.obs.http import TelemetryServer
from repro.runtime import RuntimeMetrics

_CACHE_COUNTER_KEYS = ("hits", "misses", "evictions", "entries")


def merge_snapshots(snapshots: List[Mapping[str, Any]]) -> Dict[str, Any]:
    """Merge per-shard metrics snapshots into one cluster snapshot.

    Counters add; timings add with histograms merged bucket-wise (all
    shards share :data:`~repro.obs.histogram.DEFAULT_TIMING_BUCKETS`);
    ``cache`` sections are summed with ``hit_rate`` recomputed from the
    totals.  Returns the same plain-data shape a single server's
    :meth:`~repro.server.SpotFiServer.metrics_snapshot` produces.
    """
    merged = RuntimeMetrics()
    cache_totals: Dict[str, float] = {}
    saw_cache = False
    for snapshot in snapshots:
        merged.merge(RuntimeMetrics.from_snapshot(dict(snapshot)))
        cache = snapshot.get("cache")
        if isinstance(cache, Mapping):
            saw_cache = True
            for key in _CACHE_COUNTER_KEYS:
                cache_totals[key] = cache_totals.get(key, 0.0) + float(
                    cache.get(key, 0)
                )
    result: Dict[str, Any] = merged.snapshot()
    if saw_cache:
        attempts = cache_totals.get("hits", 0.0) + cache_totals.get("misses", 0.0)
        cache_totals["hit_rate"] = (
            cache_totals.get("hits", 0.0) / attempts if attempts else 0.0
        )
        result["cache"] = cache_totals
    return result


def rollup_exposition(
    shard_replies: List[Mapping[str, Any]],
    router_metrics: Optional[RuntimeMetrics] = None,
) -> str:
    """Render one Prometheus exposition for the whole cluster.

    ``shard_replies`` are ``METRICS_REPLY`` payloads (as returned by
    :meth:`~repro.dist.router.ShardRouter.pull_metrics`): each carries
    ``shard_id``, a metrics ``snapshot``, and per-AP ``breakers``.
    Breaker gauges are namespaced ``{shard_id}/{ap_id}`` so a tripped
    breaker is attributable to the shard that owns the target.  When
    ``router_metrics`` is given, the router's own ``dist.*`` counters
    (failover, batching, health) are folded into the same exposition.
    """
    snapshots: List[Mapping[str, Any]] = []
    breakers: Dict[str, str] = {}
    for reply in shard_replies:
        shard_id = str(reply.get("shard_id", "?"))
        snapshot = reply.get("snapshot")
        if isinstance(snapshot, Mapping):
            snapshots.append(snapshot)
        shard_breakers = reply.get("breakers")
        if isinstance(shard_breakers, Mapping):
            for ap_id, state in shard_breakers.items():
                breakers[f"{shard_id}/{ap_id}"] = str(state)
    merged = merge_snapshots(snapshots)
    if router_metrics is not None:
        router_side = RuntimeMetrics.from_snapshot(merged)
        router_side.merge(router_metrics)
        merged = dict(router_side.snapshot(), cache=merged.get("cache", {}))
        if not merged["cache"]:
            del merged["cache"]
    if breakers:
        merged["breakers"] = breakers
    return render_prometheus(merged)


def pull_shard_metrics(
    shards: Mapping[str, str], timeout_s: float = 10.0
) -> List[Dict[str, Any]]:
    """Pull metrics directly from shard endpoints (no router needed).

    One short-lived connection per shard: send ``METRICS``, read the
    reply, disconnect.  Shards that cannot be reached or answer with
    anything but a well-formed ``METRICS_REPLY`` are skipped — a metrics
    scrape must not fail because one shard is down.
    """
    replies: List[Dict[str, Any]] = []
    for _shard_id, spec in sorted(shards.items()):
        try:
            with parse_bind(spec).connect(timeout_s=timeout_s) as sock:
                protocol.send_message(sock, MessageType.METRICS)
                message = protocol.recv_message(sock)
        except (OSError, TraceFormatError):
            continue
        if message is None or message[0] != MessageType.METRICS_REPLY:
            continue
        try:
            reply = protocol.decode_json(message[1])
        except TraceFormatError:
            continue
        if isinstance(reply, dict):
            replies.append(reply)
    return replies


def cluster_health(
    shards: Mapping[str, str], timeout_s: float = 5.0
) -> Dict[str, Any]:
    """Probe every shard endpoint on a fresh connection.

    One short-lived ``HEALTH`` round trip per shard; a shard counts as
    alive only when it answers ``HEALTH_OK``.  The payload is shaped
    for ``/healthz``: ``ok`` is true while at least one shard answers
    (the router can still route), ``degraded`` flags any dead shard,
    and per-shard entries carry the ``http_port`` each worker reported
    so scrapers can discover shard-local telemetry endpoints.

    Independent of :class:`~repro.dist.router.ShardRouter` on purpose:
    the router is single-threaded, so an HTTP exporter thread must
    never reach into it — probing the bind specs directly gives the
    exporter its own view at the cost of one extra round trip.
    """
    entries: Dict[str, Any] = {}
    alive = 0
    for shard_id, spec in sorted(shards.items()):
        entry: Dict[str, Any] = {"alive": False, "spec": spec}
        try:
            with parse_bind(spec).connect(timeout_s=timeout_s) as sock:
                protocol.send_message(sock, MessageType.HEALTH)
                message = protocol.recv_message(sock)
        except (OSError, TraceFormatError):
            message = None
        if message is not None and message[0] == MessageType.HEALTH_OK:
            entry["alive"] = True
            alive += 1
            try:
                reply = protocol.decode_json(message[1])
            except TraceFormatError:
                reply = None
            if isinstance(reply, dict):
                entry["pid"] = reply.get("pid")
                entry["http_port"] = reply.get("http_port")
        entries[shard_id] = entry
    return {
        "ok": alive > 0,
        "degraded": alive < len(entries),
        "alive_shards": alive,
        "total_shards": len(entries),
        "shards": entries,
    }


def start_cluster_telemetry(
    shards: Mapping[str, str],
    router_metrics: Optional[RuntimeMetrics] = None,
    trace_dir: str = "",
    port: int = 0,
    host: str = "127.0.0.1",
    timeout_s: float = 5.0,
) -> TelemetryServer:
    """Serve cluster-wide ``/metrics`` + ``/healthz`` + ``/traces``.

    Returns a started :class:`~repro.obs.http.TelemetryServer` whose
    handlers pull fresh state per request: ``/metrics`` scrapes every
    shard over the wire (:func:`pull_shard_metrics`) and folds in the
    router's own counters via :func:`rollup_exposition`; ``/healthz``
    probes the same bind specs (:func:`cluster_health`); ``/traces``
    merges the JSONL span exports under ``trace_dir`` (empty list when
    no directory was configured).  Every handler uses its own sockets,
    so the exporter thread never touches the single-threaded router.
    The caller owns the server and must :meth:`~TelemetryServer.stop`
    it.  Reading ``router_metrics`` concurrently is safe — its counter
    store is lock-protected.
    """
    spec_map = dict(shards)

    def _metrics() -> str:
        replies = pull_shard_metrics(spec_map, timeout_s=timeout_s)
        return rollup_exposition(replies, router_metrics)

    def _health() -> Dict[str, Any]:
        return cluster_health(spec_map, timeout_s=timeout_s)

    def _traces() -> List[Dict[str, Any]]:
        if not trace_dir:
            return []
        return [span.to_dict() for span in collect_trace_dir(trace_dir)]

    server = TelemetryServer(
        metrics_fn=_metrics, health_fn=_health, traces_fn=_traces,
        port=port, host=host,
    )
    server.start()
    return server
