"""Consistent-hash routing of CSI packet streams onto shard workers.

The :class:`ShardRouter` is the client-facing front of :mod:`repro.dist`.
It owns one connection per shard and decides, per packet, which shard
assembles that packet's burst:

* **Placement** is a consistent-hash ring (:class:`HashRing`) keyed on
  ``frame.source``.  Every burst for one target therefore lands on one
  shard — burst assembly needs no cross-shard coordination — and adding
  or removing a shard only remaps the key ranges adjacent to its ring
  points instead of reshuffling every target.
* **Batching**: packets destined for the same shard are buffered and
  shipped as one ``INGEST`` message once :attr:`batch_max_frames`
  accumulate (or at a flush/sync point), amortizing framing and syscall
  cost over the batch.
* **Pipelining**: sends do not wait for the matching ``FIXES`` reply; a
  per-shard in-flight counter tracks what is owed, and replies are
  drained opportunistically after each send and exhaustively at sync
  points.  This is what lets N shards compute concurrently behind one
  single-threaded router.
* **Failover**: any send/receive failure (or failed health probe) marks
  the shard dead, removes it from the ring, and re-routes both the
  unsent batch and the key range onto survivors, counting
  ``dist.failover.shard_down`` / ``rerouted``.  Delivery is
  **at-least-once**: every frame carries a per-source sequence number,
  sent-but-unacked batches are journaled (bounded per source by
  ``journal_max_frames``), and when a shard dies its journaled frames
  are replayed to the new ring owner (``dist.failover.replayed``) —
  shard-side ``(source, seq)`` dedup makes the redelivery idempotent.
  Frames beyond the journal bound are the remaining at-most-once
  residue, counted ``dist.failover.inflight_lost``.  A supervisor that
  has health-probed a recovered shard can return it to the ring with
  :meth:`ShardRouter.readmit_shard`.  When no shard remains,
  :class:`~repro.errors.ShardUnavailableError` is raised.
"""

from __future__ import annotations

import bisect
import hashlib
import select
import socket
import time
from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
    cast,
)

from repro.dist import protocol
from repro.dist.protocol import BindAddress, MessageType, WireFix, parse_bind
from repro.errors import ShardUnavailableError, TraceFormatError
from repro.obs.trace import NOOP_TRACER, Tracer
from repro.runtime import RuntimeMetrics
from repro.wifi.csi import CsiFrame

#: Journal record for one sent-but-unacked ingest batch: the entries
#: retained for replay, plus the count that overflowed the journal cap
#: (those stay at-most-once).
_BatchRecord = Tuple[List[Tuple[str, CsiFrame, int]], int]


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Each node is hashed onto the ring at ``replicas`` points
    (``sha1("{node}#{i}")``); a key is owned by the first node point at
    or after ``sha1(key)``, wrapping around.  More replicas smooth the
    key-range split across nodes at the cost of a longer sorted array;
    64 keeps the imbalance under ~30% for small clusters.
    """

    def __init__(self, replicas: int = 64) -> None:
        self.replicas = replicas
        self._points: List[int] = []
        self._owners: Dict[int, str] = {}

    @staticmethod
    def _hash(text: str) -> int:
        return int.from_bytes(hashlib.sha1(text.encode("utf-8")).digest()[:8], "big")

    def add_node(self, node: str) -> None:
        """Place a node's virtual points on the ring."""
        for i in range(self.replicas):
            point = self._hash(f"{node}#{i}")
            if point in self._owners:
                continue
            bisect.insort(self._points, point)
            self._owners[point] = node

    def remove_node(self, node: str) -> None:
        """Remove a node's points; its key ranges fall to the successors."""
        dead = [p for p, owner in self._owners.items() if owner == node]
        for point in dead:
            del self._owners[point]
            index = bisect.bisect_left(self._points, point)
            del self._points[index]

    def nodes(self) -> List[str]:
        """Distinct nodes currently on the ring, sorted."""
        return sorted(set(self._owners.values()))

    def owner(self, key: str) -> str:
        """The node owning ``key``; raises when the ring is empty."""
        if not self._points:
            raise ShardUnavailableError(
                f"no live shard to route key {key!r}: the ring is empty"
            )
        index = bisect.bisect_right(self._points, self._hash(key))
        if index == len(self._points):
            index = 0
        return self._owners[self._points[index]]


class ShardRouter:
    """Routes ingest across shard workers with batching and failover.

    Parameters
    ----------
    shards:
        ``{shard_id: bind spec}`` (``unix:/path`` or ``tcp:host:port``).
        Connections are opened lazily on first use.
    replicas:
        Virtual nodes per shard on the hash ring.
    batch_max_frames:
        Frames buffered per shard before an ``INGEST`` ships.  1 sends
        every packet immediately; larger batches amortize framing cost.
    health_interval_s:
        Probe period for the passive health check woven into ``ingest``
        (0 disables; ``check_health()`` can always be called directly).
    socket_timeout_s:
        Per-operation socket timeout; a shard that blocks longer is
        treated as dead.
    connect_timeout_s:
        Timeout for the initial connect only; defaults to
        ``socket_timeout_s``.  Keeping it short lets the router fail a
        black-holed shard fast without also shrinking the reply budget
        of busy-but-healthy shards.
    journal_max_frames:
        Per-source cap on sent-but-unacked frames retained for replay
        (the at-least-once journal).  Frames shipped beyond the cap are
        counted ``dist.journal.overflow`` at ship time and fall back to
        at-most-once (``inflight_lost`` if their shard dies).  0
        disables journaling entirely.
    socket_wrapper:
        Optional ``(sock, shard_id) -> sock`` hook applied to every
        freshly-connected shard socket — the injection point for
        :meth:`repro.faults.network.NetworkFaultInjector.wrap`.
    metrics:
        Counter sink; ``dist.*`` counters land here.  A fresh instance
        is created when omitted.
    tracer:
        Span sink for the router-side control plane.  Defaults to
        :data:`~repro.obs.NOOP_TRACER`.  With a recording tracer, every
        shipped batch opens a ``batch`` span and every flush opens a
        ``flush`` span with one ``shard.flush`` child per shard
        request; the active trace context rides the wire
        (``INGEST_TRACED`` payloads / the FLUSH JSON ``"trace"`` key)
        so shard-side spans join the same trace.  Sampling is decided
        here at the root — unsampled requests ship as plain ``INGEST``
        and untraced flushes, so shards do no tracing work for them.

    Fix events arrive asynchronously relative to ``ingest`` calls (a
    reply may carry fixes from packets sent several batches ago); they
    accumulate internally and are handed out by :meth:`take_fixes`.
    """

    def __init__(
        self,
        shards: Mapping[str, str],
        replicas: int = 64,
        batch_max_frames: int = 16,
        health_interval_s: float = 0.0,
        socket_timeout_s: float = 60.0,
        connect_timeout_s: Optional[float] = None,
        journal_max_frames: int = 512,
        socket_wrapper: Optional[
            Callable[[socket.socket, str], socket.socket]
        ] = None,
        metrics: Optional[RuntimeMetrics] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if not shards:
            raise ShardUnavailableError("a router needs at least one shard")
        self.metrics = metrics if metrics is not None else RuntimeMetrics()
        self.tracer = tracer or NOOP_TRACER
        self.batch_max_frames = max(1, int(batch_max_frames))
        self.health_interval_s = float(health_interval_s)
        self.socket_timeout_s = float(socket_timeout_s)
        self.connect_timeout_s = (
            float(connect_timeout_s)
            if connect_timeout_s is not None
            else self.socket_timeout_s
        )
        self.journal_max_frames = max(0, int(journal_max_frames))
        self.socket_wrapper = socket_wrapper
        self._addresses: Dict[str, BindAddress] = {
            shard_id: parse_bind(spec) for shard_id, spec in shards.items()
        }
        self._ring = HashRing(replicas=replicas)
        for shard_id in self._addresses:
            self._ring.add_node(shard_id)
        self._sockets: Dict[str, socket.socket] = {}
        self._pending: Dict[str, List[Tuple[str, CsiFrame, int]]] = {}
        # Per shard, one FIFO record per outstanding request, aligned
        # with its reply stream: ``(journaled_entries, unjournaled)``
        # for ingest batches, ``None`` for control requests.
        self._unacked: Dict[str, Deque[Optional[_BatchRecord]]] = {}
        self._journal_depth: Dict[str, int] = {}
        self._seqs: Dict[str, int] = {}
        self._dead: Dict[str, str] = {}
        # Frames that had nowhere to go because the ring emptied while a
        # failover was re-routing them; parked until a readmit.
        self._stranded: List[Tuple[str, CsiFrame, int]] = []
        # Freshest track checkpoint per source, as piggybacked on FIXES
        # replies: source -> (owning shard, checkpoint).  Handed to the
        # ring successor (RESUME) when the owner dies.
        self._track_checkpoints: Dict[str, Tuple[str, Dict[str, Any]]] = {}
        self._fixes: List[WireFix] = []
        self._last_health_s = time.monotonic()

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    def _socket_for(self, shard_id: str) -> socket.socket:
        sock = self._sockets.get(shard_id)
        if sock is None:
            sock = self._addresses[shard_id].connect(
                timeout_s=self.connect_timeout_s
            )
            sock.settimeout(self.socket_timeout_s)
            if self.socket_wrapper is not None:
                sock = cast(socket.socket, self.socket_wrapper(sock, shard_id))
            self._sockets[shard_id] = sock
        return sock

    def live_shards(self) -> List[str]:
        """Shards still on the ring."""
        return self._ring.nodes()

    def owner_of(self, key: str) -> str:
        """The shard currently owning ``key`` (chaos/debug introspection)."""
        return self._ring.owner(key)

    def dead_shards(self) -> Dict[str, str]:
        """``{shard_id: reason}`` for every shard marked dead."""
        return dict(self._dead)

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def _journal_release(self, entries: List[Tuple[str, CsiFrame, int]]) -> None:
        """Drop journal-depth accounting for acked or replayed entries."""
        for _ap_id, frame, _seq in entries:
            depth = self._journal_depth.get(frame.source, 0) - 1
            if depth > 0:
                self._journal_depth[frame.source] = depth
            else:
                self._journal_depth.pop(frame.source, None)

    def _journal_record(self, batch: List[Tuple[str, CsiFrame, int]]) -> _BatchRecord:
        """Reserve journal space for a batch about to ship.

        Entries beyond the per-source cap are not retained; they are
        counted ``dist.journal.overflow`` and ride at-most-once.
        """
        if self.journal_max_frames <= 0:
            return ([], len(batch))
        journaled: List[Tuple[str, CsiFrame, int]] = []
        overflowed = 0
        for entry in batch:
            source = entry[1].source
            depth = self._journal_depth.get(source, 0)
            if depth >= self.journal_max_frames:
                overflowed += 1
                continue
            self._journal_depth[source] = depth + 1
            journaled.append(entry)
        if overflowed:
            self.metrics.increment("dist.journal.overflow", overflowed)
        return (journaled, overflowed)

    def _fail_shard(self, shard_id: str, reason: str) -> None:
        """Mark a shard dead, replay its journal, re-route its batch.

        Sent-but-unacked frames retained in the journal are re-hashed
        onto the survivors with their sequence numbers intact
        (``dist.failover.replayed`` — shard-side dedup absorbs any that
        were actually processed before the crash); frames that
        overflowed the journal are lost (``inflight_lost``).  The
        unsent pending batch is re-routed too, which may recursively
        fail more shards if they are also down.
        """
        if shard_id in self._dead:
            return
        self._dead[shard_id] = reason
        self._ring.remove_node(shard_id)
        sock = self._sockets.pop(shard_id, None)
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        unsent = self._pending.pop(shard_id, [])
        owed = self._unacked.pop(shard_id, None) or deque()
        self.metrics.increment("dist.failover.shard_down")
        # Hand the dead shard's track state to its ring successors
        # *before* replaying journaled traffic: the replies stream in
        # order per socket, so the restore is in place by the time the
        # replayed packets trigger fixes — tracks resume, never restart.
        self._resume_tracks(shard_id)
        replay: List[Tuple[str, CsiFrame, int]] = []
        lost = 0
        for record in owed:
            if record is None:
                continue
            journaled, overflowed = record
            lost += overflowed
            self._journal_release(journaled)
            replay.extend(journaled)
        if lost:
            self.metrics.increment("dist.failover.inflight_lost", lost)
        if replay:
            self.metrics.increment("dist.failover.replayed", len(replay))
            for ap_id, frame, seq in replay:
                self._route_or_strand(ap_id, frame, seq)
        if unsent:
            self.metrics.increment("dist.failover.rerouted", len(unsent))
            for ap_id, frame, seq in unsent:
                self._route_or_strand(ap_id, frame, seq)

    def _resume_tracks(self, failed_shard: str) -> None:
        """Ship the failed shard's cached track checkpoints to successors.

        Checkpoints are grouped by the source's *new* ring owner and
        sent as one ``RESUME`` per successor.  Successors skip sources
        they already track, so a stale cache entry is harmless.  When
        the ring is empty the checkpoints stay cached — a readmitted
        shard's traffic will rebuild them from scratch.
        """
        owned = [
            (source, checkpoint)
            for source, (owner, checkpoint) in self._track_checkpoints.items()
            if owner == failed_shard
        ]
        if not owned:
            return
        by_successor: Dict[str, Dict[str, Dict[str, Any]]] = {}
        for source, checkpoint in owned:
            try:
                successor = self._ring.owner(source)
            except ShardUnavailableError:
                continue
            by_successor.setdefault(successor, {})[source] = checkpoint
        for successor, tracks in by_successor.items():
            sent = self._send_request(
                successor, MessageType.RESUME, protocol.encode_resume(tracks)
            )
            if sent:
                self.metrics.increment("dist.tracks.resumed", len(tracks))
                for source in tracks:
                    self._track_checkpoints[source] = (successor, tracks[source])

    def _route_or_strand(self, ap_id: str, frame: CsiFrame, seq: int) -> None:
        """Re-route a failover frame, parking it if the ring is empty.

        A fault storm can fail every shard while one failover is still
        re-routing; raising from that depth would silently drop the
        frames not yet re-routed.  Parking them keeps at-least-once
        intact: :meth:`readmit_shard` re-routes the stash as soon as
        any shard comes back.
        """
        try:
            self._route(ap_id, frame, seq)
        except ShardUnavailableError:
            self._stranded.append((ap_id, frame, seq))
            self.metrics.increment("dist.failover.stranded")

    def readmit_shard(self, shard_id: str) -> None:
        """Return a previously-failed shard to the ring.

        Meant for a supervisor that has already health-probed the
        recovered shard on a fresh socket — the router itself never
        un-fails a shard.  The dead connection was closed at failover,
        so the next request opens a new one.  Frames stranded while the
        ring was empty are re-routed now, sequence numbers intact.
        """
        if shard_id not in self._addresses:
            raise ShardUnavailableError(
                f"unknown shard {shard_id!r} cannot be readmitted"
            )
        self._dead.pop(shard_id, None)
        if shard_id not in self._ring.nodes():
            self._ring.add_node(shard_id)
        self.metrics.increment("dist.failover.readmitted")
        if self._stranded:
            stranded, self._stranded = self._stranded, []
            for ap_id, frame, seq in stranded:
                self._route_or_strand(ap_id, frame, seq)

    # ------------------------------------------------------------------
    # Reply draining (the pipelined half)
    # ------------------------------------------------------------------
    def _absorb_reply(
        self, shard_id: str, msg_type: MessageType, payload: bytes
    ) -> None:
        try:
            if msg_type in (MessageType.FIXES, MessageType.BYE):
                fixes = protocol.decode_fixes(payload)
                self._fixes.extend(fixes)
                self.metrics.increment("dist.fixes.received", len(fixes))
                for fix in fixes:
                    if fix.track is not None:
                        self._track_checkpoints[fix.source] = (
                            fix.shard or shard_id,
                            fix.track,
                        )
            elif msg_type == MessageType.RESUME_OK:
                reply = protocol.decode_json(payload)
                resumed = (
                    int(reply.get("resumed", 0))
                    if isinstance(reply, dict)
                    else 0
                )
                if resumed:
                    self.metrics.increment("dist.tracks.restored", resumed)
            elif msg_type == MessageType.ERROR:
                error = protocol.decode_json(payload)
                kind = "unknown"
                if isinstance(error, dict):
                    kind = str(error.get("kind", "unknown"))
                self.metrics.record_error("dist.request", kind=kind)
            else:
                # A late HEALTH_OK / METRICS_REPLY from a probe whose recv
                # timed out earlier; counting it keeps the stream in sync.
                self.metrics.increment("dist.replies.stray")
        except TraceFormatError as exc:
            # Well-framed but undecodable (e.g. bytes corrupted on the
            # wire): the reply was already acked — its frames were
            # delivered, only their fixes are unrecoverable — but the
            # stream can no longer be trusted.
            self._fail_shard(shard_id, f"malformed reply: {exc}")

    def _note_reply(self, shard_id: str) -> None:
        """Ack the oldest outstanding request (replies arrive in order)."""
        owed = self._unacked.get(shard_id)
        if not owed:
            return
        record = owed.popleft()
        if record is not None:
            self._journal_release(record[0])

    def _drain_replies(self, shard_id: str, block: bool) -> None:
        """Collect replies the shard owes us.

        Non-blocking mode peeks with ``select`` and stops as soon as no
        reply has started to arrive — called after each send so fixes
        surface promptly without stalling the pipeline.  Once a reply is
        readable, the message is read to completion with the normal
        timeout, so the stream can never be torn mid-message.  Blocking
        mode waits for every owed reply — the sync point used by flush
        and metrics.
        """
        while self._unacked.get(shard_id):
            sock = self._sockets.get(shard_id)
            if sock is None:
                return
            if not block:
                try:
                    readable, _, _ = select.select([sock], [], [], 0.0)
                except (OSError, ValueError):
                    self._fail_shard(shard_id, "connection unusable")
                    return
                if not readable:
                    return
            try:
                message = protocol.recv_message(sock)
            except socket.timeout:
                self._fail_shard(shard_id, "reply timeout")
                return
            except (OSError, TraceFormatError) as exc:
                self._fail_shard(shard_id, f"recv failed: {exc}")
                return
            if message is None:
                self._fail_shard(shard_id, "connection closed")
                return
            self._note_reply(shard_id)
            self._absorb_reply(shard_id, *message)

    def _send_request(
        self,
        shard_id: str,
        msg_type: MessageType,
        payload: bytes,
        record: Optional[_BatchRecord] = None,
    ) -> bool:
        """Ship one request; returns False (after failover) on failure.

        ``record`` is the journal record for ingest batches (``None``
        for control requests); it is enqueued as owed only once the
        send succeeds, so a failed send never strands journal state.
        """
        try:
            sock = self._socket_for(shard_id)
        except socket.timeout:
            self._fail_shard(
                shard_id, f"connect timeout after {self.connect_timeout_s}s"
            )
            return False
        except OSError as exc:
            self._fail_shard(shard_id, f"connect failed: {exc}")
            return False
        try:
            protocol.send_message(sock, msg_type, payload)
        except socket.timeout:
            self._fail_shard(
                shard_id, f"send timeout after {self.socket_timeout_s}s"
            )
            return False
        except OSError as exc:
            self._fail_shard(shard_id, f"send failed: {exc}")
            return False
        self._unacked.setdefault(shard_id, deque()).append(record)
        return True

    def _ship_batch(self, shard_id: str) -> None:
        batch = self._pending.pop(shard_id, [])
        if not batch:
            return
        with self.tracer.span("batch", shard=shard_id, frames=len(batch)):
            context = self.tracer.current_context()
            if context is not None and context.sampled:
                msg_type = MessageType.INGEST_TRACED
                payload = protocol.encode_traced_ingest(batch, context)
            else:
                msg_type = MessageType.INGEST
                payload = protocol.encode_frames(batch)
            record = self._journal_record(batch)
            if self._send_request(shard_id, msg_type, payload, record=record):
                self.metrics.increment("dist.frames.sent", len(batch))
                self.metrics.increment("dist.batches.sent")
                self._drain_replies(shard_id, block=False)
            else:
                # The shard never accepted the batch; undo its journal
                # reservation and re-route every frame (the failover in
                # _send_request only saw the already-owed requests).
                self._journal_release(record[0])
                self.metrics.increment("dist.failover.rerouted", len(batch))
                for ap_id, frame, seq in batch:
                    self._route_or_strand(ap_id, frame, seq)

    # ------------------------------------------------------------------
    # Public ingest / flush
    # ------------------------------------------------------------------
    def _route(self, ap_id: str, frame: CsiFrame, seq: int) -> None:
        """Buffer one sequenced frame on its ring owner; ship when full."""
        shard_id = self._ring.owner(frame.source)
        self._pending.setdefault(shard_id, []).append((ap_id, frame, seq))
        if len(self._pending[shard_id]) >= self.batch_max_frames:
            self._ship_batch(shard_id)

    def ingest(self, ap_id: str, frame: CsiFrame) -> None:
        """Route one packet to its owning shard (batched, pipelined).

        Assigns the frame its per-source delivery sequence number (the
        at-least-once dedup key).  Raises
        :class:`~repro.errors.ShardUnavailableError` when every shard
        is dead.  Fix events produced by completed bursts arrive
        asynchronously — collect them with :meth:`take_fixes`.
        """
        self._maybe_health_check()
        seq = (self._seqs.get(frame.source, 0) % 0xFFFFFFFF) + 1
        self._seqs[frame.source] = seq
        self._route(ap_id, frame, seq)

    def _ship_all_batches(self) -> None:
        """Ship every pending batch, including failover re-routes.

        A failed ship re-hashes its frames into *other* shards' pending
        batches, so one pass is not enough; loop until nothing is
        pending (guaranteed to terminate: each round either empties the
        map or removes a shard from the ring).
        """
        while any(self._pending.values()):
            for shard_id in list(self._pending):
                self._ship_batch(shard_id)

    def flush_source(
        self, source: str, timestamp_s: float, estimator: str = ""
    ) -> List[WireFix]:
        """Force a fix attempt for one target on its owning shard.

        Ships any buffered batches first (the owner may change if that
        surfaces a dead shard), then a ``FLUSH`` request, then blocks
        for every owed reply; returns the fixes that arrived during the
        sync (for this source and any that were in flight).
        ``estimator`` (a registry name or QoS tier) rides the control
        plane and overrides the shard's default for this fix.
        """
        with self.tracer.span("flush", source=source):
            self._ship_all_batches()
            shard_id = self._ring.owner(source)
            request: Dict[str, object] = {
                "sources": [source],
                "timestamp_s": timestamp_s,
            }
            if estimator:
                request["estimator"] = estimator
            with self.tracer.span("shard.flush", shard=shard_id):
                context = self.tracer.current_context()
                if context is not None and context.sampled:
                    request["trace"] = context.to_dict()
                payload = protocol.encode_json(request)
                if self._send_request(shard_id, MessageType.FLUSH, payload):
                    self._drain_replies(shard_id, block=True)
        return self.take_fixes()

    def flush(self, estimator: str = "") -> List[WireFix]:
        """Global sync point: ship every batch, flush every shard, drain.

        Returns every fix event collected, including those that were
        still in flight from earlier batches.  ``estimator`` overrides
        every shard's default for the flushed fixes.
        """
        with self.tracer.span("flush", scope="all"):
            self._ship_all_batches()
            base: Dict[str, object] = {"sources": None}
            if estimator:
                base["estimator"] = estimator
            for shard_id in self.live_shards():
                with self.tracer.span("shard.flush", shard=shard_id):
                    request = dict(base)
                    context = self.tracer.current_context()
                    if context is not None and context.sampled:
                        request["trace"] = context.to_dict()
                    payload = protocol.encode_json(request)
                    if self._send_request(shard_id, MessageType.FLUSH, payload):
                        self._drain_replies(shard_id, block=True)
        return self.take_fixes()

    def take_fixes(self) -> List[WireFix]:
        """Hand over (and clear) the fix events collected so far."""
        fixes = self._fixes
        self._fixes = []
        return fixes

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def _maybe_health_check(self) -> None:
        if self.health_interval_s <= 0.0:
            return
        now = time.monotonic()
        if now - self._last_health_s >= self.health_interval_s:
            self._last_health_s = now
            self.check_health()

    def check_health(self) -> Dict[str, bool]:
        """Probe every live shard; failed probes trigger failover.

        Returns ``{shard_id: alive}`` over the shards that were live
        when the probe started.
        """
        results: Dict[str, bool] = {}
        for shard_id in self.live_shards():
            self._drain_replies(shard_id, block=True)
            if shard_id in self._dead:
                results[shard_id] = False
                continue
            alive = self._send_request(shard_id, MessageType.HEALTH, b"")
            if alive:
                sock = self._sockets[shard_id]
                try:
                    message = protocol.recv_message(sock)
                except (OSError, TraceFormatError) as exc:
                    self._fail_shard(shard_id, f"health probe failed: {exc}")
                    alive = False
                else:
                    self._note_reply(shard_id)
                    alive = (
                        message is not None and message[0] == MessageType.HEALTH_OK
                    )
                    if not alive:
                        self._fail_shard(shard_id, "health probe rejected")
            results[shard_id] = alive
            self.metrics.increment(
                "dist.health.ok" if alive else "dist.health.failed"
            )
        return results

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def pull_metrics(self) -> List[Dict[str, Any]]:
        """Fetch every live shard's metrics snapshot + breaker states.

        Each entry is the shard's ``METRICS_REPLY`` payload:
        ``{"shard_id": ..., "snapshot": ..., "breakers": ...}``.  Shards
        that fail mid-pull are failed over and skipped.
        """
        replies: List[Dict[str, Any]] = []
        for shard_id in self.live_shards():
            self._drain_replies(shard_id, block=True)
            if shard_id in self._dead:
                continue
            if not self._send_request(shard_id, MessageType.METRICS, b""):
                continue
            sock = self._sockets[shard_id]
            try:
                message = protocol.recv_message(sock)
            except (OSError, TraceFormatError) as exc:
                self._fail_shard(shard_id, f"metrics pull failed: {exc}")
                continue
            self._note_reply(shard_id)
            if message is None:
                self._fail_shard(shard_id, "connection closed")
                continue
            msg_type, payload = message
            if msg_type != MessageType.METRICS_REPLY:
                self._absorb_reply(shard_id, msg_type, payload)
                continue
            try:
                reply = protocol.decode_json(payload)
            except TraceFormatError as exc:
                self._fail_shard(shard_id, f"malformed reply: {exc}")
                continue
            if isinstance(reply, dict):
                replies.append(reply)
        return replies

    def stats(self) -> Dict[str, Any]:
        """Router-side view: ring membership, failover and flow counters."""
        snapshot = self.metrics.snapshot()
        return {
            "live_shards": self.live_shards(),
            "dead_shards": self.dead_shards(),
            "counters": snapshot["counters"],
        }

    def health_view(self) -> Dict[str, Any]:
        """Liveness payload for ``/healthz``-style checks.

        ``ok`` is true while at least one shard remains on the ring.
        Must be called from the thread driving the router — the router
        is single-threaded; HTTP exporters that need an independent
        view should probe the shard bind specs on fresh sockets instead
        (see :func:`repro.dist.rollup.cluster_health`).
        """
        pending = {
            shard_id: len(batch)
            for shard_id, batch in self._pending.items()
            if batch
        }
        return {
            "ok": bool(self.live_shards()),
            "live_shards": self.live_shards(),
            "dead_shards": self.dead_shards(),
            "pending_frames": pending,
            "inflight": {
                shard_id: len(owed)
                for shard_id, owed in self._unacked.items()
                if owed
            },
            "journal_frames": sum(self._journal_depth.values()),
        }

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def shutdown(self) -> List[WireFix]:
        """Gracefully stop every live shard, collecting drained fixes.

        Sends ``SHUTDOWN`` to each shard; the shard drains its buffered
        bursts through ``flush()`` and answers ``BYE`` with the final
        fixes.  Returns everything collected (in-flight + drained).
        """
        self._ship_all_batches()
        for shard_id in self.live_shards():
            self._drain_replies(shard_id, block=True)
            if shard_id in self._dead:
                continue
            if not self._send_request(shard_id, MessageType.SHUTDOWN, b""):
                continue
            sock = self._sockets[shard_id]
            try:
                message = protocol.recv_message(sock)
            except (OSError, TraceFormatError):
                message = None
            self._note_reply(shard_id)
            if message is not None and message[0] in (
                MessageType.BYE,
                MessageType.FIXES,
            ):
                self._absorb_reply(shard_id, MessageType.FIXES, message[1])
        return self.take_fixes()

    def close(self) -> None:
        """Close every connection without shutting the shards down."""
        for sock in self._sockets.values():
            try:
                sock.close()
            except OSError:
                pass
        self._sockets.clear()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
