"""Shard supervision: restart crashed workers, probe, re-admit to the ring.

The router's failover (:meth:`~repro.dist.router.ShardRouter._fail_shard`)
is one-way — a dead shard stays off the ring forever, so a long-running
cluster shrinks monotonically under faults.  :class:`ShardSupervisor`
closes the loop:

* **Detection** — a shard is *down* when the router has marked it dead
  (connection-level failure) or its :class:`~repro.dist.shard.ShardProcess`
  is no longer alive (crash/SIGKILL).
* **Restart** — dead processes are relaunched from their original
  ``(spec, config)`` with exponential backoff between attempts, bounded
  by a per-shard ``restart_budget``.  Shards whose process survived
  (e.g. the router lost the connection to a healthy worker) are probed
  without spending budget.
* **Half-open re-admission** — recovery reuses the
  :class:`~repro.faults.CircuitBreaker` state machine: each down shard
  gets a breaker that opens on detection and only lets one probe
  through at a time; a shard returns to the
  :class:`~repro.dist.router.HashRing` (via
  :meth:`~repro.dist.router.ShardRouter.readmit_shard`) only after a
  fresh-socket ``HEALTH`` probe passes.
* **Give-up** — when every shard is process-dead with its budget
  exhausted, :meth:`poll` raises
  :class:`~repro.errors.ShardUnavailableError` naming the budget, so
  drivers stop retrying a cluster that cannot come back.

Everything is driven by explicit :meth:`poll` calls from the thread that
owns the router (the router is single-threaded); ``dist.supervisor.*``
counters and ``supervisor.restart`` / ``supervisor.probe`` spans expose
what it did.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Set

from repro.dist import protocol
from repro.dist.protocol import MessageType, parse_bind
from repro.dist.router import ShardRouter
from repro.dist.shard import ShardProcess
from repro.errors import ReproError, ShardUnavailableError, TraceFormatError
from repro.faults.breaker import CircuitBreaker
from repro.obs.trace import NOOP_TRACER, Tracer
from repro.runtime import RuntimeMetrics


class ShardSupervisor:
    """Monitors shard liveness and returns recovered shards to service.

    Parameters
    ----------
    shards:
        ``{shard_id: ShardProcess}`` as returned by
        :func:`~repro.dist.shard.start_shards`.  The mapping is mutated
        in place: a restarted shard's fresh :class:`ShardProcess`
        replaces the dead handle under the same id.
    router:
        The router to re-admit recovered shards into (optional — a
        supervisor can babysit processes without one).
    restart_budget:
        Process restarts allowed per shard.  Probing a live-but-cut
        shard is free; only actual relaunches spend budget.
    backoff_base_s / backoff_max_s:
        Exponential backoff between recovery attempts for one shard:
        ``min(backoff_max_s, backoff_base_s * 2**attempts)``.
    ready_timeout_s:
        Deadline for a restarted worker to answer its startup HEALTH.
    probe_timeout_s:
        Socket timeout for the fresh-connection re-admission probe.
    metrics / tracer:
        ``dist.supervisor.*`` counter sink and span sink.
    """

    def __init__(
        self,
        shards: Dict[str, ShardProcess],
        router: Optional[ShardRouter] = None,
        restart_budget: int = 3,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        ready_timeout_s: float = 15.0,
        probe_timeout_s: float = 2.0,
        metrics: Optional[RuntimeMetrics] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if not shards:
            raise ShardUnavailableError("a supervisor needs at least one shard")
        self.shards = shards
        self.router = router
        self.restart_budget = max(0, int(restart_budget))
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_max_s = float(backoff_max_s)
        self.ready_timeout_s = float(ready_timeout_s)
        self.probe_timeout_s = float(probe_timeout_s)
        self.metrics = metrics if metrics is not None else RuntimeMetrics()
        self.tracer = tracer or NOOP_TRACER
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._attempts: Dict[str, int] = {}
        self._next_attempt_s: Dict[str, float] = {}
        self._restarts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    def _breaker(self, shard_id: str) -> CircuitBreaker:
        breaker = self._breakers.get(shard_id)
        if breaker is None:
            # threshold 1 / zero recovery delay: the supervisor's own
            # backoff schedule decides *when* to try; the breaker only
            # enforces the half-open one-probe-at-a-time shape.
            breaker = CircuitBreaker(
                failure_threshold=1,
                recovery_time_s=0.0,
                name=shard_id,
            )
            self._breakers[shard_id] = breaker
        return breaker

    def down_shards(self) -> List[str]:
        """Shards currently down: router-dead or process-dead."""
        down: Set[str] = set()
        if self.router is not None:
            down.update(self.router.dead_shards())
        for shard_id, process in self.shards.items():
            if not process.process.is_alive():
                down.add(shard_id)
        return sorted(down & set(self.shards))

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _schedule_retry(self, shard_id: str, now_s: float) -> None:
        attempts = self._attempts.get(shard_id, 0)
        delay = min(self.backoff_max_s, self.backoff_base_s * (2.0**attempts))
        self._attempts[shard_id] = attempts + 1
        self._next_attempt_s[shard_id] = now_s + delay

    def _probe(self, process: ShardProcess) -> bool:
        """Fresh-socket HEALTH round-trip (never the router's sockets)."""
        bind = parse_bind(process.spec)
        try:
            with bind.connect(timeout_s=self.probe_timeout_s) as sock:
                sock.settimeout(self.probe_timeout_s)
                protocol.send_message(sock, MessageType.HEALTH)
                reply = protocol.recv_message(sock)
        except (OSError, TraceFormatError):
            return False
        return reply is not None and reply[0] == MessageType.HEALTH_OK

    def _restart(self, shard_id: str) -> bool:
        """Relaunch a dead worker; True once it answers startup HEALTH."""
        process = self.shards[shard_id]
        if self._restarts.get(shard_id, 0) >= self.restart_budget:
            self.metrics.increment("dist.supervisor.budget_exhausted")
            return False
        with self.tracer.span("supervisor.restart", shard=shard_id):
            self._restarts[shard_id] = self._restarts.get(shard_id, 0) + 1
            process.join(timeout_s=0.1)
            bind = parse_bind(process.spec)
            if bind.kind == "unix":
                # The killed worker never unlinked its socket; a stale
                # path would make the fresh bind fail.
                try:
                    os.unlink(bind.path)
                except OSError:
                    pass
            fresh = ShardProcess(process.spec, process.config)
            self.shards[shard_id] = fresh
            try:
                fresh.start()
                fresh.wait_ready(timeout_s=self.ready_timeout_s)
            except ReproError:
                self.metrics.increment("dist.supervisor.restart_failed")
                fresh.kill()
                return False
        self.metrics.increment("dist.supervisor.restarts")
        return True

    def _attempt_recovery(self, shard_id: str) -> bool:
        process = self.shards[shard_id]
        if not process.process.is_alive():
            if not self._restart(shard_id):
                return False
            process = self.shards[shard_id]
        with self.tracer.span("supervisor.probe", shard=shard_id):
            ok = self._probe(process)
        self.metrics.increment(
            "dist.supervisor.probe_ok" if ok else "dist.supervisor.probe_failed"
        )
        return ok

    def poll(self, now_s: Optional[float] = None, force: bool = False) -> List[str]:
        """One supervision pass; returns the shard ids re-admitted.

        Detects down shards, attempts recovery for those whose backoff
        window has elapsed (``force`` skips the wait — used by drivers
        that just caught :class:`~repro.errors.ShardUnavailableError`
        and have nothing better to do than wait for a shard), and
        re-admits the survivors of a passing probe to the router ring.

        Raises :class:`~repro.errors.ShardUnavailableError` when every
        shard is process-dead with its restart budget exhausted.
        """
        now = time.monotonic() if now_s is None else float(now_s)
        readmitted: List[str] = []
        for shard_id in self.down_shards():
            breaker = self._breaker(shard_id)
            if breaker.state == "closed":
                # Freshly detected: open the breaker and start backoff.
                breaker.record_failure(now)
                self._schedule_retry(shard_id, now)
                self.metrics.increment("dist.supervisor.down_detected")
                if not force:
                    continue
            if not force and now < self._next_attempt_s.get(shard_id, 0.0):
                continue
            if not breaker.allow(now):
                continue
            if self._attempt_recovery(shard_id):
                breaker.record_success(now)
                self._attempts[shard_id] = 0
                self._next_attempt_s.pop(shard_id, None)
                if self.router is not None:
                    self.router.readmit_shard(shard_id)
                self.metrics.increment("dist.supervisor.readmitted")
                readmitted.append(shard_id)
            else:
                breaker.record_failure(now)
                self._schedule_retry(shard_id, now)
        self._raise_if_hopeless()
        return readmitted

    def _raise_if_hopeless(self) -> None:
        exhausted = [
            shard_id
            for shard_id, process in self.shards.items()
            if not process.process.is_alive()
            and self._restarts.get(shard_id, 0) >= self.restart_budget
        ]
        if exhausted and len(exhausted) == len(self.shards):
            raise ShardUnavailableError(
                f"all {len(self.shards)} shards are dead with the restart "
                f"budget of {self.restart_budget} exhausted"
            )

    def stats(self) -> Dict[str, object]:
        """Supervisor-side view: budgets, attempts, breaker states."""
        return {
            "restart_budget": self.restart_budget,
            "restarts": dict(self._restarts),
            "attempts": dict(self._attempts),
            "breakers": {
                shard_id: breaker.state
                for shard_id, breaker in self._breakers.items()
            },
            "down": self.down_shards(),
        }
