"""Track-error evaluation across speed profiles and estimator tiers.

Answers the serving-plane question the static evaluation cannot: *how
much accuracy does motion cost, per QoS tier?*  For each speed profile a
target traverses a planned route at a fixed fix cadence (faster targets
ping-pong the route so every speed yields the same number of bursts),
the localization pipeline produces per-burst fixes under each estimator
tier, and a :class:`~repro.mobility.tracks.TrackManager` filters them
into a track whose per-burst error against ground truth is reduced to
CDF quantiles.

The ``static`` row is the anchor: it reports *raw fix* error at a
stationary target — the number the per-location benchmarks already
measure — so "pedestrian track error within 1.5x of static fix error"
is a like-for-like regression gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.pipeline import SpotFi, SpotFiConfig
from repro.errors import ConfigurationError, LocalizationError
from repro.eval.tracks import summarize_track
from repro.geom.points import Point
from repro.mobility.handoff import HandoffPolicy
from repro.mobility.motion import MotionBurst, motion_bursts
from repro.mobility.tracks import TrackManager
from repro.testbed.layout import (
    Testbed,
    home_testbed,
    office_testbed,
    small_testbed,
)
from repro.testbed.mobility import (
    OccupancyGrid,
    plan_route,
    resolve_speed,
    route_length,
    walk_route,
)
from repro.wifi.intel5300 import Intel5300

#: Collection cadence within a burst (the paper's 100 ms packet spacing).
PACKET_INTERVAL_S = 0.1

#: Label for the stationary anchor row.
STATIC = "static"

_TESTBEDS = {
    "office": office_testbed,
    "small": small_testbed,
    "home": home_testbed,
}


@dataclass(frozen=True)
class TrackEvalRow:
    """One (speed profile, estimator tier) cell of the evaluation grid.

    ``median_error_m``/``p90_error_m`` are track-error CDF quantiles for
    moving rows and raw fix-error quantiles for the ``static`` anchor.
    """

    name: str
    tier: str
    speed_mps: float
    samples: int
    fixes: int
    median_error_m: float
    p90_error_m: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "tier": self.tier,
            "speed_mps": self.speed_mps,
            "samples": self.samples,
            "fixes": self.fixes,
            "median_error_m": self.median_error_m,
            "p90_error_m": self.p90_error_m,
        }


def _pingpong_route(route: List[Point], min_length_m: float) -> List[Point]:
    """Extend a route by walking it back and forth until it is long enough."""
    extended = list(route)
    leg = route
    while route_length(extended) < min_length_m:
        leg = list(reversed(leg))
        extended.extend(leg[1:])
    return extended


def sample_speed_trajectory(
    testbed: Testbed,
    speed: Union[str, float],
    bursts: int,
    burst_period_s: float,
    grid: Optional[OccupancyGrid] = None,
) -> List[Tuple[float, Point]]:
    """Timed waypoints for ``bursts`` fixes at one fix cadence.

    ``speed`` is :data:`STATIC` (hold the first target spot), a named
    profile, or a literal m/s value.  Moving targets traverse the route
    between the testbed's first and last target spots, ping-ponging it
    so every speed fills all ``bursts`` waypoints at the same cadence.
    """
    if bursts < 1 or burst_period_s <= 0:
        raise ConfigurationError(
            "need bursts >= 1 and a positive burst period"
        )
    anchor = testbed.targets[0].position
    if speed == STATIC:
        return [(i * burst_period_s, anchor) for i in range(bursts)]
    speed_mps = resolve_speed(speed)
    route = plan_route(
        testbed.floorplan, anchor, testbed.targets[-1].position, grid=grid
    )
    route = _pingpong_route(route, speed_mps * burst_period_s * bursts)
    samples = walk_route(route, speed_mps=speed_mps, interval_s=burst_period_s)
    return samples[:bursts]


def run_track_eval(
    testbed_name: str = "small",
    speeds: Sequence[Union[str, float]] = (STATIC, "pedestrian", "vehicular"),
    tiers: Sequence[str] = ("balanced", "coarse"),
    bursts: int = 12,
    packets_per_burst: int = 8,
    seed: int = 7,
    policy: Optional[HandoffPolicy] = None,
) -> List[TrackEvalRow]:
    """Evaluate track error over the (speed, tier) grid.

    Returns one row per cell, static rows first.  The same synthesized
    bursts feed every tier, so the tiers differ only in estimation.
    """
    try:
        testbed = _TESTBEDS[testbed_name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown testbed {testbed_name!r}; available: {sorted(_TESTBEDS)}"
        ) from None
    simulator = testbed.simulator()
    grid = OccupancyGrid(testbed.floorplan)
    aps = {f"ap{i}": ap for i, ap in enumerate(testbed.aps)}
    spotfi = SpotFi(
        Intel5300().grid(),
        bounds=testbed.bounds,
        config=SpotFiConfig(packets_per_fix=packets_per_burst),
        rng=np.random.default_rng(seed),
    )
    burst_period_s = packets_per_burst * PACKET_INTERVAL_S
    rows: List[TrackEvalRow] = []
    for speed_index, speed in enumerate(speeds):
        samples = sample_speed_trajectory(
            testbed, speed, bursts, burst_period_s, grid=grid
        )
        track_bursts = motion_bursts(
            simulator,
            aps,
            samples,
            packets_per_burst,
            rng=np.random.default_rng(seed + speed_index),
            source=f"eval-{speed}",
            policy=policy,
        )
        speed_mps = 0.0 if speed == STATIC else resolve_speed(speed)
        for tier in tiers:
            rows.append(
                _evaluate_cell(spotfi, track_bursts, speed, speed_mps, tier)
            )
    return rows


def _evaluate_cell(
    spotfi: SpotFi,
    track_bursts: Sequence[MotionBurst],
    speed: Union[str, float],
    speed_mps: float,
    tier: str,
) -> TrackEvalRow:
    """Run one (speed, tier) cell over pre-synthesized bursts."""
    manager = TrackManager(origin="eval")
    source = f"eval-{speed}"
    truths: List[Tuple[float, float]] = []
    estimates: List[Optional[Tuple[float, float]]] = []
    fixes = 0
    for burst in track_bursts:
        truths.append((burst.position.x, burst.position.y))
        raw: Optional[Tuple[float, float]] = None
        try:
            fix = spotfi.locate(burst.pairs(), estimator=tier)
            raw = (fix.position.x, fix.position.y)
            fixes += 1
        except LocalizationError:
            pass
        if speed == STATIC:
            # Anchor row: raw fix error, like the per-location benchmarks.
            estimates.append(raw)
            continue
        observed = manager.observe(source, raw, burst.timestamp_s)
        estimates.append(observed.filtered)
    label = speed if isinstance(speed, str) else f"{speed:g}mps"
    summary = summarize_track(label, truths, estimates)
    return TrackEvalRow(
        name=label,
        tier=tier,
        speed_mps=speed_mps,
        samples=summary.samples,
        fixes=fixes,
        median_error_m=summary.median_error_m,
        p90_error_m=summary.p90_error_m,
    )
