"""Explicit multi-target track lifecycle management.

:class:`~repro.tracking.tracker.SpotFiTracker` keeps one implicit,
immortal track per source string — fine for a scripted experiment, wrong
for a serving plane where targets appear, dwell, and leave.
:class:`TrackManager` makes the lifecycle explicit:

* **birth**: the first fix for a source opens a *tentative* track; it is
  *confirmed* once ``confirm_hits`` of the last ``confirm_window``
  observations were accepted fixes (M-of-N confirmation, the classic
  radar-tracking rule that keeps one reflection ghost from spawning a
  long-lived track);
* **death**: ``miss_budget`` consecutive missed/rejected observations
  close the track — the next fix births a *new* track id instead of
  teleporting the old one;
* **idle eviction**: tracks with no observations for ``idle_timeout_s``
  (by the observation timestamp clock) are evicted, bounding memory;
* **bounded history**: per-track points are kept in a deque capped at
  ``history_limit``.

Track ids are minted as ``{source}@{origin}#{birth}`` where ``origin``
identifies the minting process (the shard id in :mod:`repro.dist`), so a
track resumed on a ring successor after failover keeps an id that proves
where it was born — a cold restart would mint a fresh id under the new
shard's origin, which is exactly what the ``moving-target`` chaos gate
asserts never happens.

Checkpoints (:meth:`TrackManager.export_checkpoint` /
:meth:`TrackManager.restore`) serialize the Kalman state via
:meth:`~repro.tracking.kalman.KalmanTrack2D.export_state` plus the
lifecycle fields into a compact JSON-safe dict that rides the v2 wire
protocol.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.runtime.metrics import RuntimeMetrics
from repro.tracking.kalman import KalmanTrack2D

#: Lifecycle states a live track can be in.
TRACK_TENTATIVE = "tentative"
TRACK_CONFIRMED = "confirmed"


@dataclass(frozen=True)
class TrackObservation:
    """Outcome of feeding one burst result into the manager.

    Attributes
    ----------
    track_id:
        Id of the track this observation landed on ("" when no track
        exists — a miss for an unknown source).
    state:
        Lifecycle state after the observation (:data:`TRACK_TENTATIVE`
        or :data:`TRACK_CONFIRMED`; "" when no track exists, "closed"
        when this miss exhausted the budget).
    filtered:
        Kalman-filtered position, when the track is initialized.
    accepted:
        Whether a raw fix passed the innovation gate.
    born:
        True when this observation created the track.
    """

    track_id: str
    state: str
    filtered: Optional[Tuple[float, float]] = None
    accepted: bool = False
    born: bool = False


@dataclass
class ManagedTrack:
    """One live track: filter + lifecycle counters + bounded history."""

    track_id: str
    source: str
    filter: KalmanTrack2D
    state: str = TRACK_TENTATIVE
    hits: int = 0
    misses: int = 0
    born_s: float = 0.0
    updated_s: float = 0.0
    resumed: bool = False
    recent: Deque[bool] = field(default_factory=deque, repr=False)
    history: Deque[Tuple[float, float, float]] = field(
        default_factory=deque, repr=False
    )

    def checkpoint(self) -> Optional[Dict[str, Any]]:
        """JSON-safe snapshot for failover (None before initialization)."""
        filter_state = self.filter.export_state()
        if filter_state is None:
            return None
        return {
            "track_id": self.track_id,
            "source": self.source,
            "state": self.state,
            "hits": int(self.hits),
            "misses": int(self.misses),
            "born_s": float(self.born_s),
            "updated_s": float(self.updated_s),
            "filter": filter_state,
        }


@dataclass
class TrackManager:
    """Multi-target track lifecycle manager (birth / death / eviction).

    Attributes
    ----------
    origin:
        Identifier of the minting process, embedded in every track id
        (the shard id in distributed deployments).
    confirm_hits, confirm_window:
        M-of-N confirmation: a tentative track is confirmed once
        ``confirm_hits`` of its last ``confirm_window`` observations
        were accepted fixes.
    miss_budget:
        Consecutive misses (failed or gate-rejected fixes) that close a
        track.
    idle_timeout_s:
        Evict tracks unobserved for this long (observation clock); 0
        disables.
    history_limit:
        Track points retained per track; 0 keeps history unbounded.
    process_accel_std, measurement_std_m, gate_sigmas:
        Kalman parameters for every minted track.
    metrics:
        Optional counter sink; emits ``track.created`` / ``.confirmed``
        / ``.closed`` / ``.evicted`` / ``.resumed`` / ``.gated``.
    """

    origin: str = "local"
    confirm_hits: int = 2
    confirm_window: int = 4
    miss_budget: int = 3
    idle_timeout_s: float = 0.0
    history_limit: int = 256
    process_accel_std: float = 0.8
    measurement_std_m: float = 0.7
    gate_sigmas: float = 4.0
    metrics: Optional[RuntimeMetrics] = None

    def __post_init__(self) -> None:
        if self.confirm_hits < 1 or self.confirm_window < self.confirm_hits:
            raise ConfigurationError(
                "need confirm_window >= confirm_hits >= 1 for M-of-N confirmation"
            )
        if self.miss_budget < 1:
            raise ConfigurationError("miss_budget must be >= 1")
        if self.idle_timeout_s < 0 or self.history_limit < 0:
            raise ConfigurationError(
                "idle_timeout_s and history_limit must be >= 0"
            )
        self._tracks: Dict[str, ManagedTrack] = {}
        self._births: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _count(self, name: str, value: int = 1) -> None:
        if self.metrics is not None and value:
            self.metrics.increment(name, value)

    def _new_track(self, source: str, timestamp_s: float) -> ManagedTrack:
        birth = self._births.get(source, 0) + 1
        self._births[source] = birth
        track = ManagedTrack(
            track_id=f"{source}@{self.origin}#{birth}",
            source=source,
            filter=KalmanTrack2D(
                process_accel_std=self.process_accel_std,
                measurement_std_m=self.measurement_std_m,
                gate_sigmas=self.gate_sigmas,
            ),
            born_s=timestamp_s,
            updated_s=timestamp_s,
            recent=deque(maxlen=self.confirm_window),
            history=deque(maxlen=self.history_limit if self.history_limit else None),
        )
        self._tracks[source] = track
        self._count("track.created")
        return track

    def _close(self, source: str, counter: str) -> None:
        self._tracks.pop(source, None)
        self._count(counter)

    def evict_idle(self, now_s: float, keep: str = "") -> int:
        """Evict tracks unobserved for longer than the idle timeout."""
        if self.idle_timeout_s <= 0:
            return 0
        idle = [
            source
            for source, track in self._tracks.items()
            if source != keep and now_s - track.updated_s > self.idle_timeout_s
        ]
        for source in idle:
            self._close(source, "track.evicted")
        return len(idle)

    # ------------------------------------------------------------------
    def observe(
        self,
        source: str,
        position: Optional[Tuple[float, float]],
        timestamp_s: float,
    ) -> TrackObservation:
        """Feed one burst outcome (a fix position, or None for a miss).

        Runs idle eviction, then advances (or births/closes) the
        source's track.  A miss for a source with no track is a no-op.
        """
        self.evict_idle(timestamp_s, keep=source)
        track = self._tracks.get(source)
        if position is None:
            if track is None:
                return TrackObservation(track_id="", state="")
            return self._observe_miss(track, timestamp_s, gated=False)
        born = track is None
        if track is None:
            track = self._new_track(source, timestamp_s)
        accepted = track.filter.update(position, timestamp_s)
        if not accepted:
            self._count("track.gated")
            return self._observe_miss(track, timestamp_s, gated=True)
        track.hits += 1
        track.misses = 0
        track.recent.append(True)
        track.updated_s = timestamp_s
        if (
            track.state == TRACK_TENTATIVE
            and sum(track.recent) >= self.confirm_hits
        ):
            track.state = TRACK_CONFIRMED
            self._count("track.confirmed")
        x, y = track.filter.position
        track.history.append((timestamp_s, x, y))
        return TrackObservation(
            track_id=track.track_id,
            state=track.state,
            filtered=(x, y),
            accepted=True,
            born=born,
        )

    def _observe_miss(
        self, track: ManagedTrack, timestamp_s: float, gated: bool
    ) -> TrackObservation:
        """A failed or gate-rejected fix: age the track, spend the budget."""
        if track.filter.initialized and not gated:
            # A gated update already ran predict(); a plain miss must
            # still advance the filter clock so the covariance ages.
            track.filter.predict(timestamp_s)
        track.misses += 1
        track.recent.append(False)
        track.updated_s = timestamp_s
        filtered = track.filter.position if track.filter.initialized else None
        if track.misses >= self.miss_budget:
            self._close(track.source, "track.closed")
            return TrackObservation(
                track_id=track.track_id, state="closed", filtered=filtered
            )
        return TrackObservation(
            track_id=track.track_id, state=track.state, filtered=filtered
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def track_for(self, source: str) -> Optional[ManagedTrack]:
        """The live track for a source, if any."""
        return self._tracks.get(source)

    def active(self) -> List[ManagedTrack]:
        """Every live track, sorted by track id."""
        return sorted(self._tracks.values(), key=lambda t: t.track_id)

    def history(self, source: str) -> List[Tuple[float, float, float]]:
        """(timestamp, x, y) points retained for a source's live track."""
        track = self._tracks.get(source)
        return list(track.history) if track is not None else []

    # ------------------------------------------------------------------
    # Checkpoint / restore (failover)
    # ------------------------------------------------------------------
    def export_checkpoint(self, source: str) -> Optional[Dict[str, Any]]:
        """Compact checkpoint for one source's track (None when absent)."""
        track = self._tracks.get(source)
        if track is None:
            return None
        return track.checkpoint()

    def export_checkpoints(self) -> Dict[str, Dict[str, Any]]:
        """Checkpoints for every initialized live track."""
        out: Dict[str, Dict[str, Any]] = {}
        for source, track in self._tracks.items():
            data = track.checkpoint()
            if data is not None:
                out[source] = data
        return out

    def restore(self, checkpoints: Mapping[str, Mapping[str, Any]]) -> int:
        """Adopt checkpoints for sources with no live track; returns count.

        A source that already has a live track here is skipped — the
        local state is newer than any checkpoint that crossed the wire
        (restores happen right after failover, before the replayed
        traffic arrives).  Malformed checkpoints raise
        :class:`~repro.errors.ConfigurationError`; partial restores
        keep whatever was adopted before the bad entry.
        """
        resumed = 0
        for source, data in checkpoints.items():
            if source in self._tracks:
                continue
            filter_state = data.get("filter")
            if not isinstance(filter_state, Mapping):
                raise ConfigurationError(
                    f"track checkpoint for {source!r} lacks filter state"
                )
            kalman = KalmanTrack2D(
                process_accel_std=self.process_accel_std,
                measurement_std_m=self.measurement_std_m,
                gate_sigmas=self.gate_sigmas,
            )
            kalman.restore_state(filter_state)
            track = ManagedTrack(
                track_id=str(data.get("track_id", f"{source}@{self.origin}#0")),
                source=source,
                filter=kalman,
                state=str(data.get("state", TRACK_TENTATIVE)),
                hits=int(data.get("hits", 0)),
                misses=int(data.get("misses", 0)),
                born_s=float(data.get("born_s", 0.0)),
                updated_s=float(data.get("updated_s", 0.0)),
                resumed=True,
                recent=deque(maxlen=self.confirm_window),
                history=deque(
                    maxlen=self.history_limit if self.history_limit else None
                ),
            )
            self._tracks[source] = track
            resumed += 1
        self._count("track.resumed", resumed)
        return resumed
