"""Motion-driven channel synthesis: CSI that evolves along a trajectory.

The static pipeline snapshots one multipath profile per (target, AP)
pair and replays it for a whole burst.  A *moving* target invalidates
that: every few packets the geometry has changed — path lengths, AoAs,
and through-wall attenuation all shift as the target walks.  This module
closes the loop between the A* route planner
(:mod:`repro.testbed.mobility`) and the ray tracer
(:class:`~repro.channel.csi_model.ChannelSimulator`):

1. :func:`sample_trajectory` plans a collision-free route and samples it
   into per-burst waypoints at a named speed profile
   (:data:`~repro.testbed.mobility.SPEED_PROFILES`);
2. :func:`motion_bursts` re-raytraces the multipath at *every* waypoint
   and synthesizes one packet burst per AP there, re-stamping frame
   timestamps onto the shared trajectory clock (the simulator always
   stamps from zero) so downstream burst assembly, stale eviction, and
   Kalman dynamics all see a consistent timeline.

An optional :class:`~repro.mobility.handoff.HandoffPolicy` decides which
audible APs actually record each burst — the serving set then shrinks
and grows mid-track exactly as it would under real AP roaming.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.channel.csi_model import ChannelSimulator
from repro.errors import GeometryError
from repro.geom.floorplan import Floorplan
from repro.geom.points import Point, PointLike, as_point
from repro.mobility.handoff import HandoffPolicy
from repro.runtime.metrics import RuntimeMetrics
from repro.testbed.collection import DEFAULT_SENSITIVITY_DBM
from repro.testbed.mobility import OccupancyGrid, plan_route, resolve_speed, walk_route
from repro.wifi.arrays import UniformLinearArray
from repro.wifi.csi import CsiTrace


@dataclass(frozen=True)
class ApRecording:
    """One serving AP's synthesized burst at one trajectory waypoint."""

    ap_id: str
    array: UniformLinearArray
    trace: CsiTrace
    rssi_dbm: float


@dataclass(frozen=True)
class MotionBurst:
    """One waypoint's worth of synthesized traffic.

    Attributes
    ----------
    index:
        Waypoint index along the trajectory.
    timestamp_s:
        Trajectory time of the burst start (frames are stamped from
        here at the packet interval).
    position:
        Ground-truth target position for this burst.
    recordings:
        One entry per serving AP that heard the target here.
    """

    index: int
    timestamp_s: float
    position: Point
    recordings: Tuple[ApRecording, ...]

    def pairs(self) -> List[Tuple[UniformLinearArray, CsiTrace]]:
        """The ``(array, trace)`` pairs ``SpotFi.locate`` consumes."""
        return [(rec.array, rec.trace) for rec in self.recordings]


def sample_trajectory(
    floorplan: Floorplan,
    start: PointLike,
    goal: PointLike,
    speed: Union[str, float] = "pedestrian",
    interval_s: float = 1.0,
    cell_m: float = 0.5,
    clearance_m: float = 0.3,
    grid: Optional[OccupancyGrid] = None,
) -> List[Tuple[float, Point]]:
    """Plan a route and sample it into timed per-burst waypoints.

    ``speed`` is a named profile (:data:`SPEED_PROFILES`) or a literal
    m/s value; ``interval_s`` is the burst cadence.  Raises
    :class:`~repro.errors.GeometryError` when no route exists.
    """
    route = plan_route(
        floorplan,
        as_point(start),
        as_point(goal),
        cell_m=cell_m,
        clearance_m=clearance_m,
        grid=grid,
    )
    return walk_route(route, speed_mps=resolve_speed(speed), interval_s=interval_s)


def motion_bursts(
    simulator: ChannelSimulator,
    aps: Mapping[str, UniformLinearArray],
    samples: List[Tuple[float, Point]],
    packets_per_burst: int,
    rng: Optional[np.random.Generator] = None,
    source: str = "target",
    sensitivity_dbm: float = DEFAULT_SENSITIVITY_DBM,
    packet_interval_s: float = 0.1,
    policy: Optional[HandoffPolicy] = None,
    metrics: Optional[RuntimeMetrics] = None,
) -> List[MotionBurst]:
    """Synthesize one CSI burst per trajectory waypoint per serving AP.

    At every waypoint the multipath profile is re-raytraced for every
    AP, audible powers are fed to the handoff ``policy`` (when given)
    to pick the serving set, and each serving AP records a
    ``packets_per_burst``-packet trace whose frame timestamps are
    shifted onto the trajectory clock.  Without a policy every audible
    AP serves (the static :func:`~repro.testbed.collection.collect_location`
    behaviour, in motion).
    """
    if packets_per_burst < 1:
        raise GeometryError(
            f"packets_per_burst must be >= 1, got {packets_per_burst}"
        )
    rng = np.random.default_rng() if rng is None else rng
    bursts: List[MotionBurst] = []
    for index, (stamp, position) in enumerate(samples):
        audible: Dict[str, float] = {}
        profiles = {}
        for ap_id, array in aps.items():
            profile = simulator.profile(position, array)
            if profile.num_paths == 0:
                continue  # fully shielded from this AP here
            rssi = profile.rssi_dbm(simulator.tx_power_dbm)
            if rssi < sensitivity_dbm:
                continue
            audible[ap_id] = rssi
            profiles[ap_id] = profile
        if policy is not None:
            serving = policy.update(source, audible).serving
        else:
            serving = tuple(sorted(audible))
        recordings: List[ApRecording] = []
        for ap_id in serving:
            if ap_id not in profiles:
                continue  # policy kept an AP that faded out entirely
            trace = simulator.generate_trace(
                position,
                aps[ap_id],
                packets_per_burst,
                rng=rng,
                packet_interval_s=packet_interval_s,
                source=source,
                profile=profiles[ap_id],
            )
            recordings.append(
                ApRecording(
                    ap_id=ap_id,
                    array=aps[ap_id],
                    trace=_shift_trace(trace, stamp),
                    rssi_dbm=audible[ap_id],
                )
            )
        if metrics is not None:
            metrics.increment("mobility.bursts")
        bursts.append(
            MotionBurst(
                index=index,
                timestamp_s=stamp,
                position=position,
                recordings=tuple(recordings),
            )
        )
    return bursts


def _shift_trace(trace: CsiTrace, offset_s: float) -> CsiTrace:
    """Re-stamp a simulator trace (always starts at t=0) onto the trajectory clock."""
    return CsiTrace(
        [
            replace(frame, timestamp_s=frame.timestamp_s + offset_s)
            for frame in trace
        ]
    )
