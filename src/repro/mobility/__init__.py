"""Mobility serving plane: moving targets, AP roaming, multi-target tracks.

The static pipeline localizes a stationary emitter; this package makes
the serving system *track*:

* :mod:`repro.mobility.motion` — motion-driven channel synthesis: CSI
  re-raytraced per burst along a planned route at named speed profiles;
* :mod:`repro.mobility.handoff` — power-threshold AP roaming with
  hysteresis, changing the serving set mid-track;
* :mod:`repro.mobility.tracks` — explicit track lifecycle (M-of-N birth
  confirmation, miss-budget death, idle eviction) with failover-safe
  checkpoints that ride the v2 wire protocol;
* :mod:`repro.mobility.evaluation` — track-error CDFs over the
  (speed profile, estimator tier) grid.
"""

from repro.mobility.evaluation import (
    STATIC,
    TrackEvalRow,
    run_track_eval,
    sample_speed_trajectory,
)
from repro.mobility.handoff import HandoffDecision, HandoffPolicy
from repro.mobility.motion import (
    ApRecording,
    MotionBurst,
    motion_bursts,
    sample_trajectory,
)
from repro.mobility.tracks import (
    TRACK_CONFIRMED,
    TRACK_TENTATIVE,
    ManagedTrack,
    TrackManager,
    TrackObservation,
)

__all__ = [
    "ApRecording",
    "HandoffDecision",
    "HandoffPolicy",
    "ManagedTrack",
    "MotionBurst",
    "STATIC",
    "TRACK_CONFIRMED",
    "TRACK_TENTATIVE",
    "TrackEvalRow",
    "TrackManager",
    "TrackObservation",
    "motion_bursts",
    "run_track_eval",
    "sample_speed_trajectory",
    "sample_trajectory",
]
