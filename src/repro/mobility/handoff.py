"""AP roaming: power-threshold handoff with hysteresis.

A moving target walks out of one AP's cell and into another's.  Real
clients roam on received power with *hysteresis* — an AP must be heard
above ``entry_dbm`` to join the serving set but is only dropped once it
fades below ``exit_dbm`` — so a target skirting a cell edge doesn't
flap between serving sets on every burst.  :class:`HandoffPolicy`
implements that rule per source, keeps the set topped up to
``min_serving`` with the strongest audible APs (``SpotFi.locate``'s
quorum still needs vantage points even in a coverage hole), and
optionally caps it at ``max_serving`` (cheap fixes want the best K
APs, not all of them).

Every serving-set change emits ``handoff.*`` counters and a ``handoff``
trace span, so roaming shows up in the same observability plane as
fixes and failovers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.trace import NOOP_TRACER, Tracer
from repro.runtime.metrics import RuntimeMetrics


@dataclass(frozen=True)
class HandoffDecision:
    """One policy update: the serving set after it, and what changed."""

    serving: Tuple[str, ...]
    added: Tuple[str, ...]
    dropped: Tuple[str, ...]

    @property
    def changed(self) -> bool:
        return bool(self.added or self.dropped)


@dataclass
class HandoffPolicy:
    """Per-source serving-AP set under power-threshold hysteresis.

    Attributes
    ----------
    entry_dbm:
        An AP outside the serving set joins when heard at or above this
        power.
    exit_dbm:
        A serving AP is dropped once it fades below this power (or is
        no longer audible at all).  Must be <= ``entry_dbm``; the gap is
        the hysteresis band that suppresses flapping.
    min_serving:
        The set is topped up to this size with the strongest audible
        APs even when they are below ``entry_dbm`` (quorum insurance in
        coverage holes).
    max_serving:
        Cap on the serving set (strongest APs win); 0 means uncapped.
    metrics:
        Optional counter sink for ``handoff.events`` /
        ``handoff.ap_added`` / ``handoff.ap_dropped``.
    tracer:
        Span sink; every serving-set *change* opens a ``handoff`` span.
    """

    entry_dbm: float = -78.0
    exit_dbm: float = -82.0
    min_serving: int = 2
    max_serving: int = 0
    metrics: Optional[RuntimeMetrics] = None
    tracer: Tracer = NOOP_TRACER
    _serving: Dict[str, Tuple[str, ...]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.exit_dbm > self.entry_dbm:
            raise ConfigurationError(
                f"exit_dbm ({self.exit_dbm}) must be <= entry_dbm "
                f"({self.entry_dbm}) — the gap is the hysteresis band"
            )
        if self.min_serving < 1:
            raise ConfigurationError("min_serving must be >= 1")
        if self.max_serving and self.max_serving < self.min_serving:
            raise ConfigurationError(
                "max_serving must be 0 (uncapped) or >= min_serving"
            )

    def serving(self, source: str) -> Tuple[str, ...]:
        """The current serving set for a source (empty before the first update)."""
        return self._serving.get(source, ())

    def update(
        self, source: str, rssi_dbm: Mapping[str, float]
    ) -> HandoffDecision:
        """Re-evaluate one source's serving set against fresh powers.

        ``rssi_dbm`` maps every *audible* AP to its received power; APs
        absent from the map are treated as unheard and dropped from the
        set.  Returns the decision; counters/spans fire only on a
        change after the initial association (the first update is a
        join, not a handoff).
        """
        known = source in self._serving
        current = set(self._serving.get(source, ()))
        keep = {
            ap for ap in current if rssi_dbm.get(ap, float("-inf")) >= self.exit_dbm
        }
        join = {
            ap
            for ap, power in rssi_dbm.items()
            if ap not in current and power >= self.entry_dbm
        }
        serving = keep | join
        if len(serving) < self.min_serving:
            # Quorum insurance: admit the strongest below-threshold APs.
            fallback = sorted(
                (ap for ap in rssi_dbm if ap not in serving),
                key=lambda ap: rssi_dbm[ap],
                reverse=True,
            )
            serving.update(fallback[: self.min_serving - len(serving)])
        if self.max_serving and len(serving) > self.max_serving:
            strongest = sorted(
                serving,
                key=lambda ap: rssi_dbm.get(ap, float("-inf")),
                reverse=True,
            )
            serving = set(strongest[: self.max_serving])
        ordered = tuple(sorted(serving))
        decision = HandoffDecision(
            serving=ordered,
            added=tuple(sorted(serving - current)),
            dropped=tuple(sorted(current - serving)),
        )
        self._serving[source] = ordered
        if known and decision.changed:
            if self.metrics is not None:
                self.metrics.increment("handoff.events")
                if decision.added:
                    self.metrics.increment("handoff.ap_added", len(decision.added))
                if decision.dropped:
                    self.metrics.increment(
                        "handoff.ap_dropped", len(decision.dropped)
                    )
            with self.tracer.span(
                "handoff",
                source=source,
                added=list(decision.added),
                dropped=list(decision.dropped),
                serving=len(ordered),
            ):
                pass
        return decision
