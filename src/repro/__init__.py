"""SpotFi reproduction: decimeter-level WiFi localization from CSI.

Reproduces Kotaru et al., "SpotFi: Decimeter Level Localization Using
WiFi" (SIGCOMM 2015): super-resolution joint AoA/ToF estimation from
commodity 3-antenna CSI, direct-path identification by clustering
likelihoods, and likelihood-weighted AoA+RSSI localization — plus the full
substrate (indoor RF channel simulator, Intel 5300 measurement model,
testbed layouts) needed to evaluate it end to end.

Quick start::

    from repro import Intel5300, SpotFi, office_testbed

    testbed = office_testbed()
    sim = testbed.simulator()
    target = (8.0, 5.0)
    traces = [(ap, sim.generate_trace(target, ap, 40)) for ap in testbed.aps]
    spotfi = SpotFi(Intel5300().grid(), bounds=testbed.bounds)
    fix = spotfi.locate(traces)
    print(fix.position, fix.error_to(target))
"""

from repro.channel import (
    ChannelSimulator,
    ImpairmentModel,
    LogDistancePathLoss,
    MultipathProfile,
    PropagationPath,
    synthesize_csi,
)
from repro.core import (
    ApObservation,
    DirectPathEstimate,
    JointEstimator,
    LocalizationResult,
    Localizer,
    MusicConfig,
    PathEstimate,
    SmoothingConfig,
    SpotFi,
    SpotFiConfig,
    SteeringModel,
    cluster_estimates,
    sanitize_csi,
    select_direct_path,
    smooth_csi,
)
from repro.core.esprit import EspritEstimator
from repro.dist import ShardConfig, ShardRouter
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ReproError,
    ShardUnavailableError,
    ValidationError,
)
from repro.faults import (
    CircuitBreaker,
    FaultInjector,
    FaultSpec,
    FrameValidator,
    RetryPolicy,
    ValidationPolicy,
)
from repro.geom import Floorplan, Point, RayTracer, Segment
from repro.obs import (
    Histogram,
    JsonlSpanExporter,
    ObsConfig,
    Span,
    Tracer,
    render_prometheus,
)
from repro.runtime import (
    ParallelExecutor,
    RuntimeMetrics,
    SerialExecutor,
    SteeringCache,
    create_executor,
)
from repro.server import FixEvent, SpotFiServer
from repro.tracking import KalmanTrack2D, SpotFiTracker
from repro.wifi import CsiFrame, CsiTrace, Intel5300, OfdmGrid, UniformLinearArray

__version__ = "1.0.0"

__all__ = [
    "ApObservation",
    "ChannelSimulator",
    "CircuitBreaker",
    "CircuitOpenError",
    "CsiFrame",
    "CsiTrace",
    "DeadlineExceededError",
    "DirectPathEstimate",
    "EspritEstimator",
    "FaultInjector",
    "FaultSpec",
    "FixEvent",
    "Floorplan",
    "FrameValidator",
    "Histogram",
    "KalmanTrack2D",
    "ImpairmentModel",
    "Intel5300",
    "JointEstimator",
    "JsonlSpanExporter",
    "LocalizationResult",
    "Localizer",
    "LogDistancePathLoss",
    "MultipathProfile",
    "MusicConfig",
    "ObsConfig",
    "OfdmGrid",
    "ParallelExecutor",
    "PathEstimate",
    "Point",
    "PropagationPath",
    "RayTracer",
    "ReproError",
    "RetryPolicy",
    "RuntimeMetrics",
    "Segment",
    "SerialExecutor",
    "ShardConfig",
    "ShardRouter",
    "ShardUnavailableError",
    "SmoothingConfig",
    "Span",
    "SpotFi",
    "SpotFiConfig",
    "SpotFiServer",
    "SpotFiTracker",
    "SteeringCache",
    "SteeringModel",
    "Tracer",
    "UniformLinearArray",
    "ValidationError",
    "ValidationPolicy",
    "cluster_estimates",
    "create_executor",
    "office_testbed",
    "render_prometheus",
    "sanitize_csi",
    "select_direct_path",
    "smooth_csi",
    "synthesize_csi",
    "__version__",
]


def office_testbed():
    """Convenience re-export of :func:`repro.testbed.layout.office_testbed`.

    Imported lazily so the core library stays importable while the testbed
    subpackage is optional for library-only users.
    """
    from repro.testbed.layout import office_testbed as _office_testbed

    return _office_testbed()
