"""Portable CSI trace archives (``.npz``).

A :class:`LocationDataset` bundles what the SpotFi server stores per
collection burst: the CSI trace from every AP that heard the target, the
AP array geometries, and (for evaluation data) the ground-truth target
position.  Archives are plain compressed numpy files so they can be read
without this library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import TraceFormatError
from repro.geom.points import Point, as_point
from repro.wifi.arrays import UniformLinearArray
from repro.wifi.csi import CsiTrace

_FORMAT_VERSION = 1


@dataclass
class LocationDataset:
    """Traces from all APs for one target location.

    Attributes
    ----------
    ap_arrays:
        The AP arrays, parallel to :attr:`traces`.
    traces:
        One CSI trace per AP.
    target:
        Ground-truth target position if known.
    name:
        Dataset label.
    """

    ap_arrays: List[UniformLinearArray]
    traces: List[CsiTrace]
    target: Optional[Point] = None
    name: str = ""

    def __post_init__(self) -> None:
        if len(self.ap_arrays) != len(self.traces):
            raise TraceFormatError(
                f"{len(self.ap_arrays)} arrays but {len(self.traces)} traces"
            )
        if self.target is not None:
            self.target = as_point(self.target)

    @property
    def num_aps(self) -> int:
        return len(self.ap_arrays)

    def ap_trace_pairs(self) -> List[Tuple[UniformLinearArray, CsiTrace]]:
        """(array, trace) pairs in the form the pipelines consume."""
        return list(zip(self.ap_arrays, self.traces))


def save_dataset(dataset: LocationDataset, path: Union[str, Path]) -> Path:
    """Write a dataset to a compressed ``.npz`` archive."""
    path = Path(path)
    payload: Dict[str, np.ndarray] = {
        "format_version": np.array(_FORMAT_VERSION),
        "num_aps": np.array(dataset.num_aps),
        "name": np.array(dataset.name),
    }
    if dataset.target is not None:
        payload["target"] = np.array([dataset.target.x, dataset.target.y])
    for i, (array, trace) in enumerate(zip(dataset.ap_arrays, dataset.traces)):
        payload[f"ap{i}_csi"] = trace.csi_array()
        payload[f"ap{i}_rssi"] = trace.rssi_dbm()
        payload[f"ap{i}_timestamps"] = np.array(
            [f.timestamp_s for f in trace], dtype=float
        )
        payload[f"ap{i}_geometry"] = np.array(
            [
                array.num_antennas,
                array.spacing_m,
                array.position[0],
                array.position[1],
                array.normal_deg,
            ],
            dtype=float,
        )
    np.savez_compressed(path, **payload)
    # numpy appends .npz when missing; report the real path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_dataset(path: Union[str, Path]) -> LocationDataset:
    """Read a dataset written by :func:`save_dataset`."""
    path = Path(path)
    if not path.exists():
        raise TraceFormatError(f"no such trace archive: {path}")
    with np.load(path, allow_pickle=False) as data:
        try:
            version = int(data["format_version"])
        except KeyError:
            raise TraceFormatError(f"{path} is not a repro trace archive") from None
        if version != _FORMAT_VERSION:
            raise TraceFormatError(
                f"unsupported archive version {version} (expected {_FORMAT_VERSION})"
            )
        num_aps = int(data["num_aps"])
        name = str(data["name"])
        target = None
        if "target" in data:
            t = data["target"]
            target = Point(float(t[0]), float(t[1]))
        arrays: List[UniformLinearArray] = []
        traces: List[CsiTrace] = []
        for i in range(num_aps):
            try:
                geometry = data[f"ap{i}_geometry"]
                csi = data[f"ap{i}_csi"]
                rssi = data[f"ap{i}_rssi"]
                timestamps = data[f"ap{i}_timestamps"]
            except KeyError as exc:
                raise TraceFormatError(f"{path}: missing field for AP {i}: {exc}")
            arrays.append(
                UniformLinearArray(
                    num_antennas=int(geometry[0]),
                    spacing_m=float(geometry[1]),
                    position=(float(geometry[2]), float(geometry[3])),
                    normal_deg=float(geometry[4]),
                )
            )
            traces.append(
                CsiTrace.from_arrays(csi, rssi_dbm=rssi, timestamps_s=timestamps)
            )
    return LocationDataset(ap_arrays=arrays, traces=traces, target=target, name=name)
