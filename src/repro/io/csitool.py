"""Intel 5300 linux-80211n-csitool ``.dat`` binary format.

The paper's prototype collects CSI with "Linux CSI tool [68]" (Halperin et
al.), which logs *beamforming feedback* (bfee) records to ``.dat`` files.
This module is a from-scratch reader **and** writer for that format, so the
library can both ingest real csitool captures and emit synthetic captures
in the exact on-disk layout.

On-disk layout (per the csitool's ``log_to_file.c`` / ``read_bfee.c``):

* Each record: 2-byte big-endian ``field_len``, then 1-byte ``code``;
  ``code == 0xBB`` is a bfee record of ``field_len - 1`` payload bytes.
* Bfee payload: ``timestamp_low`` (u32 LE), ``bfee_count`` (u16 LE),
  2 reserved bytes, ``Nrx``, ``Ntx``, ``rssi_a``, ``rssi_b``, ``rssi_c``
  (u8 each), ``noise`` (i8), ``agc`` (u8), ``antenna_sel`` (u8),
  ``len`` (u16 LE), ``fake_rate_n_flags`` (u16 LE), then ``len`` bytes of
  bit-packed CSI: for each of 30 subcarriers, 3 padding bits then
  ``Nrx * Ntx`` complex entries of signed 8-bit real/imaginary parts at
  arbitrary bit offsets.
* Scaling (``get_scaled_csi.m``): CSI is scaled so its total power matches
  the RSS implied by the per-antenna RSSIs, AGC, and noise floor.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Union

import numpy as np

from repro.errors import TraceFormatError
from repro.wifi.csi import CsiFrame, CsiTrace

_BFEE_CODE = 0xBB
_HEADER = struct.Struct("<IHHBBBBBbBBHH")  # bfee fixed header, little-endian


@dataclass(frozen=True)
class BfeeRecord:
    """One decoded bfee record.

    Attributes mirror the csitool's struct; ``csi`` has shape
    (Nrx, num_subcarriers) for Ntx = 1 and (Ntx, Nrx, num_subcarriers)
    otherwise, holding the raw (unscaled) integer CSI.
    """

    timestamp_low: int
    bfee_count: int
    nrx: int
    ntx: int
    rssi_a: int
    rssi_b: int
    rssi_c: int
    noise: int
    agc: int
    antenna_sel: int
    rate: int
    csi: np.ndarray

    def antenna_permutation(self) -> "tuple[int, ...]":
        """Decode ``antenna_sel`` into the RX antenna permutation.

        The Intel 5300 maps its three RF chains onto antennas in a
        packet-dependent order; ``antenna_sel`` packs the order as three
        2-bit fields (the csitool's ``get_antenna_permutation``).  Entry i
        of the result is the antenna index that produced CSI row i.
        """
        return (
            (self.antenna_sel & 0x3),
            ((self.antenna_sel >> 2) & 0x3),
            ((self.antenna_sel >> 4) & 0x3),
        )

    def permuted_csi(self) -> np.ndarray:
        """CSI rows reordered to physical antenna order (Ntx = 1 only).

        Rows of :attr:`csi` follow RF-chain order; this applies
        :meth:`antenna_permutation` so row m is physical antenna m, which
        is what array processing needs.
        """
        if self.ntx != 1:
            raise TraceFormatError("permutation helper supports Ntx=1 records")
        perm = self.antenna_permutation()[: self.nrx]
        if sorted(perm) != list(range(self.nrx)):
            # Degenerate/default antenna_sel (e.g. all zero): no reliable
            # permutation information; return rows unchanged.
            return self.csi.copy()
        out = np.empty_like(self.csi)
        for chain, antenna in enumerate(perm):
            out[antenna] = self.csi[chain]
        return out

    def total_rss_dbm(self) -> float:
        """Total RSS in dBm per the csitool's ``get_total_rss``."""
        mag_sum = 0.0
        for rssi in (self.rssi_a, self.rssi_b, self.rssi_c):
            if rssi:
                mag_sum += 10.0 ** (rssi / 10.0)
        if mag_sum <= 0.0:
            return float("-inf")
        return 10.0 * float(np.log10(mag_sum)) - 44.0 - self.agc

    def scaled_csi(self) -> np.ndarray:
        """CSI scaled to absolute channel units (``get_scaled_csi``).

        Returns an (Nrx, num_subcarriers) complex array for Ntx = 1.
        """
        csi = self.csi.astype(np.complex128)
        csi_pwr = float(np.sum(np.abs(csi) ** 2))
        if csi_pwr <= 0.0:
            return csi if self.ntx > 1 else csi.reshape(self.nrx, -1)
        rssi_pwr = 10.0 ** (self.total_rss_dbm() / 10.0)
        num_subcarriers = csi.shape[-1]
        scale = rssi_pwr / (csi_pwr / num_subcarriers)
        noise_db = self.noise if self.noise != -127 else -92
        thermal_noise_pwr = 10.0 ** (noise_db / 10.0)
        quant_error_pwr = scale * (self.nrx * self.ntx)
        total_noise_pwr = thermal_noise_pwr + quant_error_pwr
        out = csi * np.sqrt(scale / total_noise_pwr)
        if self.ntx == 2:
            out = out * np.sqrt(2.0)
        elif self.ntx == 3:
            out = out * np.sqrt(10.0 ** (4.5 / 10.0))
        return out if self.ntx > 1 else out.reshape(self.nrx, -1)


# ----------------------------------------------------------------------
# Bit-packed CSI codec
# ----------------------------------------------------------------------
def _decode_csi_payload(
    payload: bytes, nrx: int, ntx: int, num_subcarriers: int = 30
) -> np.ndarray:
    """Unpack the csitool's bit-packed CSI into an int array.

    Returns shape (num_subcarriers, ntx * nrx) of complex integers, in the
    tool's (tx-major) entry order.
    """
    out = np.zeros((num_subcarriers, ntx * nrx), dtype=np.complex128)
    index = 0
    for sc in range(num_subcarriers):
        index += 3
        for k in range(ntx * nrx):
            remainder = index % 8
            byte0 = payload[index // 8]
            byte1 = payload[index // 8 + 1]
            byte2 = payload[index // 8 + 2]
            real_u8 = ((byte0 >> remainder) | (byte1 << (8 - remainder))) & 0xFF
            imag_u8 = ((byte1 >> remainder) | (byte2 << (8 - remainder))) & 0xFF
            real = real_u8 - 256 if real_u8 >= 128 else real_u8
            imag = imag_u8 - 256 if imag_u8 >= 128 else imag_u8
            out[sc, k] = complex(real, imag)
            index += 16
    return out


def _encode_csi_payload(csi: np.ndarray, nrx: int, ntx: int) -> bytes:
    """Inverse of :func:`_decode_csi_payload` (bit-exact round trip)."""
    num_subcarriers = csi.shape[0]
    total_bits = num_subcarriers * (3 + 16 * nrx * ntx)
    buf = bytearray((total_bits + 7) // 8 + 2)  # +2: decoder reads ahead
    index = 0

    def put_byte(bit_index: int, value: int) -> None:
        remainder = bit_index % 8
        pos = bit_index // 8
        value &= 0xFF
        buf[pos] |= (value << remainder) & 0xFF
        if remainder:
            buf[pos + 1] |= value >> (8 - remainder)

    for sc in range(num_subcarriers):
        index += 3
        for k in range(nrx * ntx):
            entry = csi[sc, k]
            # Wire format stores re/im as separate signed bytes — both
            # halves are written, nothing is discarded.
            real = int(np.round(entry.real)) & 0xFF  # repro: noqa REP012
            imag = int(np.round(entry.imag)) & 0xFF
            put_byte(index, real)
            put_byte(index + 8, imag)
            index += 16
    return bytes(buf)


# ----------------------------------------------------------------------
# File reader / writer
# ----------------------------------------------------------------------
def iter_dat_records(
    path: Union[str, Path], num_subcarriers: int = 30
) -> Iterator[BfeeRecord]:
    """Lazily parse bfee records from a csitool ``.dat`` capture.

    Generator counterpart of :func:`read_dat_file`: records are read and
    decoded one at a time from the open file, so an arbitrarily long
    capture streams in O(1) memory — the shape ingest paths need (the
    :mod:`repro.dist` replay path feeds shards straight from this
    iterator).  Non-bfee records (other codes the tool logs) are
    skipped, matching the reference reader.  Raises
    :class:`TraceFormatError` on truncation, at the point the truncated
    record is reached.
    """
    path = Path(path)
    with path.open("rb") as handle:
        offset = 0
        while True:
            prefix = handle.read(3)
            if not prefix:
                return
            if len(prefix) < 3:
                # Trailing stub shorter than a record prefix: ignored,
                # matching the materializing reader's `offset + 3 <=
                # len(data)` loop bound.
                return
            (field_len,) = struct.unpack(">H", prefix[:2])
            code = prefix[2]
            if field_len < 1:
                raise TraceFormatError(
                    f"{path}: truncated record at byte {offset} "
                    f"(field_len={field_len})"
                )
            body = handle.read(field_len - 1)
            if len(body) < field_len - 1:
                raise TraceFormatError(
                    f"{path}: truncated record at byte {offset} "
                    f"(field_len={field_len}, "
                    f"{len(body)} of {field_len - 1} body bytes)"
                )
            if code == _BFEE_CODE:
                yield _parse_bfee(body, path, num_subcarriers)
            offset += 2 + field_len


def read_dat_file(
    path: Union[str, Path], num_subcarriers: int = 30
) -> List[BfeeRecord]:
    """Parse every bfee record of a csitool ``.dat`` capture.

    Materializing wrapper over :func:`iter_dat_records`; prefer the
    generator when the capture is large or consumed once.
    """
    return list(iter_dat_records(path, num_subcarriers=num_subcarriers))


def _parse_bfee(body: bytes, path: Path, num_subcarriers: int) -> BfeeRecord:
    if len(body) < _HEADER.size:
        raise TraceFormatError(f"{path}: bfee record shorter than its header")
    (
        timestamp_low,
        bfee_count,
        _reserved,
        nrx,
        ntx,
        rssi_a,
        rssi_b,
        rssi_c,
        noise,
        agc,
        antenna_sel,
        length,
        rate,
    ) = _HEADER.unpack_from(body)
    expected = (30 * (nrx * ntx * 8 * 2 + 3) + 6) // 8
    if length != expected:
        raise TraceFormatError(
            f"{path}: bfee payload length {length} != expected {expected} "
            f"for Nrx={nrx}, Ntx={ntx}"
        )
    payload = body[_HEADER.size :]
    if len(payload) < length:
        raise TraceFormatError(f"{path}: bfee payload truncated")
    raw = _decode_csi_payload(
        payload + b"\x00\x00", nrx, ntx, num_subcarriers=num_subcarriers
    )
    # Reorder to (ntx, nrx, subcarriers); entry order in the payload is
    # rx-major within each subcarrier (perm handling of antenna_sel is the
    # caller's concern, as in the reference tool).
    csi = raw.T.reshape(ntx, nrx, num_subcarriers, order="F")
    if ntx == 1:
        csi = csi.reshape(nrx, num_subcarriers)
    return BfeeRecord(
        timestamp_low=timestamp_low,
        bfee_count=bfee_count,
        nrx=nrx,
        ntx=ntx,
        rssi_a=rssi_a,
        rssi_b=rssi_b,
        rssi_c=rssi_c,
        noise=noise,
        agc=agc,
        antenna_sel=antenna_sel,
        rate=rate,
        csi=csi,
    )


def write_dat_file(
    path: Union[str, Path],
    records: List[BfeeRecord],
) -> Path:
    """Write bfee records in the csitool's on-disk format."""
    path = Path(path)
    chunks: List[bytes] = []
    for record in records:
        if record.ntx == 1:
            csi = record.csi.reshape(1, record.nrx, -1)
        else:
            csi = record.csi
        num_subcarriers = csi.shape[-1]
        entries = csi.reshape(record.ntx * record.nrx, num_subcarriers, order="F").T
        payload = _encode_csi_payload(entries, record.nrx, record.ntx)
        length = (30 * (record.nrx * record.ntx * 8 * 2 + 3) + 6) // 8
        header = _HEADER.pack(
            record.timestamp_low,
            record.bfee_count,
            0,
            record.nrx,
            record.ntx,
            record.rssi_a,
            record.rssi_b,
            record.rssi_c,
            record.noise,
            record.agc,
            record.antenna_sel,
            length,
            record.rate,
        )
        body = header + payload[: length + 2]
        chunks.append(struct.pack(">H", len(body) + 1) + bytes([_BFEE_CODE]) + body)
    path.write_bytes(b"".join(chunks))
    return path


def trace_from_records(
    records: Iterable[BfeeRecord],
    scaled: bool = True,
    source: str = "",
    apply_permutation: bool = False,
) -> CsiTrace:
    """Convert single-stream (Ntx = 1) bfee records to a :class:`CsiTrace`.

    Accepts any iterable — including the lazy :func:`iter_dat_records`
    generator — and consumes it exactly once.  ``apply_permutation``
    reorders CSI rows from RF-chain order to physical antenna order using
    each record's ``antenna_sel`` — required for AoA work on real
    captures whose chains are permuted.
    """
    frames = []
    for record in records:
        if record.ntx != 1:
            raise TraceFormatError(
                f"trace conversion supports Ntx=1 records, got Ntx={record.ntx}"
            )
        if apply_permutation:
            base = BfeeRecord(
                timestamp_low=record.timestamp_low,
                bfee_count=record.bfee_count,
                nrx=record.nrx,
                ntx=record.ntx,
                rssi_a=record.rssi_a,
                rssi_b=record.rssi_b,
                rssi_c=record.rssi_c,
                noise=record.noise,
                agc=record.agc,
                antenna_sel=record.antenna_sel,
                rate=record.rate,
                csi=record.permuted_csi(),
            )
            record = base
        csi = record.scaled_csi() if scaled else record.csi.astype(np.complex128)
        frames.append(
            CsiFrame(
                csi=csi,
                rssi_dbm=record.total_rss_dbm(),
                timestamp_s=record.timestamp_low / 1e6,
                source=source,
            )
        )
    return CsiTrace(frames)
