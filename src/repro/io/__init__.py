"""Trace I/O: portable ``.npz`` CSI archives and the Intel 5300
linux-80211n-csitool ``.dat`` binary format."""

from repro.io.csitool import (
    BfeeRecord,
    iter_dat_records,
    read_dat_file,
    write_dat_file,
)
from repro.io.traces import LocationDataset, load_dataset, save_dataset

__all__ = [
    "BfeeRecord",
    "LocationDataset",
    "iter_dat_records",
    "load_dataset",
    "read_dat_file",
    "save_dataset",
    "write_dat_file",
]
