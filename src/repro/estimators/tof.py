"""Coarse tier: ToF-only ranging — the cheapest registered estimator.

One delay spectrum per AP: accumulate ``sum_m |Omega^H csi_m|^2``
across antennas and packets on a fixed delay grid, then take the
*earliest* strong local maximum (within a threshold of the global peak)
as the relative direct-path delay — the first-arrival rule of
ToF-ranging systems.

Commodity CSI delays are STO-relative, so the absolute range is not
trustworthy; fusion therefore ignores the AoA/ToF geometry entirely
and localizes from RSSI path-loss consistency (Eq. 9 with the angle
term zeroed), which is exactly the honesty a coarse tier owes: a fast,
rough fix that keeps serving when breakers force a downgrade.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.localization import ApObservation, LocalizationResult, Localizer
from repro.core.sanitize import sanitize_csi
from repro.core.steering import SteeringModel
from repro.errors import EstimationError
from repro.estimators.base import (
    ApEstimate,
    EstimatedPath,
    Estimator,
    EstimatorContext,
)
from repro.estimators.registry import register
from repro.wifi.arrays import UniformLinearArray
from repro.wifi.csi import CsiTrace, validate_csi_matrix

#: Delay grid resolution within one ToF ambiguity period.
_NUM_TOF_BINS = 256

#: A local maximum within this many dB of the global peak counts as strong.
_PEAK_WINDOW_DB = 10.0


@register("tof", tier="coarse")
class TofEstimator(Estimator):
    """Earliest-strong-peak delay estimation with RSSI-only fusion."""

    def __init__(self, context: EstimatorContext) -> None:
        super().__init__(context)
        self._models: Dict[Tuple[int, float], Tuple[SteeringModel, np.ndarray, np.ndarray]] = {}

    def _model_for(
        self, array: UniformLinearArray
    ) -> Tuple[SteeringModel, np.ndarray, np.ndarray]:
        key = (array.num_antennas, array.spacing_m)
        if key not in self._models:
            model = SteeringModel.for_grid(
                self.context.grid,
                num_antennas=array.num_antennas,
                antenna_spacing_m=array.spacing_m,
            )
            tof_grid = np.linspace(
                0.0, model.tof_ambiguity_s, _NUM_TOF_BINS, endpoint=False
            )
            conj_o = model.subcarrier_vector(tof_grid).conj()  # (Gt, N)
            self._models[key] = (model, tof_grid, conj_o)
        return self._models[key]

    def estimate_ap(self, array: UniformLinearArray, trace: CsiTrace) -> ApEstimate:
        config = self.context.config
        used = trace[: config.packets_per_fix]
        rssi = used.median_rssi_dbm()
        model, tof_grid, conj_o = self._model_for(array)
        spectrum: Optional[np.ndarray] = None
        for frame in used:
            csi = validate_csi_matrix(frame.csi)
            if csi.shape[0] != model.num_antennas:
                raise EstimationError(
                    f"CSI has {csi.shape[0]} antennas, model expects "
                    f"{model.num_antennas}"
                )
            if config.sanitize:
                csi = sanitize_csi(csi)
            # (M, N) @ (N, Gt) -> per-antenna delay responses, power-summed.
            responses = csi @ conj_o.T
            packet_spectrum = np.sum(np.abs(responses) ** 2, axis=0)
            spectrum = (
                packet_spectrum if spectrum is None else spectrum + packet_spectrum
            )
        if spectrum is None:
            raise EstimationError("empty CSI trace: no packets to range")
        peak = float(spectrum.max())
        if peak <= 0.0:
            raise EstimationError("degenerate delay spectrum (zero CSI?)")
        threshold = peak * 10.0 ** (-_PEAK_WINDOW_DB / 10.0)
        interior = (spectrum[1:-1] >= spectrum[:-2]) & (
            spectrum[1:-1] >= spectrum[2:]
        )
        candidates = np.nonzero(interior & (spectrum[1:-1] >= threshold))[0] + 1
        best = int(candidates[0]) if candidates.size else int(np.argmax(spectrum))
        confidence = float(spectrum[best] / peak)
        path = EstimatedPath(
            aoa_deg=0.0,  # placeholder: this tier measures no angle
            tof_s=float(tof_grid[best]),
            weight=confidence,
        )
        return ApEstimate(
            array=array,
            paths=(path,),
            confidence=confidence,
            rssi_dbm=rssi,
        )

    def fuse(self, estimates: Sequence[ApEstimate]) -> LocalizationResult:
        """RSSI-only Eq. 9: the AoA term is zeroed (no angle measured)."""
        observations = [
            ApObservation(
                array=e.array,
                aoa_deg=0.0,
                rssi_dbm=e.rssi_dbm,
                likelihood=e.confidence,
            )
            for e in estimates
        ]
        localizer = Localizer(
            bounds=self.context.bounds,
            grid_step_m=self.context.config.grid_step_m,
            aoa_weight=0.0,
            rssi_weight=1.0,
            use_likelihood_weights=False,
        )
        return localizer.locate(observations)
