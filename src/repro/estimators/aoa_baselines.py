"""Balanced-tier adapters for the :mod:`repro.baselines` AoA estimators.

Wrap antenna-only MUSIC (``music-aoa``) and the ArrayTrack/Phaser-style
spectrum-synthesis variant (``arraytrack``) behind the estimator
protocol.  Both measure AoA only — no usable ToF, no per-path
likelihood — so they fuse through the AoA-restricted Eq. 9 solve
(``use_rssi = False``) exactly as the baseline comparisons do.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.baselines.arraytrack import ArrayTrack
from repro.baselines.music_aoa import MusicAoaEstimator
from repro.core.steering import SteeringModel
from repro.errors import EstimationError
from repro.estimators.base import (
    ApEstimate,
    EstimatedPath,
    Estimator,
    EstimatorContext,
)
from repro.estimators.registry import register
from repro.wifi.arrays import UniformLinearArray
from repro.wifi.csi import CsiTrace


@register("music-aoa", tier="balanced")
class MusicAoaAdapter(Estimator):
    """Antenna-only MUSIC: median strongest-peak AoA across the burst."""

    use_rssi = False

    def __init__(self, context: EstimatorContext) -> None:
        super().__init__(context)
        self._estimators: Dict[Tuple[int, float], MusicAoaEstimator] = {}

    def _estimator_for(self, array: UniformLinearArray) -> MusicAoaEstimator:
        key = (array.num_antennas, array.spacing_m)
        if key not in self._estimators:
            model = SteeringModel.for_grid(
                self.context.grid,
                num_antennas=array.num_antennas,
                antenna_spacing_m=array.spacing_m,
            )
            self._estimators[key] = MusicAoaEstimator(model=model)
        return self._estimators[key]

    def estimate_ap(self, array: UniformLinearArray, trace: CsiTrace) -> ApEstimate:
        used = trace[: self.context.config.packets_per_fix]
        rssi = used.median_rssi_dbm()
        estimator = self._estimator_for(array)
        aoas = []
        for frame in used:
            try:
                peaks = estimator.estimate_packet(frame.csi)
            except EstimationError:
                continue
            if peaks:
                aoas.append(peaks[0].aoa_deg)
        if not aoas:
            raise EstimationError("MUSIC-AoA found no peaks in any packet")
        confidence = len(aoas) / max(1, len(used))
        path = EstimatedPath(
            aoa_deg=float(np.median(np.asarray(aoas))),
            tof_s=0.0,  # antenna-only MUSIC measures no delay
            weight=confidence,
        )
        return ApEstimate(
            array=array, paths=(path,), confidence=confidence, rssi_dbm=rssi
        )


@register("arraytrack", tier="balanced")
class ArrayTrackAdapter(Estimator):
    """ArrayTrack spectrum synthesis: dominant direction of the aggregate."""

    use_rssi = False

    def __init__(self, context: EstimatorContext) -> None:
        super().__init__(context)
        self._arraytrack = ArrayTrack(
            context.grid,
            bounds=context.bounds,
            packets_per_fix=context.config.packets_per_fix,
            grid_step_m=context.config.grid_step_m,
        )

    def estimate_ap(self, array: UniformLinearArray, trace: CsiTrace) -> ApEstimate:
        used = trace[: self.context.config.packets_per_fix]
        rssi = used.median_rssi_dbm()
        report = self._arraytrack.process_ap(array, trace)
        if not report.usable:
            raise EstimationError(
                "ArrayTrack produced no usable aggregate-spectrum peak"
            )
        confidence = report.num_packets_used / max(1, len(used))
        path = EstimatedPath(
            aoa_deg=float(report.aoa_deg),
            tof_s=0.0,  # spectrum synthesis measures no delay
            weight=confidence,
        )
        return ApEstimate(
            array=array, paths=(path,), confidence=confidence, rssi_dbm=rssi
        )
