"""The :class:`Estimator` protocol — one seam, many algorithms.

Every estimator in :mod:`repro.estimators` consumes a CSI burst for one
AP and produces an :class:`ApEstimate`: a tuple of ``(AoA, ToF, weight)``
:class:`EstimatedPath` entries (direct path first) plus a scalar
confidence.  Fusion across APs has a sensible default (Eq. 9 through
:class:`~repro.core.localization.Localizer`) that subclasses override
when their output needs a different solver configuration — the ToF-only
coarse tier, for example, zeroes the AoA term.

The conversion helpers :func:`to_report` / :func:`from_report` bridge
between :class:`ApEstimate` and the classic pipeline's
:class:`~repro.core.pipeline.ApReport`, so registry-driven fixes carry
the same per-AP diagnostics as the built-in 2-D MUSIC path.

Timing lives here (not in :mod:`repro.core`, which is clock-free by
lint rule REP004): :func:`timed_estimate` wraps one ``estimate_ap``
call, records ``estimate.<name>`` stage timings on a
:class:`~repro.runtime.metrics.RuntimeMetrics`, and degrades library
errors into an unusable :class:`ApEstimate` instead of propagating.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import ClassVar, List, Optional, Sequence, Tuple

from repro.core.clustering import PathCluster
from repro.core.direct_path import DirectPathEstimate
from repro.core.localization import ApObservation, LocalizationResult, Localizer
from repro.core.pipeline import ApReport, SpotFiConfig
from repro.errors import ReproError
from repro.runtime.metrics import RuntimeMetrics
from repro.wifi.arrays import UniformLinearArray
from repro.wifi.csi import CsiTrace
from repro.wifi.ofdm import OfdmGrid


@dataclass(frozen=True)
class EstimatedPath:
    """One propagation path an estimator resolved at one AP.

    Attributes
    ----------
    aoa_deg:
        Angle of arrival (deg from the array normal).  Estimators that
        cannot measure AoA (the ToF-only tier) report ``0.0`` and rely
        on a ``fuse`` override that ignores the angle term.
    tof_s:
        Relative time of flight (s, STO-ambiguous on commodity NICs).
    weight:
        Relative strength/likelihood of this path among the AP's paths.
    """

    aoa_deg: float
    tof_s: float
    weight: float = 1.0


@dataclass(frozen=True)
class ApEstimate:
    """Everything an estimator derived from one AP's CSI burst.

    ``paths`` is ordered direct path first; ``confidence`` is the
    estimator's belief in that direct path (used as the AP's Eq. 9
    likelihood weight).  A failed AP has ``failure`` set and no paths.
    """

    array: UniformLinearArray
    paths: Tuple[EstimatedPath, ...] = ()
    confidence: float = 0.0
    rssi_dbm: float = float("nan")
    failure: Optional[str] = None

    @property
    def usable(self) -> bool:
        """True when the AP produced at least one path and no failure."""
        return self.failure is None and bool(self.paths)

    @property
    def direct(self) -> EstimatedPath:
        """The direct path (first entry; raises on an unusable AP)."""
        return self.paths[0]


@dataclass(frozen=True)
class EstimatorContext:
    """Immutable construction context shared by every estimator.

    Attributes
    ----------
    grid:
        OFDM grid the CSI was measured on.
    bounds:
        (x0, y0, x1, y1) localization search rectangle.
    config:
        The pipeline's :class:`~repro.core.pipeline.SpotFiConfig`;
        estimators honor ``packets_per_fix``, clustering knobs, and the
        Eq. 9 weights where applicable.
    seed:
        Seed for any estimator-internal randomness (clustering init);
        fixed per context so repeated fixes are reproducible.
    """

    grid: OfdmGrid
    bounds: Tuple[float, float, float, float]
    config: SpotFiConfig = field(default_factory=SpotFiConfig)
    seed: int = 0


class Estimator(ABC):
    """Base class of every registered estimator.

    Class attributes ``name`` and ``tier`` are stamped by the
    :func:`~repro.estimators.registry.register` decorator; ``use_rssi``
    steers the default :meth:`fuse` between the full Eq. 9 solve and
    its AoA-only restriction.
    """

    name: ClassVar[str] = ""
    tier: ClassVar[str] = "balanced"
    use_rssi: ClassVar[bool] = True

    def __init__(self, context: EstimatorContext) -> None:
        self.context = context

    @abstractmethod
    def estimate_ap(self, array: UniformLinearArray, trace: CsiTrace) -> ApEstimate:
        """Resolve paths from one AP's CSI burst.

        May raise any :class:`~repro.errors.ReproError`;
        :func:`timed_estimate` degrades those into an unusable
        :class:`ApEstimate` so one bad AP never aborts a fix.
        """

    def fuse(self, estimates: Sequence[ApEstimate]) -> LocalizationResult:
        """Fuse usable per-AP estimates into a position (Eq. 9 default).

        Callers pass only usable estimates and enforce the quorum; the
        solver still re-checks its own ``min_aps`` floor.
        """
        config = self.context.config
        observations = [
            ApObservation(
                array=e.array,
                aoa_deg=e.direct.aoa_deg,
                rssi_dbm=e.rssi_dbm,
                likelihood=e.confidence,
            )
            for e in estimates
        ]
        localizer = Localizer(
            bounds=self.context.bounds,
            grid_step_m=config.grid_step_m,
            aoa_weight=config.aoa_weight,
            rssi_weight=config.rssi_weight,
            use_likelihood_weights=config.use_likelihood_weights,
        )
        if self.use_rssi:
            return localizer.locate(observations)
        return localizer.locate_aoa_only(observations)


def to_report(estimate: ApEstimate) -> ApReport:
    """Convert an :class:`ApEstimate` into a pipeline :class:`ApReport`.

    Paths become single-member :class:`~repro.core.clustering.PathCluster`
    entries (zero variance — the estimator already aggregated packets)
    and the direct path becomes a
    :class:`~repro.core.direct_path.DirectPathEstimate` carrying the
    estimator confidence as its likelihood.
    """
    if not estimate.usable:
        return ApReport(
            array=estimate.array,
            direct=None,
            rssi_dbm=estimate.rssi_dbm,
            failure=estimate.failure or "estimator produced no paths",
        )
    clusters = tuple(
        PathCluster(
            mean_aoa_deg=float(p.aoa_deg),
            mean_tof_s=float(p.tof_s),
            var_aoa_deg2=0.0,
            var_tof_s2=0.0,
            count=1,
            mean_power=float(p.weight),
        )
        for p in estimate.paths
    )
    weights = tuple(float(p.weight) for p in estimate.paths)
    direct = DirectPathEstimate(
        aoa_deg=float(estimate.direct.aoa_deg),
        tof_s=float(estimate.direct.tof_s),
        likelihood=float(estimate.confidence),
        cluster=clusters[0],
        all_clusters=clusters,
        all_likelihoods=weights,
    )
    return ApReport(
        array=estimate.array,
        direct=direct,
        rssi_dbm=estimate.rssi_dbm,
        clusters=clusters,
    )


def from_report(report: ApReport) -> ApEstimate:
    """Convert a pipeline :class:`ApReport` into an :class:`ApEstimate`.

    Used by the 2-D MUSIC adapters: the direct path leads, the other
    clusters follow with their Eq. 8 likelihoods as weights.
    """
    if not report.usable or report.direct is None:
        return ApEstimate(
            array=report.array,
            rssi_dbm=report.rssi_dbm,
            failure=report.failure or "unusable AP report",
        )
    direct = report.direct
    paths: List[EstimatedPath] = [
        EstimatedPath(
            aoa_deg=float(direct.aoa_deg),
            tof_s=float(direct.tof_s),
            weight=float(direct.likelihood),
        )
    ]
    for cluster, likelihood in zip(direct.all_clusters, direct.all_likelihoods):
        if cluster is direct.cluster:
            continue
        paths.append(
            EstimatedPath(
                aoa_deg=float(cluster.mean_aoa_deg),
                tof_s=float(cluster.mean_tof_s),
                weight=float(likelihood),
            )
        )
    return ApEstimate(
        array=report.array,
        paths=tuple(paths),
        confidence=float(direct.likelihood),
        rssi_dbm=report.rssi_dbm,
    )


def timed_estimate(
    estimator: Estimator,
    array: UniformLinearArray,
    trace: CsiTrace,
    metrics: Optional[RuntimeMetrics] = None,
) -> ApEstimate:
    """Run one ``estimate_ap`` call with timing and failure isolation.

    Records an ``estimate.<name>`` stage completion (feeding the
    per-estimator Prometheus histogram) and turns any
    :class:`~repro.errors.ReproError` into an unusable estimate with
    the failure text attached, mirroring the classic pipeline's per-AP
    degradation semantics.
    """
    start = time.perf_counter()
    try:
        estimate = estimator.estimate_ap(array, trace)
    except ReproError as exc:
        used = trace[: estimator.context.config.packets_per_fix]
        estimate = ApEstimate(
            array=array,
            rssi_dbm=used.median_rssi_dbm(),
            failure=f"{type(exc).__name__}: {exc}",
        )
    if metrics is not None:
        metrics.record_complete(
            f"estimate.{estimator.name}", time.perf_counter() - start
        )
    return estimate
