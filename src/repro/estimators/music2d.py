"""Precise-tier adapters: SpotFi's full 2-D superresolution estimators.

Wrap the classic :class:`~repro.core.pipeline.SpotFi` per-AP path
(sanitize -> smooth -> 2-D MUSIC/ESPRIT -> cluster -> Eq. 8 direct-path
selection) behind the :class:`~repro.estimators.base.Estimator`
protocol.  These are the accuracy workhorses — and the latency ceiling
the cheaper tiers are benchmarked against.
"""

from __future__ import annotations

from dataclasses import replace
from typing import ClassVar

import numpy as np

from repro.core.pipeline import SpotFi
from repro.estimators.base import ApEstimate, Estimator, EstimatorContext, from_report
from repro.estimators.registry import register
from repro.wifi.arrays import UniformLinearArray
from repro.wifi.csi import CsiTrace


@register("music2d", tier="precise")
class Music2dEstimator(Estimator):
    """Full SpotFi 2-D MUSIC over smoothed CSI — the paper's Algorithm 2."""

    estimation: ClassVar[str] = "music"

    def __init__(self, context: EstimatorContext) -> None:
        super().__init__(context)
        self._spotfi = SpotFi(
            context.grid,
            bounds=context.bounds,
            config=replace(context.config, estimation=self.estimation),
            rng=np.random.default_rng(context.seed),
        )

    def estimate_ap(self, array: UniformLinearArray, trace: CsiTrace) -> ApEstimate:
        return from_report(self._spotfi.process_ap(array, trace))


@register("esprit", tier="precise")
class EspritEstimator(Music2dEstimator):
    """Grid-free 2-D ESPRIT on the same smoothed-CSI front end."""

    estimation: ClassVar[str] = "esprit"
