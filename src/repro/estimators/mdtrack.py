"""Balanced tier: mD-Track-style iterative path cancellation.

Instead of scanning the full 2-D (AoA, ToF) MUSIC spectrum per packet,
resolve paths one at a time by alternating 1-D maximizations (the
coordinate-descent decomposition of mD-Track): initialize the delay
from the antenna-summed delay spectrum, refine AoA given the delay and
the delay given the AoA, fit the complex amplitude in closed form, and
subtract the reconstructed path from the residual.  Iteration stops
when the next path falls a configured ratio below the strongest one or
the path budget is exhausted.

Per-packet paths are pooled across the burst, clustered with k-means
(cheap, deterministic given the context seed), and the direct path is
selected with the same Eq. 8 likelihood as the classic pipeline — so
the output plugs straight into Eq. 9 fusion.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.clustering import cluster_estimates
from repro.core.direct_path import select_direct_path
from repro.core.estimator import PathEstimate
from repro.core.sanitize import sanitize_csi
from repro.core.steering import SteeringModel
from repro.errors import EstimationError
from repro.estimators.base import (
    ApEstimate,
    EstimatedPath,
    Estimator,
    EstimatorContext,
)
from repro.estimators.registry import register
from repro.wifi.arrays import UniformLinearArray
from repro.wifi.csi import CsiTrace, validate_csi_matrix

#: AoA search grid (deg) — same span/step as the classic MUSIC grid.
_AOA_GRID = np.arange(-90.0, 90.5, 1.0)

#: Delay grid resolution within one ToF ambiguity period.
_NUM_TOF_BINS = 256


class _ArrayModel:
    """Precomputed steering dictionaries for one array geometry."""

    __slots__ = ("model", "steer_a", "conj_a", "tof_grid", "steer_o", "conj_o")

    def __init__(self, model: SteeringModel) -> None:
        self.model = model
        self.steer_a = model.antenna_vector(_AOA_GRID)  # (Ga, M)
        self.conj_a = self.steer_a.conj()
        self.tof_grid = np.linspace(
            0.0, model.tof_ambiguity_s, _NUM_TOF_BINS, endpoint=False
        )
        self.steer_o = model.subcarrier_vector(self.tof_grid)  # (Gt, N)
        self.conj_o = self.steer_o.conj()


@register("mdtrack", tier="balanced")
class MdTrackEstimator(Estimator):
    """Iterative path cancellation over (AoA, ToF) dictionaries."""

    #: Paths resolved per packet before cancellation stops.
    max_paths: int = 4

    #: Stop when the next path is this far (dB) below the strongest.
    min_rel_power_db: float = 20.0

    #: Alternating 1-D refinement rounds per path.
    refine_rounds: int = 2

    def __init__(self, context: EstimatorContext) -> None:
        super().__init__(context)
        self._models: Dict[Tuple[int, float], _ArrayModel] = {}

    def _model_for(self, array: UniformLinearArray) -> _ArrayModel:
        key = (array.num_antennas, array.spacing_m)
        if key not in self._models:
            self._models[key] = _ArrayModel(
                SteeringModel.for_grid(
                    self.context.grid,
                    num_antennas=array.num_antennas,
                    antenna_spacing_m=array.spacing_m,
                )
            )
        return self._models[key]

    # ------------------------------------------------------------------
    def _packet_paths(
        self, model: _ArrayModel, csi: np.ndarray, packet_index: int
    ) -> List[PathEstimate]:
        """Resolve up to ``max_paths`` paths from one packet by cancellation."""
        # Deliberate copy: successive interference cancellation mutates the
        # residual in place; the caller's CSI must stay intact.
        residual = csi.astype(np.complex128, copy=True)  # repro: noqa REP012
        m, n = residual.shape
        if float(np.linalg.norm(residual)) <= 0.0:
            raise EstimationError("zero-power CSI packet")
        rel_floor = 10.0 ** (-self.min_rel_power_db / 10.0)
        paths: List[PathEstimate] = []
        strongest = 0.0
        for _ in range(self.max_paths):
            # Initialize the delay from the antenna-summed delay spectrum.
            ti = int(np.argmax(np.abs(model.conj_o @ residual.sum(axis=0))))
            ai = 0
            for _ in range(self.refine_rounds):
                w = residual @ model.conj_o[ti]  # (M,)
                ai = int(np.argmax(np.abs(model.conj_a @ w)))
                z = model.conj_a[ai] @ residual  # (N,)
                ti = int(np.argmax(np.abs(model.conj_o @ z)))
            a = model.steer_a[ai]
            b = model.steer_o[ti]
            alpha = (a.conj() @ residual @ b.conj()) / (m * n)
            power = float(np.abs(alpha) ** 2)
            if paths and power < strongest * rel_floor:
                break
            strongest = max(strongest, power)
            paths.append(
                PathEstimate(
                    aoa_deg=float(_AOA_GRID[ai]),
                    tof_s=float(model.tof_grid[ti]),
                    power=power,
                    packet_index=packet_index,
                )
            )
            residual = residual - alpha * np.outer(a, b)
        return paths

    # ------------------------------------------------------------------
    def estimate_ap(self, array: UniformLinearArray, trace: CsiTrace) -> ApEstimate:
        config = self.context.config
        used = trace[: config.packets_per_fix]
        rssi = used.median_rssi_dbm()
        model = self._model_for(array)
        estimates: List[PathEstimate] = []
        for index, frame in enumerate(used):
            csi = validate_csi_matrix(frame.csi)
            if csi.shape[0] != model.model.num_antennas:
                raise EstimationError(
                    f"CSI has {csi.shape[0]} antennas, model expects "
                    f"{model.model.num_antennas}"
                )
            if config.sanitize:
                csi = sanitize_csi(csi)
            estimates.extend(self._packet_paths(model, csi, index))
        min_size = max(
            config.min_cluster_size,
            int(np.ceil(config.min_cluster_fraction * len(used))),
        )
        clusters = cluster_estimates(
            estimates,
            num_clusters=config.num_clusters,
            method="kmeans",
            rng=np.random.default_rng(self.context.seed),
            min_cluster_size=min_size,
        )
        direct = select_direct_path(clusters, config.likelihood)
        paths = [
            EstimatedPath(
                aoa_deg=float(direct.aoa_deg),
                tof_s=float(direct.tof_s),
                weight=float(direct.likelihood),
            )
        ]
        for cluster, likelihood in zip(direct.all_clusters, direct.all_likelihoods):
            if cluster is direct.cluster:
                continue
            paths.append(
                EstimatedPath(
                    aoa_deg=float(cluster.mean_aoa_deg),
                    tof_s=float(cluster.mean_tof_s),
                    weight=float(likelihood),
                )
            )
        return ApEstimate(
            array=array,
            paths=tuple(paths),
            confidence=float(direct.likelihood),
            rssi_dbm=rssi,
        )
