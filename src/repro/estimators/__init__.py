"""Pluggable estimator registry with QoS tiers (ROADMAP item 5).

One :class:`Estimator` protocol — CSI burst in, per-AP ``(AoA, ToF,
weight)`` paths plus a confidence out — behind a string-keyed registry
with entry-point-style plugin discovery.  Built-ins span the
accuracy/latency frontier:

========== ========== ==============================================
name       tier       algorithm
========== ========== ==============================================
music2d    precise    full SpotFi 2-D MUSIC (Alg. 2)
esprit     precise    2-D ESPRIT on the smoothed CSI
mdtrack    balanced   iterative path cancellation (mD-Track style)
music-aoa  balanced   antenna-only MUSIC, median AoA
arraytrack balanced   ArrayTrack/Phaser spectrum synthesis
tof        coarse     earliest-strong-peak delay + RSSI-only fusion
========== ========== ==============================================

Tier names (``precise``/``balanced``/``coarse``) resolve to a default
estimator, so serving-stack callers can request a service level; the
circuit-breaker downgrade path in :class:`~repro.server.SpotFiServer`
rides this to swap full MUSIC for the coarse tier instead of shedding
load.  See ``docs/ESTIMATORS.md``.
"""

from repro.estimators.base import (
    ApEstimate,
    EstimatedPath,
    Estimator,
    EstimatorContext,
    from_report,
    timed_estimate,
    to_report,
)
from repro.estimators.registry import (
    PLUGIN_ENV,
    PLUGIN_GROUP,
    TIER_DEFAULTS,
    TIERS,
    available,
    create,
    register,
    resolve_name,
    tier_of,
    unregister,
)

__all__ = [
    "ApEstimate",
    "EstimatedPath",
    "Estimator",
    "EstimatorContext",
    "PLUGIN_ENV",
    "PLUGIN_GROUP",
    "TIER_DEFAULTS",
    "TIERS",
    "available",
    "create",
    "from_report",
    "register",
    "resolve_name",
    "tier_of",
    "timed_estimate",
    "to_report",
    "unregister",
]
