"""String-keyed estimator registry with QoS tiers and plugin discovery.

Estimators register under a short name (``music2d``, ``mdtrack``, ...)
and a QoS tier; tier names themselves resolve to a default estimator
(``precise`` -> ``music2d``, ``balanced`` -> ``mdtrack``, ``coarse`` ->
``tof``), so a caller can ask for a service level instead of an
algorithm.  This is the seam the breaker-downgrade machinery in
:class:`~repro.server.SpotFiServer` uses: when an AP's circuit breaker
opens, the fix is *downgraded* to a cheaper tier instead of shedding
the AP.

Third-party estimators plug in two ways, both discovered lazily on
first registry use:

* an ``importlib.metadata`` entry point in the ``repro.estimators``
  group whose module (or callable) registers estimator classes via
  :func:`register`;
* the ``REPRO_ESTIMATOR_PLUGINS`` environment variable — a
  comma-separated list of ``module`` or ``module:callable`` specs —
  for deployments without packaging metadata.
"""

from __future__ import annotations

import os
from importlib import import_module, metadata
from typing import Callable, Dict, List, Tuple, Type

from repro.errors import ConfigurationError, UnknownEstimatorError
from repro.estimators.base import Estimator, EstimatorContext

#: QoS tiers, most to least accurate.
TIERS: Tuple[str, ...] = ("precise", "balanced", "coarse")

#: Which estimator a bare tier name resolves to.
TIER_DEFAULTS: Dict[str, str] = {
    "precise": "music2d",
    "balanced": "mdtrack",
    "coarse": "tof",
}

#: Entry-point group third-party packages register under.
PLUGIN_GROUP = "repro.estimators"

#: Env var naming extra plugin modules (``module[:callable]``, comma-sep).
PLUGIN_ENV = "REPRO_ESTIMATOR_PLUGINS"

_REGISTRY: Dict[str, Type[Estimator]] = {}
_BUILTINS_LOADED = False
_PLUGINS_LOADED = False


def register(
    name: str, tier: str = "balanced", override: bool = False
) -> Callable[[Type[Estimator]], Type[Estimator]]:
    """Class decorator registering an :class:`Estimator` under ``name``.

    Stamps ``cls.name`` and ``cls.tier``.  Re-registering an existing
    name raises :class:`~repro.errors.ConfigurationError` unless
    ``override=True`` (the plugin-override path).
    """
    if tier not in TIERS:
        raise ConfigurationError(
            f"unknown QoS tier {tier!r}; expected one of {', '.join(TIERS)}"
        )
    key = name.strip().lower()
    if not key:
        raise ConfigurationError("estimator name must be non-empty")

    def decorator(cls: Type[Estimator]) -> Type[Estimator]:
        if not override and key in _REGISTRY:
            raise ConfigurationError(
                f"estimator {key!r} is already registered "
                f"({_REGISTRY[key].__qualname__}); pass override=True to replace"
            )
        cls.name = key
        cls.tier = tier
        _REGISTRY[key] = cls
        return cls

    return decorator


def unregister(name: str) -> None:
    """Remove an estimator registration (test/plugin teardown helper)."""
    _REGISTRY.pop(name.strip().lower(), None)


def _load_builtins() -> None:
    """Import the built-in estimator modules (their decorators register)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from repro.estimators import aoa_baselines  # noqa: F401
    from repro.estimators import mdtrack  # noqa: F401
    from repro.estimators import music2d  # noqa: F401
    from repro.estimators import tof  # noqa: F401


def _iter_entry_points() -> List[object]:
    """Entry points in :data:`PLUGIN_GROUP`, across importlib API versions."""
    eps = metadata.entry_points()
    if hasattr(eps, "select"):
        return list(eps.select(group=PLUGIN_GROUP))
    return list(eps.get(PLUGIN_GROUP, ()))  # type: ignore[attr-defined]


def _load_spec(spec: str) -> None:
    """Load one ``module[:callable]`` plugin spec from the environment."""
    module_name, _, attr = spec.partition(":")
    try:
        module = import_module(module_name.strip())
    except ImportError as exc:
        raise ConfigurationError(
            f"estimator plugin module {module_name!r} failed to import: {exc}"
        ) from exc
    if attr:
        try:
            hook = getattr(module, attr.strip())
        except AttributeError as exc:
            raise ConfigurationError(
                f"estimator plugin {spec!r} names a missing attribute"
            ) from exc
        if not callable(hook):
            raise ConfigurationError(
                f"estimator plugin {spec!r} attribute is not callable"
            )
        hook()


def _load_plugins() -> None:
    """Discover plugins: entry points first, then the environment list."""
    global _PLUGINS_LOADED
    if _PLUGINS_LOADED:
        return
    _PLUGINS_LOADED = True
    for entry in _iter_entry_points():
        try:
            loaded = entry.load()  # type: ignore[attr-defined]
        except ImportError as exc:
            raise ConfigurationError(
                f"estimator entry point {getattr(entry, 'name', entry)!r} "
                f"failed to load: {exc}"
            ) from exc
        if callable(loaded) and not (
            isinstance(loaded, type) and issubclass(loaded, Estimator)
        ):
            loaded()
    env = os.environ.get(PLUGIN_ENV, "")
    for spec in env.split(","):
        spec = spec.strip()
        if spec:
            _load_spec(spec)


def _ensure_loaded() -> None:
    _load_builtins()
    _load_plugins()


def available() -> List[str]:
    """Registered estimator names, sorted (builtins + plugins)."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def resolve_name(name_or_tier: str) -> str:
    """Resolve an estimator or tier name to a registered estimator name.

    Raises :class:`~repro.errors.UnknownEstimatorError` listing what is
    available when the name matches neither.
    """
    _ensure_loaded()
    key = (name_or_tier or "").strip().lower()
    key = TIER_DEFAULTS.get(key, key)
    if key not in _REGISTRY:
        raise UnknownEstimatorError(
            f"unknown estimator {name_or_tier!r}; available estimators: "
            f"{', '.join(sorted(_REGISTRY))}; tiers: {', '.join(TIERS)}"
        )
    return key


def tier_of(name_or_tier: str) -> str:
    """The QoS tier of an estimator (or of a tier's default estimator)."""
    return _REGISTRY[resolve_name(name_or_tier)].tier


def create(name_or_tier: str, context: EstimatorContext) -> Estimator:
    """Instantiate the named estimator (or a tier's default) for a context."""
    return _REGISTRY[resolve_name(name_or_tier)](context)
