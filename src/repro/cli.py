"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``simulate`` — simulate a collection burst on a built-in testbed and
  save it as a portable ``.npz`` dataset.
* ``locate`` — localize a saved dataset with SpotFi (optionally also the
  ArrayTrack baseline) and print the fix.  ``--workers N`` fans the
  per-packet estimation across N processes (default 1 = serial).
* ``serve`` — replay a saved dataset through the streaming
  :class:`~repro.server.SpotFiServer`, with the runtime's worker,
  backpressure and eviction knobs, printing each fix event and, on
  exit, the full Prometheus-style metrics exposition (server + executor
  + steering cache).  ``--shards N`` switches to the distributed path:
  N shard subprocesses behind a consistent-hash
  :class:`~repro.dist.router.ShardRouter`.  ``--http-port`` serves live
  ``/metrics``, ``/healthz`` and ``/traces`` endpoints while replaying
  (cluster-wide rollup in sharded mode), ``--trace-dir`` exports spans
  as JSONL per process, ``--sample-rate`` head-samples the traces.
  SIGINT/SIGTERM drain buffered bursts through ``flush()`` before exit.
* ``shard`` — run one :mod:`repro.dist` shard worker in the foreground
  (the building block ``serve --shards`` spawns automatically).
* ``trace`` — localize a saved dataset with tracing enabled and print
  the hierarchical span tree (``locate > ap[k] > sanitize|smooth|music|
  cluster > solve``); ``--jsonl`` exports the spans, ``--artifacts``
  captures downsampled pseudospectra and cluster statistics, and
  ``--merge DIR`` instead stitches the per-process JSONL exports of a
  ``serve --trace-dir`` run into cross-process trace trees.
* ``metrics`` — localize a saved dataset and print the Prometheus-style
  exposition of the runtime metrics it produced; ``--from-shards``
  instead pulls and merges live shard metrics into one cluster-wide
  exposition.
* ``chaos`` — run a seeded fault-injection scenario end to end through
  the streaming server (injector + validator + circuit breakers) and
  report fix success rate, accuracy, quarantine and breaker activity;
  exits non-zero when the success rate falls below ``--min-success``.
  The ``shard-kill`` scenario drills :mod:`repro.dist` failover: real
  shard subprocesses, one SIGKILLed mid-stream.
* ``inspect`` — summarize a saved dataset (APs, packets, RSSI, truth).
* ``floorplan`` — render a testbed's floorplan, APs and targets as ASCII.

Testbeds: ``office`` (the paper's Fig. 6 floor), ``home`` (a 4-room
apartment), ``small`` (a single room for quick tests).
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from types import FrameType
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.dist.protocol import WireFix

import numpy as np

from repro.baselines.arraytrack import ArrayTrack
from repro.core.pipeline import SpotFi, SpotFiConfig
from repro.errors import ReproError
from repro.io.traces import LocationDataset, load_dataset, save_dataset
from repro.obs import (
    JsonlSpanExporter,
    ObsConfig,
    SloTracker,
    Tracer,
    collect_trace_dir,
    format_merged_traces,
    format_span_tree,
    render_prometheus,
)
from repro.runtime import (
    OVERFLOW_POLICIES,
    RuntimeMetrics,
    create_executor,
    default_steering_cache,
)
from repro.server import FixEvent, SpotFiServer
from repro.testbed.collection import as_ap_trace_pairs, collect_location
from repro.testbed.layout import Testbed, home_testbed, office_testbed, small_testbed
from repro.wifi.csi import CsiFrame
from repro.wifi.intel5300 import Intel5300

_TESTBEDS = {"office": office_testbed, "small": small_testbed, "home": home_testbed}


def _get_testbed(name: str) -> Testbed:
    try:
        return _TESTBEDS[name]()
    except KeyError:
        raise ReproError(
            f"unknown testbed {name!r}; available: {sorted(_TESTBEDS)}"
        ) from None


# ----------------------------------------------------------------------
# simulate
# ----------------------------------------------------------------------
def cmd_simulate(args: argparse.Namespace) -> int:
    """Simulate a collection burst and save it as .npz."""
    testbed = _get_testbed(args.testbed)
    if args.target_label:
        matches = [t for t in testbed.targets if t.label == args.target_label]
        if not matches:
            raise ReproError(
                f"no target labeled {args.target_label!r}; try `floorplan`"
            )
        target = matches[0].position
    elif args.x is not None and args.y is not None:
        target = (args.x, args.y)
    else:
        target = testbed.targets[0].position
    sim = testbed.simulator()
    rng = np.random.default_rng(args.seed)
    recordings = collect_location(
        sim, target, testbed.aps, num_packets=args.packets, rng=rng
    )
    if not recordings:
        raise ReproError("no AP heard the target at that location")
    dataset = LocationDataset(
        ap_arrays=[r.array for r in recordings],
        traces=[r.trace for r in recordings],
        target=target,
        name=f"{args.testbed}-simulated",
    )
    path = save_dataset(dataset, args.output)
    print(
        f"simulated {len(recordings)} AP traces x {args.packets} packets "
        f"at ({target[0]:.2f}, {target[1]:.2f}) -> {path}"
    )
    return 0


# ----------------------------------------------------------------------
# locate
# ----------------------------------------------------------------------
def cmd_locate(args: argparse.Namespace) -> int:
    """Localize a saved dataset with SpotFi (optionally the baseline)."""
    dataset = load_dataset(args.dataset)
    testbed = _get_testbed(args.testbed)
    grid = Intel5300().grid()
    config = SpotFiConfig(
        packets_per_fix=args.packets, estimation=args.estimation
    )
    with create_executor(args.workers) as executor:
        spotfi = SpotFi(
            grid,
            bounds=testbed.bounds,
            config=config,
            rng=np.random.default_rng(0),
            executor=executor,
        )
        fix = spotfi.locate(
            dataset.ap_trace_pairs(), estimator=args.estimator or None
        )
    print(f"estimator      : {fix.estimator}")
    print(f"SpotFi fix     : ({fix.position.x:.2f}, {fix.position.y:.2f}) m")
    if dataset.target is not None:
        print(f"ground truth   : ({dataset.target.x:.2f}, {dataset.target.y:.2f}) m")
        print(f"SpotFi error   : {fix.error_to(dataset.target):.2f} m")
    for r in fix.reports:
        if r.usable:
            print(
                f"  AP {tuple(r.array.position)}: AoA {r.direct.aoa_deg:+6.1f} deg, "
                f"likelihood {r.direct.likelihood:.2f}, RSSI {r.rssi_dbm:.0f} dBm"
            )
    if args.arraytrack:
        at = ArrayTrack(grid, bounds=testbed.bounds, packets_per_fix=args.packets)
        result = at.locate(dataset.ap_trace_pairs())
        print(f"ArrayTrack fix : ({result.position.x:.2f}, {result.position.y:.2f}) m")
        if dataset.target is not None:
            print(f"ArrayTrack err : {result.error_to(dataset.target):.2f} m")
    return 0


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------
class _GracefulStop:
    """SIGINT/SIGTERM -> a flag the replay loops poll.

    Registered around a serving loop so the first signal requests a
    *drain* (buffered bursts get a final ``flush()``) instead of killing
    the process mid-burst; original handlers are restored on exit.
    """

    def __init__(self) -> None:
        self.stopped = False
        self._previous: List[object] = []

    def _handle(self, _signum: int, _frame: Optional[FrameType]) -> None:
        self.stopped = True

    def __enter__(self) -> "_GracefulStop":
        for signum in (signal.SIGINT, signal.SIGTERM):
            self._previous.append(signal.getsignal(signum))
            signal.signal(signum, self._handle)
        return self

    def __exit__(self, *exc_info: object) -> None:
        for signum, previous in zip(
            (signal.SIGINT, signal.SIGTERM), self._previous
        ):
            signal.signal(signum, previous)  # type: ignore[arg-type]
        self._previous = []


def _print_wire_fix(fix: "WireFix", index: int) -> None:
    """Render one router-delivered fix event line."""
    suffix = " (downgraded)" if fix.downgraded else ""
    if fix.ok:
        print(
            f"fix #{index} t={fix.timestamp_s:.2f}s source={fix.source!r}: "
            f"({fix.x:.2f}, {fix.y:.2f}) m "
            f"[{fix.num_aps} APs, {fix.shard}]{suffix}"
        )
    else:
        print(
            f"fix #{index} t={fix.timestamp_s:.2f}s source={fix.source!r}: "
            f"FAILED [{fix.num_aps} APs, {fix.shard}]{suffix}"
        )


def _serve_sharded(args: argparse.Namespace) -> int:
    """``serve --shards N``: replay through a router over shard workers."""
    import tempfile

    from repro.dist.rollup import rollup_exposition, start_cluster_telemetry
    from repro.dist.router import ShardRouter
    from repro.dist.shard import ShardConfig, start_shards

    dataset = load_dataset(args.dataset)
    if args.trace_dir:
        os.makedirs(args.trace_dir, exist_ok=True)
    config = ShardConfig(
        shard_id="template",
        testbed=args.testbed,
        packets_per_fix=args.packets,
        min_aps=min(args.min_aps, dataset.num_aps),
        max_buffered_packets=args.max_buffer,
        overflow_policy=args.overflow_policy,
        max_burst_age_s=args.max_age,
        workers=args.workers,
        estimator=args.estimator,
        downgrade_tier=args.downgrade_tier,
        trace_dir=args.trace_dir,
        sample_rate=args.sample_rate,
    )
    base_port = 0
    host = "127.0.0.1"
    if args.bind:
        from repro.dist.protocol import parse_bind

        bind = parse_bind(args.bind)
        if bind.kind != "tcp":
            raise ReproError(
                "serve --bind takes the tcp:HOST:PORT base address "
                "(shard i listens on PORT + i); omit it for Unix sockets"
            )
        base_port, host = bind.port, bind.host
    sources = [f"target-{j:02d}" for j in range(max(1, args.sources))]
    num_fixes = 0
    router_tracer: Optional[Tracer] = None
    if args.trace_dir:
        router_tracer = Tracer(
            ObsConfig(sample_rate=args.sample_rate),
            exporters=[
                JsonlSpanExporter(os.path.join(args.trace_dir, "router.jsonl"))
            ],
            service="router",
        )
    telemetry = None
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
        shards = start_shards(
            args.shards,
            config,
            tmp,
            base_port=base_port,
            host=host,
            http_base_port=args.http_port + 1 if args.http_port else 0,
            ready_timeout_s=args.ready_timeout,
        )
        router = ShardRouter(
            {shard_id: proc.spec for shard_id, proc in shards.items()},
            batch_max_frames=dataset.num_aps,
            connect_timeout_s=args.connect_timeout or None,
            tracer=router_tracer,
        )
        print(
            f"routing {len(sources)} source(s) over {args.shards} shard(s): "
            + ", ".join(f"{sid}={proc.spec}" for sid, proc in shards.items())
        )
        if args.http_port:
            telemetry = start_cluster_telemetry(
                {shard_id: proc.spec for shard_id, proc in shards.items()},
                router_metrics=router.metrics,
                trace_dir=args.trace_dir,
                port=args.http_port,
            )
            print(
                f"cluster telemetry on {telemetry.url} "
                f"(/metrics /healthz /traces); shard endpoints on ports "
                f"{args.http_port + 1}..{args.http_port + args.shards}"
            )
        try:
            with _GracefulStop() as stop:
                num_packets = min(len(t) for t in dataset.traces)
                for k in range(num_packets):
                    if stop.stopped:
                        print("signal received: draining buffered bursts")
                        break
                    for source in sources:
                        for i, trace in enumerate(dataset.traces):
                            frame = trace[k]
                            router.ingest(
                                f"ap{i}",
                                CsiFrame(
                                    csi=frame.csi,
                                    rssi_dbm=frame.rssi_dbm,
                                    timestamp_s=frame.timestamp_s,
                                    source=source,
                                ),
                            )
                    for fix in router.take_fixes():
                        num_fixes += 1
                        _print_wire_fix(fix, num_fixes)
            for fix in router.flush():
                num_fixes += 1
                _print_wire_fix(fix, num_fixes)
            replies = router.pull_metrics()
            stats = router.stats()
            for fix in router.shutdown():
                num_fixes += 1
                _print_wire_fix(fix, num_fixes)
            print(f"{num_fixes} fix events; router counters: {stats['counters']}")
            if stats["dead_shards"]:
                print(f"dead shards: {stats['dead_shards']}")
            print("\n--- cluster metrics exposition ---")
            print(rollup_exposition(replies, router.metrics), end="")
        finally:
            if telemetry is not None:
                telemetry.stop()
            router.close()
            if router_tracer is not None:
                router_tracer.close()
            for proc in shards.values():
                proc.terminate()
            for proc in shards.values():
                proc.join()
    if args.trace_dir:
        print(f"trace exports in {args.trace_dir} (merge with `trace --merge`)")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Replay a dataset through the streaming server, packet by packet.

    One :class:`RuntimeMetrics` instance is shared by the executor and
    the server, so the exit dump covers estimation fan-out (``estimate``
    stage) alongside ingest/fix accounting instead of discarding the
    executor's share.

    ``--shards N`` (N > 1) switches to the distributed path: N shard
    subprocesses behind a :class:`~repro.dist.router.ShardRouter`, with
    ``--sources`` fanning the dataset out as that many synthetic
    targets.  Both paths handle SIGINT/SIGTERM gracefully: buffered
    bursts are drained through ``flush()`` before exit.
    """
    if args.shards > 1:
        return _serve_sharded(args)
    dataset = load_dataset(args.dataset)
    testbed = _get_testbed(args.testbed)
    grid = Intel5300().grid()
    config = SpotFiConfig(packets_per_fix=args.packets)
    metrics = RuntimeMetrics()
    tracer: Optional[Tracer] = None
    if args.trace_dir or args.http_port:
        exporters = []
        if args.trace_dir:
            os.makedirs(args.trace_dir, exist_ok=True)
            exporters.append(
                JsonlSpanExporter(os.path.join(args.trace_dir, "server.jsonl"))
            )
        tracer = Tracer(
            ObsConfig(sample_rate=args.sample_rate),
            exporters=exporters,
            service="server",
        )
    with create_executor(args.workers, metrics=metrics) as executor:
        spotfi = SpotFi(
            grid,
            bounds=testbed.bounds,
            config=config,
            rng=np.random.default_rng(0),
            executor=executor,
            tracer=tracer,
        )
        server = SpotFiServer(
            spotfi=spotfi,
            aps={f"ap{i}": a for i, a in enumerate(dataset.ap_arrays)},
            packets_per_fix=args.packets,
            min_aps=min(args.min_aps, dataset.num_aps),
            track=args.track,
            max_buffered_packets=args.max_buffer,
            overflow_policy=args.overflow_policy,
            max_burst_age_s=args.max_age,
            metrics=metrics,
            estimator=args.estimator,
            downgrade_tier=args.downgrade_tier,
        )
        telemetry = None
        if args.http_port:
            server.slo_tracker = SloTracker.default_objectives()
            telemetry = server.start_telemetry(port=args.http_port)
            print(
                f"telemetry on {telemetry.url} (/metrics /healthz /traces)"
            )
        # Interleave packets across APs, as a live deployment would see
        # them arrive at the central server.
        num_packets = min(len(t) for t in dataset.traces)
        num_events = 0
        last_stamp = 0.0

        def _print_event(event: FixEvent) -> None:
            suffix = " (downgraded)" if event.downgraded else ""
            if event.ok:
                print(
                    f"fix #{num_events} t={event.timestamp_s:.2f}s "
                    f"source={event.source!r}: "
                    f"({event.fix.position.x:.2f}, {event.fix.position.y:.2f}) m "
                    f"[{event.num_aps} APs, {event.estimator}]{suffix}"
                )
                if dataset.target is not None:
                    print(
                        f"  error vs truth: "
                        f"{event.fix.error_to(dataset.target):.2f} m"
                    )
            else:
                print(
                    f"fix #{num_events} t={event.timestamp_s:.2f}s "
                    f"source={event.source!r}: FAILED [{event.num_aps} APs]"
                )

        with _GracefulStop() as stop:
            for k in range(num_packets):
                if stop.stopped:
                    break
                for i, trace in enumerate(dataset.traces):
                    frame = trace[k]
                    last_stamp = max(last_stamp, frame.timestamp_s)
                    event = server.ingest(f"ap{i}", frame)
                    if event is None:
                        continue
                    num_events += 1
                    _print_event(event)
        if stop.stopped:
            # Graceful drain: give every buffered burst a final flush so
            # in-flight fixes are emitted, not silently dropped.
            print("signal received: draining buffered bursts")
            for source in server.sources():
                if not any(server.pending_packets(source).values()):
                    continue
                event = server.flush(source, last_stamp)
                if event is not None:
                    num_events += 1
                    _print_event(event)
        snapshot = server.metrics_snapshot()
        print(f"{num_events} fix events from {num_packets} packets per AP")
        print(f"runtime counters: {snapshot['counters']}")
        fix_timing = snapshot["timings"].get("fix")
        if fix_timing:
            print(
                f"fix stage: {fix_timing['count']} runs, "
                f"mean {fix_timing['mean_s'] * 1e3:.0f} ms, "
                f"p99 {fix_timing['quantiles']['p99'] * 1e3:.0f} ms"
            )
        print("\n--- metrics exposition ---")
        print(server.metrics_exposition(), end="")
        if telemetry is not None:
            telemetry.stop()
    if tracer is not None:
        tracer.close()
        if args.trace_dir:
            print(f"trace exports in {args.trace_dir}")
    return 0


# ----------------------------------------------------------------------
# shard
# ----------------------------------------------------------------------
def cmd_shard(args: argparse.Namespace) -> int:
    """Run one shard worker in the foreground until signalled.

    The building block ``serve --shards N`` spawns automatically; run it
    directly to place shards by hand (one per host, say) and point a
    router at them.  SIGINT/SIGTERM drains buffered bursts through
    ``flush()`` before exit.
    """
    from repro.dist.shard import ShardConfig, run_shard

    config = ShardConfig(
        shard_id=args.id,
        testbed=args.testbed,
        packets_per_fix=args.packets,
        min_aps=args.min_aps,
        max_buffered_packets=args.max_buffer,
        overflow_policy=args.overflow_policy,
        max_burst_age_s=args.max_age,
        breaker_threshold=args.breaker_threshold,
        breaker_recovery_s=args.breaker_recovery,
        workers=args.workers,
        estimator=args.estimator,
        downgrade_tier=args.downgrade_tier,
        trace_dir=args.trace_dir,
        sample_rate=args.sample_rate,
        http_port=args.http_port,
    )
    print(f"shard {args.id!r} serving testbed {args.testbed!r} on {args.bind}")
    if args.http_port:
        print(f"shard telemetry on http://127.0.0.1:{args.http_port}")
    run_shard(args.bind, config)
    print(f"shard {args.id!r} drained and stopped")
    return 0


# ----------------------------------------------------------------------
# trace
# ----------------------------------------------------------------------
def cmd_trace(args: argparse.Namespace) -> int:
    """Localize a dataset with tracing enabled and print the span tree.

    ``--merge DIR`` skips the local run and instead merges the JSONL
    span exports under ``DIR`` (one file per process, as written by
    ``serve --trace-dir``) into cross-process trees: a shard's remote
    root is re-attached under the router span that carried its trace
    context over the wire, so one ``trace <id>`` block shows the
    router's ``flush``/``batch`` spans and the shard's ``locate``
    subtree together.
    """
    if args.merge:
        merged = collect_trace_dir(args.merge)
        if not merged:
            raise ReproError(f"no spans found under {args.merge!r}")
        print(format_merged_traces(merged))
        return 0
    if not args.dataset:
        raise ReproError("a dataset is required unless --merge is given")
    dataset = load_dataset(args.dataset)
    testbed = _get_testbed(args.testbed)
    grid = Intel5300().grid()
    config = SpotFiConfig(
        packets_per_fix=args.packets, estimation=args.estimation
    )
    exporters = [JsonlSpanExporter(args.jsonl)] if args.jsonl else []
    tracer = Tracer(
        ObsConfig(capture_artifacts=args.artifacts), exporters=exporters
    )
    try:
        spotfi = SpotFi(
            grid,
            bounds=testbed.bounds,
            config=config,
            rng=np.random.default_rng(0),
            tracer=tracer,
        )
        fix = spotfi.locate(dataset.ap_trace_pairs())
    finally:
        tracer.close()
    for root in tracer.finished_spans():
        print(format_span_tree(root))
    print(f"\nfix: ({fix.position.x:.2f}, {fix.position.y:.2f}) m")
    if dataset.target is not None:
        print(f"error vs truth: {fix.error_to(dataset.target):.2f} m")
    if args.jsonl:
        print(f"spans exported to {args.jsonl}")
    return 0


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def cmd_metrics(args: argparse.Namespace) -> int:
    """Localize a dataset and print the Prometheus-style exposition.

    ``--from-shards spec,spec,...`` skips the local run entirely and
    instead pulls every listed shard's metrics over the wire, merging
    them into one cluster-wide exposition
    (:func:`repro.dist.rollup.rollup_exposition`).
    """
    if args.from_shards:
        from repro.dist.rollup import pull_shard_metrics, rollup_exposition

        specs = [s for s in args.from_shards.split(",") if s]
        replies = pull_shard_metrics(
            {f"shard{i}": spec for i, spec in enumerate(specs)}
        )
        if not replies:
            raise ReproError(
                f"no shard out of {len(specs)} answered the metrics pull"
            )
        print(f"# merged from {len(replies)}/{len(specs)} shard(s)")
        print(rollup_exposition(replies), end="")
        return 0
    if not args.dataset:
        raise ReproError("a dataset is required unless --from-shards is given")
    dataset = load_dataset(args.dataset)
    testbed = _get_testbed(args.testbed)
    grid = Intel5300().grid()
    config = SpotFiConfig(packets_per_fix=args.packets)
    metrics = RuntimeMetrics()
    with create_executor(args.workers, metrics=metrics) as executor:
        spotfi = SpotFi(
            grid,
            bounds=testbed.bounds,
            config=config,
            rng=np.random.default_rng(0),
            executor=executor,
        )
        for _ in range(args.repeats):
            spotfi.locate(dataset.ap_trace_pairs())
    snapshot = metrics.snapshot()
    snapshot["cache"] = default_steering_cache().stats()
    print(render_prometheus(snapshot), end="")
    return 0


# ----------------------------------------------------------------------
# chaos
# ----------------------------------------------------------------------
def cmd_chaos(args: argparse.Namespace) -> int:
    """Run a fault-injection scenario and gate on the fix success rate."""
    from repro.faults.chaos import NETWORK_SCENARIOS, format_report, run_chaos

    report = run_chaos(
        scenario=args.scenario,
        testbed=args.testbed,
        seed=args.seed,
        packets_per_fix=args.packets,
        bursts=args.bursts,
        min_aps=args.min_aps,
    )
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_report(report))
    rate = 100.0 * report.success_rate
    if rate < args.min_success:
        print(
            f"FAIL: fix success rate {rate:.0f}% below threshold "
            f"{args.min_success:.0f}%",
            file=sys.stderr,
        )
        return 1
    if args.scenario == "downgrade" and report.downgraded_fixes < 1:
        print(
            "FAIL: breaker trip produced no downgraded fixes — the "
            "downgrade path shed load instead of switching tiers",
            file=sys.stderr,
        )
        return 1
    if args.scenario == "moving-target":
        # Track-continuity verdicts: the killed shard's tracks must have
        # resumed on the ring successors (same track id across the
        # kill), never restarted cold, and no source may ever have been
        # tracked under two ids at once.
        failed = False
        if int(report.injected.get("resumed_tracks", 0)) < 1:
            print(
                "FAIL: no track resumed across the shard kill — the "
                "failover never exercised checkpoint handoff",
                file=sys.stderr,
            )
            failed = True
        if int(report.injected.get("cold_restarts", 0)) != 0:
            print(
                f"FAIL: {report.injected['cold_restarts']} track(s) "
                "restarted cold on the successor instead of resuming "
                "from the checkpoint",
                file=sys.stderr,
            )
            failed = True
        if int(report.injected.get("duplicate_track_ids", 0)) != 0:
            print(
                f"FAIL: {report.injected['duplicate_track_ids']} "
                "duplicate track id(s) — a source was tracked under "
                "more than one identity",
                file=sys.stderr,
            )
            failed = True
        if failed:
            return 1
    if args.scenario in NETWORK_SCENARIOS:
        # Transport matrix verdicts beyond raw success: at-least-once
        # delivery must have engaged, nobody may end the run stranded,
        # and dedup must have absorbed every redelivery.
        failed = False
        if int(report.injected.get("replayed", 0)) < 1:
            print(
                "FAIL: no journaled frames were replayed — the scenario "
                "never exercised at-least-once failover",
                file=sys.stderr,
            )
            failed = True
        if int(report.injected.get("unrouted_sources", 0)) != 0:
            print(
                f"FAIL: {report.injected['unrouted_sources']} source(s) "
                "ended the run routed to a dead shard",
                file=sys.stderr,
            )
            failed = True
        if int(report.injected.get("excess_fixes", 0)) != 0:
            print(
                f"FAIL: {report.injected['excess_fixes']} fix(es) beyond "
                "the delivered packet budget — redelivered frames were "
                "double-counted instead of deduplicated",
                file=sys.stderr,
            )
            failed = True
        if failed:
            return 1
    return 0


# ----------------------------------------------------------------------
# inspect
# ----------------------------------------------------------------------
def cmd_inspect(args: argparse.Namespace) -> int:
    """Print a saved dataset's APs, packet counts and ground truth."""
    dataset = load_dataset(args.dataset)
    print(f"dataset  : {dataset.name or '(unnamed)'}")
    print(f"APs      : {dataset.num_aps}")
    if dataset.target is not None:
        print(f"truth    : ({dataset.target.x:.2f}, {dataset.target.y:.2f}) m")
    for i, (array, trace) in enumerate(zip(dataset.ap_arrays, dataset.traces)):
        print(
            f"  AP {i}: {array.num_antennas} antennas at "
            f"({array.position[0]:.2f}, {array.position[1]:.2f}), normal "
            f"{array.normal_deg:+.0f} deg, {len(trace)} packets, "
            f"median RSSI {trace.median_rssi_dbm():.0f} dBm"
        )
    return 0


# ----------------------------------------------------------------------
# floorplan
# ----------------------------------------------------------------------
def render_floorplan(testbed: Testbed, cols: int = 90, rows: int = 26) -> str:
    """Rasterize walls, scatterers, APs and targets into ASCII art."""
    x0, y0, x1, y1 = testbed.bounds
    canvas = [[" "] * cols for _ in range(rows)]

    def put(x: float, y: float, ch: str) -> None:
        c = int((x - x0) / (x1 - x0) * (cols - 1))
        r = int((1.0 - (y - y0) / (y1 - y0)) * (rows - 1))
        canvas[max(0, min(rows - 1, r))][max(0, min(cols - 1, c))] = ch

    for wall in testbed.floorplan.walls:
        steps = max(2, int(wall.length * 4))
        for t in np.linspace(0.0, 1.0, steps):
            p = wall.point_at(float(t))
            put(p.x, p.y, "#")
    for scatterer in testbed.floorplan.scatterers:
        put(scatterer.position.x, scatterer.position.y, "*")
    for spot in testbed.targets:
        put(spot.position.x, spot.position.y, "o")
    for ap in testbed.aps:
        put(ap.position[0], ap.position[1], "A")
    lines = ["".join(row) for row in canvas]
    legend = "# wall   * scatterer   o target   A access point"
    return "\n".join(lines) + "\n" + legend


def cmd_floorplan(args: argparse.Namespace) -> int:
    """Render a testbed floorplan as ASCII art."""
    testbed = _get_testbed(args.testbed)
    print(f"testbed '{testbed.name}': bounds {testbed.bounds}")
    print(render_floorplan(testbed, cols=args.width))
    print(f"{len(testbed.targets)} targets, {len(testbed.aps)} APs")
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro", description="SpotFi reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", help="simulate a collection burst to .npz")
    p.add_argument("output", help="output .npz path")
    p.add_argument("--testbed", default="office", choices=sorted(_TESTBEDS))
    p.add_argument("--target-label", default="", help="target label (see floorplan)")
    p.add_argument("--x", type=float, default=None)
    p.add_argument("--y", type=float, default=None)
    p.add_argument("--packets", type=int, default=40)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("locate", help="localize a saved dataset")
    p.add_argument("dataset", help=".npz dataset path")
    p.add_argument("--testbed", default="office", choices=sorted(_TESTBEDS))
    p.add_argument("--packets", type=int, default=40)
    p.add_argument("--estimation", default="music", choices=("music", "esprit"))
    p.add_argument(
        "--estimator",
        default="",
        help="registry estimator or QoS tier (precise/balanced/coarse); "
        "empty runs the classic pipeline (see docs/ESTIMATORS.md)",
    )
    p.add_argument("--arraytrack", action="store_true", help="also run the baseline")
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for per-packet estimation (1 = serial)",
    )
    p.set_defaults(func=cmd_locate)

    p = sub.add_parser("serve", help="replay a dataset through the server")
    p.add_argument("dataset", help=".npz dataset path")
    p.add_argument("--testbed", default="office", choices=sorted(_TESTBEDS))
    p.add_argument("--packets", type=int, default=10, help="packets per fix burst")
    p.add_argument("--min-aps", type=int, default=2)
    p.add_argument("--track", action="store_true", help="Kalman-filter the fixes")
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for per-packet estimation (1 = serial)",
    )
    p.add_argument(
        "--max-buffer",
        type=int,
        default=0,
        help="per-(source, AP) buffer capacity in packets (0 = unbounded)",
    )
    p.add_argument(
        "--overflow-policy", default="drop-oldest", choices=OVERFLOW_POLICIES
    )
    p.add_argument(
        "--max-age",
        type=float,
        default=0.0,
        help="evict partial bursts idle for this many seconds (0 = never)",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shard worker processes behind a consistent-hash router "
        "(1 = single in-process server)",
    )
    p.add_argument(
        "--bind",
        default="",
        help="tcp:HOST:PORT base address for shard workers (shard i "
        "listens on PORT + i); default: Unix sockets in a temp dir",
    )
    p.add_argument(
        "--sources",
        type=int,
        default=1,
        help="fan the dataset out as this many synthetic targets "
        "(sharded mode; exercises the hash ring)",
    )
    p.add_argument(
        "--estimator",
        default="",
        help="default estimator or QoS tier for every fix "
        "(empty = classic pipeline)",
    )
    p.add_argument(
        "--downgrade-tier",
        default="",
        help="serve fixes on this tier instead of shedding when a "
        "breaker trips (e.g. coarse); empty keeps shedding",
    )
    p.add_argument(
        "--http-port",
        type=int,
        default=0,
        help="serve /metrics, /healthz and /traces on this port while "
        "replaying (sharded mode: cluster rollup here, shard i on "
        "PORT+1+i); 0 = off",
    )
    p.add_argument(
        "--sample-rate",
        type=float,
        default=1.0,
        help="head-sampling rate for traces in [0, 1]; applies to the "
        "server tracer (or router + shards with --shards)",
    )
    p.add_argument(
        "--trace-dir",
        default="",
        help="export spans as JSONL under this directory (one file per "
        "process); merge afterwards with `trace --merge DIR`",
    )
    p.add_argument(
        "--ready-timeout",
        type=float,
        default=30.0,
        help="seconds to wait for each shard worker's ready handshake "
        "before failing startup (sharded mode)",
    )
    p.add_argument(
        "--connect-timeout",
        type=float,
        default=0.0,
        help="router connect timeout per shard in seconds; failures "
        "report 'connect timeout' instead of a generic send error "
        "(0 = use the I/O timeout; sharded mode)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "shard", help="run one dist shard worker in the foreground"
    )
    p.add_argument(
        "--bind", required=True, help="unix:/path/to.sock or tcp:HOST:PORT"
    )
    p.add_argument("--id", default="shard0", help="shard id for fixes/metrics")
    p.add_argument("--testbed", default="small", choices=sorted(_TESTBEDS))
    p.add_argument("--packets", type=int, default=8, help="packets per fix burst")
    p.add_argument("--min-aps", type=int, default=2)
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for per-packet estimation (1 = serial)",
    )
    p.add_argument(
        "--max-buffer",
        type=int,
        default=0,
        help="per-(source, AP) buffer capacity in packets (0 = unbounded)",
    )
    p.add_argument(
        "--overflow-policy", default="drop-oldest", choices=OVERFLOW_POLICIES
    )
    p.add_argument(
        "--max-age",
        type=float,
        default=0.0,
        help="evict partial bursts idle for this many seconds (0 = never)",
    )
    p.add_argument(
        "--breaker-threshold",
        type=int,
        default=0,
        help="consecutive AP failures that open its breaker (0 = off)",
    )
    p.add_argument(
        "--breaker-recovery",
        type=float,
        default=10.0,
        help="seconds an open breaker waits before half-opening",
    )
    p.add_argument(
        "--estimator",
        default="",
        help="default estimator or QoS tier for every fix "
        "(empty = classic pipeline)",
    )
    p.add_argument(
        "--downgrade-tier",
        default="",
        help="serve fixes on this tier instead of shedding when a "
        "breaker trips (e.g. coarse); empty keeps shedding",
    )
    p.add_argument(
        "--http-port",
        type=int,
        default=0,
        help="serve this shard's /metrics, /healthz and /traces on "
        "this port; 0 = off",
    )
    p.add_argument(
        "--sample-rate",
        type=float,
        default=1.0,
        help="head-sampling rate for shard-local trace roots in [0, 1] "
        "(router-initiated traces carry their own verdict)",
    )
    p.add_argument(
        "--trace-dir",
        default="",
        help="export this shard's spans as JSONL under this directory",
    )
    p.set_defaults(func=cmd_shard)

    p = sub.add_parser("trace", help="localize with tracing, print the span tree")
    p.add_argument(
        "dataset",
        nargs="?",
        default="",
        help=".npz dataset path (not needed with --merge)",
    )
    p.add_argument(
        "--merge",
        default="",
        help="merge the JSONL span exports under this directory into "
        "cross-process trace trees instead of running a localization",
    )
    p.add_argument("--testbed", default="office", choices=sorted(_TESTBEDS))
    p.add_argument("--packets", type=int, default=40)
    p.add_argument("--estimation", default="music", choices=("music", "esprit"))
    p.add_argument(
        "--artifacts",
        action="store_true",
        help="capture downsampled pseudospectra and cluster stats into spans",
    )
    p.add_argument(
        "--jsonl", default="", help="also export finished spans to this JSONL file"
    )
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "metrics", help="localize and print the Prometheus-style exposition"
    )
    p.add_argument(
        "dataset",
        nargs="?",
        default="",
        help=".npz dataset path (not needed with --from-shards)",
    )
    p.add_argument(
        "--from-shards",
        default="",
        help="comma-separated shard endpoints (unix:/... or tcp:...) to "
        "pull and merge metrics from instead of a local run",
    )
    p.add_argument("--testbed", default="office", choices=sorted(_TESTBEDS))
    p.add_argument("--packets", type=int, default=40)
    p.add_argument(
        "--repeats", type=int, default=1, help="locate passes to accumulate"
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for per-packet estimation (1 = serial)",
    )
    p.set_defaults(func=cmd_metrics)

    from repro.faults.chaos import SCENARIOS

    p = sub.add_parser(
        "chaos", help="run a seeded fault-injection scenario end to end"
    )
    p.add_argument("--scenario", default="mixed", choices=SCENARIOS)
    p.add_argument("--testbed", default="small", choices=sorted(_TESTBEDS))
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--packets", type=int, default=8, help="packets per fix burst")
    p.add_argument("--bursts", type=int, default=4, help="bursts to stream")
    p.add_argument("--min-aps", type=int, default=2)
    p.add_argument(
        "--min-success",
        type=float,
        default=90.0,
        help="fail (exit 1) when fix success rate %% is below this",
    )
    p.add_argument("--json", action="store_true", help="emit the report as JSON")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser("inspect", help="summarize a saved dataset")
    p.add_argument("dataset", help=".npz dataset path")
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser("floorplan", help="render a testbed as ASCII")
    p.add_argument("--testbed", default="office", choices=sorted(_TESTBEDS))
    p.add_argument("--width", type=int, default=90)
    p.set_defaults(func=cmd_floorplan)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
