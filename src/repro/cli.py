"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``simulate`` — simulate a collection burst on a built-in testbed and
  save it as a portable ``.npz`` dataset.
* ``locate`` — localize a saved dataset with SpotFi (optionally also the
  ArrayTrack baseline) and print the fix.  ``--workers N`` fans the
  per-packet estimation across N processes (default 1 = serial).
* ``serve`` — replay a saved dataset through the streaming
  :class:`~repro.server.SpotFiServer`, with the runtime's worker,
  backpressure and eviction knobs, printing each fix event and, on
  exit, the full Prometheus-style metrics exposition (server + executor
  + steering cache).
* ``trace`` — localize a saved dataset with tracing enabled and print
  the hierarchical span tree (``locate > ap[k] > sanitize|smooth|music|
  cluster > solve``); ``--jsonl`` exports the spans, ``--artifacts``
  captures downsampled pseudospectra and cluster statistics.
* ``metrics`` — localize a saved dataset and print the Prometheus-style
  exposition of the runtime metrics it produced.
* ``chaos`` — run a seeded fault-injection scenario end to end through
  the streaming server (injector + validator + circuit breakers) and
  report fix success rate, accuracy, quarantine and breaker activity;
  exits non-zero when the success rate falls below ``--min-success``.
* ``inspect`` — summarize a saved dataset (APs, packets, RSSI, truth).
* ``floorplan`` — render a testbed's floorplan, APs and targets as ASCII.

Testbeds: ``office`` (the paper's Fig. 6 floor), ``home`` (a 4-room
apartment), ``small`` (a single room for quick tests).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.baselines.arraytrack import ArrayTrack
from repro.core.pipeline import SpotFi, SpotFiConfig
from repro.errors import ReproError
from repro.io.traces import LocationDataset, load_dataset, save_dataset
from repro.obs import (
    JsonlSpanExporter,
    ObsConfig,
    Tracer,
    format_span_tree,
    render_prometheus,
)
from repro.runtime import (
    OVERFLOW_POLICIES,
    RuntimeMetrics,
    create_executor,
    default_steering_cache,
)
from repro.server import SpotFiServer
from repro.testbed.collection import as_ap_trace_pairs, collect_location
from repro.testbed.layout import Testbed, home_testbed, office_testbed, small_testbed
from repro.wifi.intel5300 import Intel5300

_TESTBEDS = {"office": office_testbed, "small": small_testbed, "home": home_testbed}


def _get_testbed(name: str) -> Testbed:
    try:
        return _TESTBEDS[name]()
    except KeyError:
        raise ReproError(
            f"unknown testbed {name!r}; available: {sorted(_TESTBEDS)}"
        ) from None


# ----------------------------------------------------------------------
# simulate
# ----------------------------------------------------------------------
def cmd_simulate(args: argparse.Namespace) -> int:
    """Simulate a collection burst and save it as .npz."""
    testbed = _get_testbed(args.testbed)
    if args.target_label:
        matches = [t for t in testbed.targets if t.label == args.target_label]
        if not matches:
            raise ReproError(
                f"no target labeled {args.target_label!r}; try `floorplan`"
            )
        target = matches[0].position
    elif args.x is not None and args.y is not None:
        target = (args.x, args.y)
    else:
        target = testbed.targets[0].position
    sim = testbed.simulator()
    rng = np.random.default_rng(args.seed)
    recordings = collect_location(
        sim, target, testbed.aps, num_packets=args.packets, rng=rng
    )
    if not recordings:
        raise ReproError("no AP heard the target at that location")
    dataset = LocationDataset(
        ap_arrays=[r.array for r in recordings],
        traces=[r.trace for r in recordings],
        target=target,
        name=f"{args.testbed}-simulated",
    )
    path = save_dataset(dataset, args.output)
    print(
        f"simulated {len(recordings)} AP traces x {args.packets} packets "
        f"at ({target[0]:.2f}, {target[1]:.2f}) -> {path}"
    )
    return 0


# ----------------------------------------------------------------------
# locate
# ----------------------------------------------------------------------
def cmd_locate(args: argparse.Namespace) -> int:
    """Localize a saved dataset with SpotFi (optionally the baseline)."""
    dataset = load_dataset(args.dataset)
    testbed = _get_testbed(args.testbed)
    grid = Intel5300().grid()
    config = SpotFiConfig(
        packets_per_fix=args.packets, estimation=args.estimation
    )
    with create_executor(args.workers) as executor:
        spotfi = SpotFi(
            grid,
            bounds=testbed.bounds,
            config=config,
            rng=np.random.default_rng(0),
            executor=executor,
        )
        fix = spotfi.locate(dataset.ap_trace_pairs())
    print(f"SpotFi fix     : ({fix.position.x:.2f}, {fix.position.y:.2f}) m")
    if dataset.target is not None:
        print(f"ground truth   : ({dataset.target.x:.2f}, {dataset.target.y:.2f}) m")
        print(f"SpotFi error   : {fix.error_to(dataset.target):.2f} m")
    for r in fix.reports:
        if r.usable:
            print(
                f"  AP {tuple(r.array.position)}: AoA {r.direct.aoa_deg:+6.1f} deg, "
                f"likelihood {r.direct.likelihood:.2f}, RSSI {r.rssi_dbm:.0f} dBm"
            )
    if args.arraytrack:
        at = ArrayTrack(grid, bounds=testbed.bounds, packets_per_fix=args.packets)
        result = at.locate(dataset.ap_trace_pairs())
        print(f"ArrayTrack fix : ({result.position.x:.2f}, {result.position.y:.2f}) m")
        if dataset.target is not None:
            print(f"ArrayTrack err : {result.error_to(dataset.target):.2f} m")
    return 0


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------
def cmd_serve(args: argparse.Namespace) -> int:
    """Replay a dataset through the streaming server, packet by packet.

    One :class:`RuntimeMetrics` instance is shared by the executor and
    the server, so the exit dump covers estimation fan-out (``estimate``
    stage) alongside ingest/fix accounting instead of discarding the
    executor's share.
    """
    dataset = load_dataset(args.dataset)
    testbed = _get_testbed(args.testbed)
    grid = Intel5300().grid()
    config = SpotFiConfig(packets_per_fix=args.packets)
    metrics = RuntimeMetrics()
    with create_executor(args.workers, metrics=metrics) as executor:
        spotfi = SpotFi(
            grid,
            bounds=testbed.bounds,
            config=config,
            rng=np.random.default_rng(0),
            executor=executor,
        )
        server = SpotFiServer(
            spotfi=spotfi,
            aps={f"ap{i}": a for i, a in enumerate(dataset.ap_arrays)},
            packets_per_fix=args.packets,
            min_aps=min(args.min_aps, dataset.num_aps),
            track=args.track,
            max_buffered_packets=args.max_buffer,
            overflow_policy=args.overflow_policy,
            max_burst_age_s=args.max_age,
            metrics=metrics,
        )
        # Interleave packets across APs, as a live deployment would see
        # them arrive at the central server.
        num_packets = min(len(t) for t in dataset.traces)
        num_events = 0
        for k in range(num_packets):
            for i, trace in enumerate(dataset.traces):
                event = server.ingest(f"ap{i}", trace[k])
                if event is None:
                    continue
                num_events += 1
                if event.ok:
                    print(
                        f"fix #{num_events} t={event.timestamp_s:.2f}s "
                        f"source={event.source!r}: "
                        f"({event.fix.position.x:.2f}, {event.fix.position.y:.2f}) m "
                        f"[{event.num_aps} APs]"
                    )
                    if dataset.target is not None:
                        print(
                            f"  error vs truth: "
                            f"{event.fix.error_to(dataset.target):.2f} m"
                        )
                else:
                    print(
                        f"fix #{num_events} t={event.timestamp_s:.2f}s "
                        f"source={event.source!r}: FAILED [{event.num_aps} APs]"
                    )
        snapshot = server.metrics_snapshot()
        print(f"{num_events} fix events from {num_packets} packets per AP")
        print(f"runtime counters: {snapshot['counters']}")
        fix_timing = snapshot["timings"].get("fix")
        if fix_timing:
            print(
                f"fix stage: {fix_timing['count']} runs, "
                f"mean {fix_timing['mean_s'] * 1e3:.0f} ms, "
                f"p99 {fix_timing['quantiles']['p99'] * 1e3:.0f} ms"
            )
        print("\n--- metrics exposition ---")
        print(server.metrics_exposition(), end="")
    return 0


# ----------------------------------------------------------------------
# trace
# ----------------------------------------------------------------------
def cmd_trace(args: argparse.Namespace) -> int:
    """Localize a dataset with tracing enabled and print the span tree."""
    dataset = load_dataset(args.dataset)
    testbed = _get_testbed(args.testbed)
    grid = Intel5300().grid()
    config = SpotFiConfig(
        packets_per_fix=args.packets, estimation=args.estimation
    )
    exporters = [JsonlSpanExporter(args.jsonl)] if args.jsonl else []
    tracer = Tracer(
        ObsConfig(capture_artifacts=args.artifacts), exporters=exporters
    )
    try:
        spotfi = SpotFi(
            grid,
            bounds=testbed.bounds,
            config=config,
            rng=np.random.default_rng(0),
            tracer=tracer,
        )
        fix = spotfi.locate(dataset.ap_trace_pairs())
    finally:
        tracer.close()
    for root in tracer.finished_spans():
        print(format_span_tree(root))
    print(f"\nfix: ({fix.position.x:.2f}, {fix.position.y:.2f}) m")
    if dataset.target is not None:
        print(f"error vs truth: {fix.error_to(dataset.target):.2f} m")
    if args.jsonl:
        print(f"spans exported to {args.jsonl}")
    return 0


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def cmd_metrics(args: argparse.Namespace) -> int:
    """Localize a dataset and print the Prometheus-style exposition."""
    dataset = load_dataset(args.dataset)
    testbed = _get_testbed(args.testbed)
    grid = Intel5300().grid()
    config = SpotFiConfig(packets_per_fix=args.packets)
    metrics = RuntimeMetrics()
    with create_executor(args.workers, metrics=metrics) as executor:
        spotfi = SpotFi(
            grid,
            bounds=testbed.bounds,
            config=config,
            rng=np.random.default_rng(0),
            executor=executor,
        )
        for _ in range(args.repeats):
            spotfi.locate(dataset.ap_trace_pairs())
    snapshot = metrics.snapshot()
    snapshot["cache"] = default_steering_cache().stats()
    print(render_prometheus(snapshot), end="")
    return 0


# ----------------------------------------------------------------------
# chaos
# ----------------------------------------------------------------------
def cmd_chaos(args: argparse.Namespace) -> int:
    """Run a fault-injection scenario and gate on the fix success rate."""
    from repro.faults.chaos import format_report, run_chaos

    report = run_chaos(
        scenario=args.scenario,
        testbed=args.testbed,
        seed=args.seed,
        packets_per_fix=args.packets,
        bursts=args.bursts,
        min_aps=args.min_aps,
    )
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_report(report))
    rate = 100.0 * report.success_rate
    if rate < args.min_success:
        print(
            f"FAIL: fix success rate {rate:.0f}% below threshold "
            f"{args.min_success:.0f}%",
            file=sys.stderr,
        )
        return 1
    return 0


# ----------------------------------------------------------------------
# inspect
# ----------------------------------------------------------------------
def cmd_inspect(args: argparse.Namespace) -> int:
    """Print a saved dataset's APs, packet counts and ground truth."""
    dataset = load_dataset(args.dataset)
    print(f"dataset  : {dataset.name or '(unnamed)'}")
    print(f"APs      : {dataset.num_aps}")
    if dataset.target is not None:
        print(f"truth    : ({dataset.target.x:.2f}, {dataset.target.y:.2f}) m")
    for i, (array, trace) in enumerate(zip(dataset.ap_arrays, dataset.traces)):
        print(
            f"  AP {i}: {array.num_antennas} antennas at "
            f"({array.position[0]:.2f}, {array.position[1]:.2f}), normal "
            f"{array.normal_deg:+.0f} deg, {len(trace)} packets, "
            f"median RSSI {trace.median_rssi_dbm():.0f} dBm"
        )
    return 0


# ----------------------------------------------------------------------
# floorplan
# ----------------------------------------------------------------------
def render_floorplan(testbed: Testbed, cols: int = 90, rows: int = 26) -> str:
    """Rasterize walls, scatterers, APs and targets into ASCII art."""
    x0, y0, x1, y1 = testbed.bounds
    canvas = [[" "] * cols for _ in range(rows)]

    def put(x: float, y: float, ch: str) -> None:
        c = int((x - x0) / (x1 - x0) * (cols - 1))
        r = int((1.0 - (y - y0) / (y1 - y0)) * (rows - 1))
        canvas[max(0, min(rows - 1, r))][max(0, min(cols - 1, c))] = ch

    for wall in testbed.floorplan.walls:
        steps = max(2, int(wall.length * 4))
        for t in np.linspace(0.0, 1.0, steps):
            p = wall.point_at(float(t))
            put(p.x, p.y, "#")
    for scatterer in testbed.floorplan.scatterers:
        put(scatterer.position.x, scatterer.position.y, "*")
    for spot in testbed.targets:
        put(spot.position.x, spot.position.y, "o")
    for ap in testbed.aps:
        put(ap.position[0], ap.position[1], "A")
    lines = ["".join(row) for row in canvas]
    legend = "# wall   * scatterer   o target   A access point"
    return "\n".join(lines) + "\n" + legend


def cmd_floorplan(args: argparse.Namespace) -> int:
    """Render a testbed floorplan as ASCII art."""
    testbed = _get_testbed(args.testbed)
    print(f"testbed '{testbed.name}': bounds {testbed.bounds}")
    print(render_floorplan(testbed, cols=args.width))
    print(f"{len(testbed.targets)} targets, {len(testbed.aps)} APs")
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro", description="SpotFi reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", help="simulate a collection burst to .npz")
    p.add_argument("output", help="output .npz path")
    p.add_argument("--testbed", default="office", choices=sorted(_TESTBEDS))
    p.add_argument("--target-label", default="", help="target label (see floorplan)")
    p.add_argument("--x", type=float, default=None)
    p.add_argument("--y", type=float, default=None)
    p.add_argument("--packets", type=int, default=40)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("locate", help="localize a saved dataset")
    p.add_argument("dataset", help=".npz dataset path")
    p.add_argument("--testbed", default="office", choices=sorted(_TESTBEDS))
    p.add_argument("--packets", type=int, default=40)
    p.add_argument("--estimation", default="music", choices=("music", "esprit"))
    p.add_argument("--arraytrack", action="store_true", help="also run the baseline")
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for per-packet estimation (1 = serial)",
    )
    p.set_defaults(func=cmd_locate)

    p = sub.add_parser("serve", help="replay a dataset through the server")
    p.add_argument("dataset", help=".npz dataset path")
    p.add_argument("--testbed", default="office", choices=sorted(_TESTBEDS))
    p.add_argument("--packets", type=int, default=10, help="packets per fix burst")
    p.add_argument("--min-aps", type=int, default=2)
    p.add_argument("--track", action="store_true", help="Kalman-filter the fixes")
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for per-packet estimation (1 = serial)",
    )
    p.add_argument(
        "--max-buffer",
        type=int,
        default=0,
        help="per-(source, AP) buffer capacity in packets (0 = unbounded)",
    )
    p.add_argument(
        "--overflow-policy", default="drop-oldest", choices=OVERFLOW_POLICIES
    )
    p.add_argument(
        "--max-age",
        type=float,
        default=0.0,
        help="evict partial bursts idle for this many seconds (0 = never)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("trace", help="localize with tracing, print the span tree")
    p.add_argument("dataset", help=".npz dataset path")
    p.add_argument("--testbed", default="office", choices=sorted(_TESTBEDS))
    p.add_argument("--packets", type=int, default=40)
    p.add_argument("--estimation", default="music", choices=("music", "esprit"))
    p.add_argument(
        "--artifacts",
        action="store_true",
        help="capture downsampled pseudospectra and cluster stats into spans",
    )
    p.add_argument(
        "--jsonl", default="", help="also export finished spans to this JSONL file"
    )
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "metrics", help="localize and print the Prometheus-style exposition"
    )
    p.add_argument("dataset", help=".npz dataset path")
    p.add_argument("--testbed", default="office", choices=sorted(_TESTBEDS))
    p.add_argument("--packets", type=int, default=40)
    p.add_argument(
        "--repeats", type=int, default=1, help="locate passes to accumulate"
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for per-packet estimation (1 = serial)",
    )
    p.set_defaults(func=cmd_metrics)

    from repro.faults.chaos import SCENARIOS

    p = sub.add_parser(
        "chaos", help="run a seeded fault-injection scenario end to end"
    )
    p.add_argument("--scenario", default="mixed", choices=SCENARIOS)
    p.add_argument("--testbed", default="small", choices=sorted(_TESTBEDS))
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--packets", type=int, default=8, help="packets per fix burst")
    p.add_argument("--bursts", type=int, default=4, help="bursts to stream")
    p.add_argument("--min-aps", type=int, default=2)
    p.add_argument(
        "--min-success",
        type=float,
        default=90.0,
        help="fail (exit 1) when fix success rate %% is below this",
    )
    p.add_argument("--json", action="store_true", help="emit the report as JSON")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser("inspect", help="summarize a saved dataset")
    p.add_argument("dataset", help=".npz dataset path")
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser("floorplan", help="render a testbed as ASCII")
    p.add_argument("--testbed", default="office", choices=sorted(_TESTBEDS))
    p.add_argument("--width", type=int, default=90)
    p.set_defaults(func=cmd_floorplan)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
