"""Exception hierarchy for the SpotFi reproduction library.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A component was constructed with inconsistent or invalid parameters."""


class CsiShapeError(ReproError):
    """A CSI array does not have the (antennas, subcarriers) shape expected."""


class EstimationError(ReproError):
    """A parameter-estimation step failed (e.g. no spectrum peaks found)."""


class ClusteringError(ReproError):
    """The (AoA, ToF) clustering step could not produce valid clusters."""


class LocalizationError(ReproError):
    """The localization solver could not produce a position estimate."""


class GeometryError(ReproError):
    """A geometric construction is degenerate (zero-length wall, etc.)."""


class TraceFormatError(ReproError):
    """A CSI trace file is malformed or uses an unsupported version."""


class BackpressureError(ReproError):
    """A bounded ingest buffer is full and its policy is to reject."""


class ValidationError(ReproError):
    """An ingested CSI frame failed validation and was quarantined.

    Raised (or recorded, depending on the
    :class:`~repro.faults.FrameValidator` policy) when a frame is
    malformed: wrong shape, non-finite entries, power below the noise
    floor, or a timestamp that runs backwards.  The offending frame never
    reaches smoothing/MUSIC.
    """


class ContractError(ReproError, ValueError):
    """A runtime shape/dtype contract was violated.

    Also a :class:`ValueError`: callers that guard numeric APIs with
    ``except ValueError`` keep working when contracts are switched on.

    Raised by :func:`repro.analysis.contracts.contract`-wrapped
    functions (only when ``REPRO_CONTRACTS=1``) when an argument or
    return value does not match its declared ndarray shape/dtype spec.
    The message names the offending parameter and the expected vs.
    actual shape.
    """


class UnknownEstimatorError(ConfigurationError):
    """A requested estimator (or QoS tier) name is not registered.

    Raised by :func:`repro.estimators.resolve_name` when a ``locate``,
    server, shard, or CLI request names an estimator that neither the
    built-in registry nor any discovered plugin provides.  The message
    lists the names that *are* available.
    """


class CircuitOpenError(ReproError):
    """A per-AP circuit breaker is open and is shedding this call.

    The breaker opened after consecutive failures from the AP; callers
    should skip the AP (serve from the surviving quorum) and retry after
    the breaker's recovery window moves it to half-open.
    """


class ShardUnavailableError(ReproError):
    """No live shard remains to route a key to.

    Raised by :class:`~repro.dist.router.ShardRouter` when every shard in
    the ring has been marked dead (failed health checks or connection
    errors) and a packet or flush has nowhere to go.  Until then, shard
    death is absorbed by failover: the dead shard's key range is
    re-hashed onto the survivors and counted under ``dist.failover.*``.
    """


class DeadlineExceededError(ReproError):
    """A work item missed its per-packet deadline on the executor.

    Raised by :class:`~repro.runtime.executor.ParallelExecutor` when a
    chunk of per-packet estimation does not complete within the
    :class:`~repro.faults.RetryPolicy` timeout after exhausting retries.
    """
