"""Exception hierarchy for the SpotFi reproduction library.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A component was constructed with inconsistent or invalid parameters."""


class CsiShapeError(ReproError):
    """A CSI array does not have the (antennas, subcarriers) shape expected."""


class EstimationError(ReproError):
    """A parameter-estimation step failed (e.g. no spectrum peaks found)."""


class ClusteringError(ReproError):
    """The (AoA, ToF) clustering step could not produce valid clusters."""


class LocalizationError(ReproError):
    """The localization solver could not produce a position estimate."""


class GeometryError(ReproError):
    """A geometric construction is degenerate (zero-length wall, etc.)."""


class TraceFormatError(ReproError):
    """A CSI trace file is malformed or uses an unsupported version."""


class BackpressureError(ReproError):
    """A bounded ingest buffer is full and its policy is to reject."""
