"""Runtime observability: counters and histogram-backed stage timings.

A :class:`RuntimeMetrics` instance is threaded through the executors and
the streaming server so deployments can answer "how many packets were
estimated / dropped / evicted, and where did the time go — including at
the tail" without attaching a profiler.

Timings track two dimensions per stage, because the executors record at
two granularities:

* **batches** — one ``record_complete`` call.  A
  :class:`~repro.runtime.executor.SerialExecutor` records one batch per
  item; a :class:`~repro.runtime.executor.ParallelExecutor` records one
  batch per ``map_ordered`` call covering ``n`` items.
* **items** — individual work units.  ``record_complete(..., n=...)``
  counts them, and per-item durations feed a log-bucket
  :class:`~repro.obs.histogram.Histogram` — directly when ``n == 1``,
  via :meth:`merge_item_histogram` when workers in other processes
  timed the items and shipped their histograms back.

``snapshot()`` reports both dimensions; the legacy ``count`` key equals
``batches`` (what the pre-histogram implementation counted), while
``mean_s`` remains per-batch.  Quantiles (p50/p90/p99) are per-item.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Sequence, Tuple

from repro.obs.histogram import DEFAULT_TIMING_BUCKETS, Histogram


class _StageTiming:
    """Mutable per-stage accumulator behind the metrics lock."""

    __slots__ = ("batches", "items", "total_s", "max_s", "item_hist")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.batches = 0
        self.items = 0
        self.total_s = 0.0
        self.max_s = 0.0
        self.item_hist = Histogram(bounds)


class RuntimeMetrics:
    """Thread-safe counters plus histogram-backed per-stage timings.

    Counters are free-form dotted names (``ingest.dropped``,
    ``estimate.completed``); timings accumulate batch count, item count,
    total/max seconds, and a per-item duration histogram per stage.  All
    methods are safe to call from multiple threads.  Worker *processes*
    time items locally and merge the resulting histograms back into the
    parent instance (see
    :meth:`~repro.runtime.executor.ParallelExecutor.map_ordered`), so a
    parallel snapshot carries true per-item tail latencies, not just the
    parent's batch wall-clock.

    Parameters
    ----------
    bucket_bounds:
        Histogram bucket upper bounds shared by every stage; defaults to
        :data:`~repro.obs.histogram.DEFAULT_TIMING_BUCKETS` (1 us .. ~67 s,
        log-scale).  Worker histograms must use the same bounds to merge.
    """

    def __init__(
        self, bucket_bounds: Sequence[float] = DEFAULT_TIMING_BUCKETS
    ) -> None:
        self._lock = threading.Lock()
        self._bounds = tuple(float(b) for b in bucket_bounds)
        self._counters: Dict[str, int] = {}
        self._timings: Dict[str, _StageTiming] = {}

    @property
    def bucket_bounds(self) -> Tuple[float, ...]:
        """Histogram bucket upper bounds every stage records into."""
        return self._bounds

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def increment(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``name``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(n)

    def record_submit(self, stage: str, n: int = 1) -> None:
        """Count ``n`` work items handed to ``stage``."""
        self.increment(f"{stage}.submitted", n)

    def record_complete(self, stage: str, elapsed_s: float, n: int = 1) -> None:
        """Record one completed batch of ``n`` items taking ``elapsed_s``.

        Increments the ``<stage>.completed`` counter by ``n`` (items),
        the stage's batch count by 1, and — when the batch is a single
        item — observes ``elapsed_s`` into the per-item histogram.
        Multi-item batches leave the histogram to
        :meth:`merge_item_histogram`, which workers feed with their
        per-item timings.
        """
        elapsed_s = float(elapsed_s)
        self.increment(f"{stage}.completed", n)
        with self._lock:
            timing = self._timing(stage)
            timing.batches += 1
            timing.items += int(n)
            timing.total_s += elapsed_s
            timing.max_s = max(timing.max_s, elapsed_s)
            if n == 1:
                timing.item_hist.observe(elapsed_s)

    def merge_item_histogram(self, stage: str, hist: Histogram) -> None:
        """Merge a worker's per-item duration histogram into ``stage``.

        Cross-process aggregation path: workers observe each item into a
        process-local histogram, ship it back (plain data), and the
        parent folds it in here.  Bucket bounds must match this
        instance's.
        """
        with self._lock:
            self._timing(stage).item_hist.merge(hist)

    def record_error(
        self, stage: str, n: int = 1, kind: Optional[str] = None
    ) -> None:
        """Count ``n`` failed items in ``stage``.

        ``kind`` (typically the exception class name) additionally
        increments ``<stage>.errors.<kind>``, so the exposition reports
        *what* failed, not just how often — an
        :class:`~repro.errors.EstimationError` spike and a worker-pool
        ``BrokenProcessPool`` need different responses.
        """
        self.increment(f"{stage}.errors", n)
        if kind:
            self.increment(f"{stage}.errors.{kind}", n)

    def record_retry(self, stage: str, n: int = 1) -> None:
        """Count ``n`` retried work chunks in ``stage``."""
        self.increment(f"{stage}.retries", n)

    def record_timeout(self, stage: str, n: int = 1) -> None:
        """Count ``n`` chunks that missed their deadline in ``stage``."""
        self.increment(f"{stage}.timeouts", n)

    def record_drop(self, reason: str, n: int = 1) -> None:
        """Count ``n`` items dropped for ``reason`` (overflow, stale...)."""
        self.increment(f"drop.{reason}", n)

    def merge(self, other: "RuntimeMetrics") -> None:
        """Fold another instance's counters and timings into this one.

        Used to aggregate metrics kept by separate components (e.g. an
        executor's and a server's) into one exposition.  Histogram
        bucket bounds must match.
        """
        other_counters, other_timings = other._export_state()
        with self._lock:
            for name, value in other_counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            for stage, (batches, items, total_s, max_s, hist) in other_timings.items():
                timing = self._timing(stage)
                timing.batches += batches
                timing.items += items
                timing.total_s += total_s
                timing.max_s = max(timing.max_s, max_s)
                timing.item_hist.merge(hist)

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, dict]) -> "RuntimeMetrics":
        """Rebuild an instance from a :meth:`snapshot` plain-data dict.

        The inverse (up to float rounding) of :meth:`snapshot`, used by
        :mod:`repro.dist.rollup` to merge per-shard snapshots shipped
        over the wire: each shard's snapshot is rehydrated here and then
        folded together with :meth:`merge`.  Bucket bounds are taken
        from the first timing's histogram (all stages share bounds), or
        :data:`~repro.obs.histogram.DEFAULT_TIMING_BUCKETS` when the
        snapshot has no timings.
        """
        timings = snapshot.get("timings", {})
        bounds: Sequence[float] = DEFAULT_TIMING_BUCKETS
        for entry in timings.values():
            hist_data = entry.get("histogram")
            if hist_data and hist_data.get("bounds"):
                bounds = tuple(float(b) for b in hist_data["bounds"])
                break
        metrics = cls(bucket_bounds=bounds)
        for name, value in snapshot.get("counters", {}).items():
            metrics._counters[str(name)] = int(value)
        for stage, entry in timings.items():
            timing = metrics._timing(str(stage))
            timing.batches = int(entry.get("batches", entry.get("count", 0)))
            timing.items = int(entry.get("items", timing.batches))
            timing.total_s = float(entry.get("total_s", 0.0))
            timing.max_s = float(entry.get("max_s", 0.0))
            hist_data = entry.get("histogram")
            if hist_data:
                timing.item_hist.merge(Histogram.from_dict(hist_data))
        return metrics

    def _export_state(self) -> Tuple[Dict[str, int], Dict[str, "StageTiming"]]:
        """Deep-copied (counters, timings) for a lock-safe merge."""
        with self._lock:
            counters = dict(self._counters)
            timings = {
                stage: (t.batches, t.items, t.total_s, t.max_s, t.item_hist.copy())
                for stage, t in self._timings.items()
            }
        return counters, timings

    def _timing(self, stage: str) -> _StageTiming:
        timing = self._timings.get(stage)
        if timing is None:
            timing = self._timings[stage] = _StageTiming(self._bounds)
        return timing

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> Dict[str, dict]:
        """Plain-data view: ``{"counters": {...}, "timings": {...}}``.

        Per stage, timings report:

        * ``count`` — batches recorded (legacy key; equals ``batches``)
        * ``batches`` / ``items`` — both work dimensions explicitly
        * ``total_s`` / ``max_s`` — batch wall-clock accumulation
        * ``mean_s`` — mean *batch* duration (``total_s / batches``)
        * ``mean_item_s`` — ``total_s / items``; for a parallel batch
          this is wall-clock per item, i.e. throughput⁻¹, not latency
        * ``quantiles`` — p50/p90/p99 *per-item* duration estimates
        * ``histogram`` — the per-item histogram's plain-data form
          (see :meth:`~repro.obs.histogram.Histogram.to_dict`)
        """
        with self._lock:
            counters = dict(self._counters)
            timings = {}
            for stage, t in self._timings.items():
                timings[stage] = {
                    "count": t.batches,
                    "batches": t.batches,
                    "items": t.items,
                    "total_s": t.total_s,
                    "mean_s": t.total_s / t.batches if t.batches else 0.0,
                    "mean_item_s": t.total_s / t.items if t.items else 0.0,
                    "max_s": t.max_s,
                    "quantiles": t.item_hist.quantiles(),
                    "histogram": t.item_hist.to_dict(),
                }
        return {"counters": counters, "timings": timings}

    def reset(self) -> None:
        """Zero every counter and timing."""
        with self._lock:
            self._counters.clear()
            self._timings.clear()
