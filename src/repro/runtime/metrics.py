"""Runtime observability: counters and per-stage wall-clock timings.

A :class:`RuntimeMetrics` instance is threaded through the executors and
the streaming server so deployments can answer "how many packets were
estimated / dropped / evicted, and where did the time go" without
attaching a profiler.  It is deliberately tiny: a lock, two dicts, and a
``snapshot()`` that returns plain data.
"""

from __future__ import annotations

import threading
from typing import Dict


class RuntimeMetrics:
    """Thread-safe counters plus per-stage timing accumulators.

    Counters are free-form dotted names (``ingest.dropped``,
    ``estimate.completed``); timings accumulate (count, total seconds,
    max seconds) per stage.  All methods are safe to call from multiple
    threads; worker *processes* keep their own instances (the parent's
    executor records batch-level timings, which is what matters for
    throughput accounting).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._timings: Dict[str, list] = {}  # stage -> [count, total_s, max_s]

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def increment(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``name``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(n)

    def record_submit(self, stage: str, n: int = 1) -> None:
        """Count ``n`` work items handed to ``stage``."""
        self.increment(f"{stage}.submitted", n)

    def record_complete(self, stage: str, elapsed_s: float, n: int = 1) -> None:
        """Count ``n`` completed items and ``elapsed_s`` of wall time."""
        self.increment(f"{stage}.completed", n)
        with self._lock:
            timing = self._timings.setdefault(stage, [0, 0.0, 0.0])
            timing[0] += 1
            timing[1] += float(elapsed_s)
            timing[2] = max(timing[2], float(elapsed_s))

    def record_error(self, stage: str, n: int = 1) -> None:
        """Count ``n`` failed items in ``stage``."""
        self.increment(f"{stage}.errors", n)

    def record_drop(self, reason: str, n: int = 1) -> None:
        """Count ``n`` items dropped for ``reason`` (overflow, stale...)."""
        self.increment(f"drop.{reason}", n)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> Dict[str, dict]:
        """Plain-data view: ``{"counters": {...}, "timings": {...}}``.

        Timings report ``count`` (batches recorded), ``total_s``,
        ``mean_s`` and ``max_s`` per stage.
        """
        with self._lock:
            counters = dict(self._counters)
            timings = {
                stage: {
                    "count": c,
                    "total_s": total,
                    "mean_s": total / c if c else 0.0,
                    "max_s": peak,
                }
                for stage, (c, total, peak) in self._timings.items()
            }
        return {"counters": counters, "timings": timings}

    def reset(self) -> None:
        """Zero every counter and timing."""
        with self._lock:
            self._counters.clear()
            self._timings.clear()
