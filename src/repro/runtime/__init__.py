"""Execution runtime for the SpotFi pipeline.

Per-packet smoothed-CSI MUSIC dominates SpotFi's cost (Alg. 2 lines 4-7);
this package supplies the engineering layer that makes it scale:

* :mod:`repro.runtime.executor` — :class:`Executor` implementations that
  fan per-packet estimation across workers with deterministic ordering
  (``SerialExecutor`` reproduces the inline loop bit-for-bit,
  ``ParallelExecutor`` uses a process pool).
* :mod:`repro.runtime.cache` — :class:`SteeringCache`, process-local
  memoization of the (theta, tau) steering grids so workers stop
  rebuilding identical matrices for every packet.
* :mod:`repro.runtime.queues` — :class:`PacketBuffer`, the bounded
  ingest buffer with an explicit overflow policy that keeps
  :class:`~repro.server.SpotFiServer` memory-safe under burst floods.
* :mod:`repro.runtime.metrics` — :class:`RuntimeMetrics`, counters and
  histogram-backed stage timings (batch + item dimensions, p50/p90/p99
  tail estimates) threaded through submit/complete/drop events; worker
  processes merge their per-item histograms back into the parent.

The diagnostic layer on top — hierarchical tracing, Prometheus-style
exposition of a metrics snapshot, stage artifact capture — lives in
:mod:`repro.obs`.
"""

from repro.runtime.cache import SteeringCache, SteeringGrids, default_steering_cache
from repro.runtime.executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    create_executor,
)
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.queues import OVERFLOW_POLICIES, PacketBuffer

__all__ = [
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "create_executor",
    "SteeringCache",
    "SteeringGrids",
    "default_steering_cache",
    "RuntimeMetrics",
    "PacketBuffer",
    "OVERFLOW_POLICIES",
]
