"""Bounded ingest buffers with explicit backpressure.

:class:`~repro.server.SpotFiServer` keeps one buffer per (source MAC,
AP).  Unbounded lists are fine for a benchmark but a liability for the
paper's "central server" under real traffic: a chatty or hostile source
would grow them without limit.  :class:`PacketBuffer` caps each buffer
and makes the overflow behaviour an explicit policy instead of an OOM.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.errors import BackpressureError, ConfigurationError

#: Recognised overflow policies.
#:
#: * ``drop-oldest`` — evict the oldest buffered packet to admit the new
#:   one (a stale half-burst is worth less than fresh CSI).
#: * ``drop-newest`` — refuse the incoming packet, keep the buffer.
#: * ``reject`` — raise :class:`~repro.errors.BackpressureError` so the
#:   transport layer can push back on the AP.
OVERFLOW_POLICIES: Tuple[str, ...] = ("drop-oldest", "drop-newest", "reject")


class PacketBuffer:
    """A FIFO of per-packet items with a capacity and an overflow policy.

    Parameters
    ----------
    max_packets:
        Capacity; 0 means unbounded (the historical behaviour).
    policy:
        One of :data:`OVERFLOW_POLICIES`; consulted only when bounded.
    """

    def __init__(self, max_packets: int = 0, policy: str = "drop-oldest") -> None:
        if max_packets < 0:
            raise ConfigurationError(f"max_packets must be >= 0, got {max_packets}")
        if policy not in OVERFLOW_POLICIES:
            raise ConfigurationError(
                f"unknown overflow policy {policy!r}; expected one of "
                f"{OVERFLOW_POLICIES}"
            )
        self.max_packets = int(max_packets)
        self.policy = policy
        self._items: List = []

    # ------------------------------------------------------------------
    def push(self, item: object) -> Optional[object]:
        """Append ``item``, applying the overflow policy when full.

        Returns the item that was *dropped* (the incoming one under
        ``drop-newest``, the evicted head under ``drop-oldest``) or None
        when nothing was dropped.  Raises
        :class:`~repro.errors.BackpressureError` under ``reject``.
        """
        if self.max_packets and len(self._items) >= self.max_packets:
            if self.policy == "reject":
                raise BackpressureError(
                    f"buffer full ({self.max_packets} packets) and policy is 'reject'"
                )
            if self.policy == "drop-newest":
                return item
            dropped = self._items.pop(0)
            self._items.append(item)
            return dropped
        self._items.append(item)
        return None

    def peek(self, n: int) -> List:
        """The first ``n`` items, without removing them."""
        return self._items[:n]

    def consume(self, n: int) -> List:
        """Remove and return the first ``n`` items."""
        taken, self._items = self._items[:n], self._items[n:]
        return taken

    def clear(self) -> List:
        """Empty the buffer, returning what it held."""
        held, self._items = self._items, []
        return held

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator:
        return iter(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def full(self) -> bool:
        """True when a bounded buffer is at capacity."""
        return bool(self.max_packets) and len(self._items) >= self.max_packets
