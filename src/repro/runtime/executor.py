"""Executors: deterministic fan-out of per-packet estimation.

The pipeline expresses its hot loop as ``executor.map_ordered(fn, items)``
and lets the executor decide *where* the work runs:

* :class:`SerialExecutor` runs items inline, in order — numerically
  byte-identical to the historical ``for`` loop, and the default
  everywhere so existing behaviour is unchanged.
* :class:`ParallelExecutor` fans items across a
  :class:`concurrent.futures.ProcessPoolExecutor`.  ``map`` preserves
  submission order, so results come back deterministically regardless of
  which worker finished first; per-packet MUSIC is pure (no RNG), so the
  values themselves match the serial path within floating-point identity.

Both record submit/complete/error events on a
:class:`~repro.runtime.metrics.RuntimeMetrics`.
"""

from __future__ import annotations

import os
import random
import time
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, DeadlineExceededError, ReproError
from repro.faults.retry import NO_RETRY, RetryPolicy
from repro.obs.histogram import Histogram
from repro.runtime.metrics import RuntimeMetrics


class _ChunkRunner:
    """Picklable worker task: run a chunk, timing each item.

    Workers cannot write to the parent's :class:`RuntimeMetrics`, so each
    chunk call observes its items into a process-local
    :class:`~repro.obs.histogram.Histogram` and returns it (as plain
    data) alongside the results; the parent merges every chunk's
    histogram back into its own metrics.  Exceptions propagate with
    their original type, exactly like an unwrapped ``pool.map``.
    """

    __slots__ = ("fn", "bounds")

    def __init__(self, fn: Callable, bounds: Tuple[float, ...]) -> None:
        self.fn = fn
        self.bounds = bounds

    def __call__(self, chunk: Sequence) -> Tuple[List, dict]:
        hist = Histogram(self.bounds)
        results: List = []
        for item in chunk:
            start = time.perf_counter()
            results.append(self.fn(item))
            hist.observe(time.perf_counter() - start)
        return results, hist.to_dict()


class Executor:
    """Common interface: an ordered map over picklable task items.

    Subclasses implement :meth:`map_ordered`; everything else (metrics,
    context management) is shared.  Task functions must be module-level
    (picklable) when a parallel executor may run them.
    """

    def __init__(
        self,
        metrics: Optional[RuntimeMetrics] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.metrics = metrics or RuntimeMetrics()
        self.retry = retry or NO_RETRY
        self._backoff_rng = random.Random(0x5F0F1)

    @property
    def workers(self) -> int:
        """Worker processes this executor fans across (1 = inline)."""
        return 1

    def map_ordered(
        self, fn: Callable, items: Iterable, stage: str = "map"
    ) -> List:
        """Apply ``fn`` to every item, returning results in item order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources; the executor is reusable until then."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialExecutor(Executor):
    """Run every item inline, exactly like the historical loop.

    A :class:`~repro.faults.retry.RetryPolicy` adds bounded retries with
    backoff for transient failures; the per-chunk deadline is parallel-
    only (a serial executor cannot interrupt its own thread).  Failures
    are recorded with their exception type — a
    :class:`~repro.errors.ReproError` subclass keeps its identity all the
    way to the caller and into the ``<stage>.errors.<kind>`` counter.
    """

    def map_ordered(
        self, fn: Callable, items: Iterable, stage: str = "map"
    ) -> List:
        items = list(items)
        self.metrics.record_submit(stage, len(items))
        results: List = []
        for item in items:
            start = time.perf_counter()
            attempt = 1
            while True:
                try:
                    results.append(fn(item))
                    break
                except ReproError as exc:
                    # Library errors are deterministic verdicts about the
                    # input (bad CSI shape, no spectrum peaks) — never
                    # transient, never worth a retry.
                    self.metrics.record_error(stage, kind=type(exc).__name__)
                    raise
                except Exception as exc:
                    if attempt < self.retry.max_attempts and self.retry.is_transient(
                        exc
                    ):
                        self.metrics.record_retry(stage)
                        time.sleep(self.retry.delay_for(attempt, self._backoff_rng))
                        attempt += 1
                        continue
                    self.metrics.record_error(stage, kind=type(exc).__name__)
                    raise
            self.metrics.record_complete(stage, time.perf_counter() - start)
        return results


class ParallelExecutor(Executor):
    """Fan items across a lazily created process pool.

    Parameters
    ----------
    workers:
        Worker process count; defaults to the machine's CPU count.
    metrics:
        Shared metrics sink (a fresh one is created if omitted).
    chunk_factor:
        Items are shipped to workers in chunks of roughly
        ``len(items) / (workers * chunk_factor)`` to amortize pickling
        without starving the pool of parallel slack.
    retry:
        :class:`~repro.faults.retry.RetryPolicy` applied per chunk:
        transient worker failures are resubmitted with jittered
        exponential backoff, and ``timeout_s`` bounds how long each
        collected chunk may run before being abandoned and retried
        (exhaustion raises :class:`~repro.errors.DeadlineExceededError`).
        The default policy never retries and has no deadline.

    Notes
    -----
    The pool is created on first use and survives across calls, so
    repeated ``locate`` calls pay the worker start-up cost once.  Call
    :meth:`close` (or use the executor as a context manager) to reap the
    workers.  Exceptions raised by a task propagate to the caller with
    their original type, matching the serial path.

    Items ship to workers in explicit chunks wrapped by
    :class:`_ChunkRunner`, which times every item into a process-local
    histogram; the parent merges those histograms into its
    :class:`RuntimeMetrics`, so ``snapshot()`` reports true per-item
    latency quantiles even though the work ran in other processes.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        metrics: Optional[RuntimeMetrics] = None,
        chunk_factor: int = 4,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        super().__init__(metrics, retry=retry)
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if chunk_factor < 1:
            raise ConfigurationError(f"chunk_factor must be >= 1, got {chunk_factor}")
        self._workers = int(workers)
        self._chunk_factor = int(chunk_factor)
        self._pool = None

    @property
    def workers(self) -> int:
        return self._workers

    def _ensure_pool(self) -> "ProcessPoolExecutor":
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self._workers)
        return self._pool

    def map_ordered(
        self, fn: Callable, items: Iterable, stage: str = "map"
    ) -> List:
        items = list(items)
        if not items:
            return []
        self.metrics.record_submit(stage, len(items))
        chunksize = max(1, len(items) // (self._workers * self._chunk_factor))
        chunks = [items[i : i + chunksize] for i in range(0, len(items), chunksize)]
        runner = _ChunkRunner(fn, self.metrics.bucket_bounds)
        start = time.perf_counter()
        futures = [self._ensure_pool().submit(runner, chunk) for chunk in chunks]
        chunk_results = [
            self._collect_chunk(futures, index, runner, chunks[index], stage)
            for index in range(len(chunks))
        ]
        elapsed = time.perf_counter() - start
        results: List = []
        for chunk_items, hist_data in chunk_results:
            results.extend(chunk_items)
            self.metrics.merge_item_histogram(stage, Histogram.from_dict(hist_data))
        self.metrics.record_complete(stage, elapsed, n=len(items))
        return results

    def _collect_chunk(
        self,
        futures: List,
        index: int,
        runner: _ChunkRunner,
        chunk: Sequence,
        stage: str,
    ) -> Tuple[List, dict]:
        """One chunk's result, applying the retry/deadline policy.

        A transient failure (per ``retry.retry_on``) or a missed deadline
        resubmits the chunk — after a jittered exponential backoff — up
        to ``retry.max_attempts`` total tries.  Per-packet estimation is
        pure, so a duplicate execution caused by abandoning a hung
        attempt is harmless.  A broken pool is rebuilt before the
        resubmit.  Non-transient exceptions propagate with their original
        type, exactly like the serial path; deadline exhaustion raises
        :class:`~repro.errors.DeadlineExceededError`.
        """
        from concurrent.futures import TimeoutError as FuturesTimeout

        policy = self.retry
        timeout = policy.timeout_s or None
        attempt = 1
        while True:
            try:
                return futures[index].result(timeout=timeout)
            except ReproError as exc:
                self.metrics.record_error(stage, len(chunk), kind=type(exc).__name__)
                raise
            except FuturesTimeout:
                self.metrics.record_timeout(stage)
                if attempt >= policy.max_attempts:
                    self.metrics.record_error(
                        stage, len(chunk), kind="DeadlineExceededError"
                    )
                    raise DeadlineExceededError(
                        f"stage {stage!r}: chunk of {len(chunk)} items missed "
                        f"its {policy.timeout_s:.3g}s deadline "
                        f"{policy.max_attempts} time(s)"
                    ) from None
            except Exception as exc:
                if attempt >= policy.max_attempts or not policy.is_transient(exc):
                    self.metrics.record_error(
                        stage, len(chunk), kind=type(exc).__name__
                    )
                    raise
            self.metrics.record_retry(stage)
            time.sleep(policy.delay_for(attempt, self._backoff_rng))
            attempt += 1
            if self._pool is not None and getattr(self._pool, "_broken", False):
                self.close()
            futures[index] = self._ensure_pool().submit(runner, chunk)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


def create_executor(
    workers: int = 1,
    metrics: Optional[RuntimeMetrics] = None,
    retry: Optional[RetryPolicy] = None,
) -> Executor:
    """The right executor for a ``--workers N`` knob.

    ``workers <= 1`` returns a :class:`SerialExecutor` (exact current
    behaviour, no subprocess machinery); anything larger returns a
    :class:`ParallelExecutor`.  ``retry`` threads a
    :class:`~repro.faults.retry.RetryPolicy` through either.
    """
    if workers <= 1:
        return SerialExecutor(metrics, retry=retry)
    return ParallelExecutor(workers=workers, metrics=metrics, retry=retry)
