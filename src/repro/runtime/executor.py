"""Executors: deterministic fan-out of per-packet estimation.

The pipeline expresses its hot loop as ``executor.map_ordered(fn, items)``
and lets the executor decide *where* the work runs:

* :class:`SerialExecutor` runs items inline, in order — numerically
  byte-identical to the historical ``for`` loop, and the default
  everywhere so existing behaviour is unchanged.
* :class:`ParallelExecutor` fans items across a
  :class:`concurrent.futures.ProcessPoolExecutor`.  ``map`` preserves
  submission order, so results come back deterministically regardless of
  which worker finished first; per-packet MUSIC is pure (no RNG), so the
  values themselves match the serial path within floating-point identity.

Both record submit/complete/error events on a
:class:`~repro.runtime.metrics.RuntimeMetrics`.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Iterable, List, Optional

from repro.errors import ConfigurationError
from repro.runtime.metrics import RuntimeMetrics


class Executor:
    """Common interface: an ordered map over picklable task items.

    Subclasses implement :meth:`map_ordered`; everything else (metrics,
    context management) is shared.  Task functions must be module-level
    (picklable) when a parallel executor may run them.
    """

    def __init__(self, metrics: Optional[RuntimeMetrics] = None) -> None:
        self.metrics = metrics or RuntimeMetrics()

    @property
    def workers(self) -> int:
        """Worker processes this executor fans across (1 = inline)."""
        return 1

    def map_ordered(
        self, fn: Callable, items: Iterable, stage: str = "map"
    ) -> List:
        """Apply ``fn`` to every item, returning results in item order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources; the executor is reusable until then."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(Executor):
    """Run every item inline, exactly like the historical loop."""

    def map_ordered(
        self, fn: Callable, items: Iterable, stage: str = "map"
    ) -> List:
        items = list(items)
        self.metrics.record_submit(stage, len(items))
        results: List = []
        for item in items:
            start = time.perf_counter()
            try:
                results.append(fn(item))
            except Exception:
                self.metrics.record_error(stage)
                raise
            self.metrics.record_complete(stage, time.perf_counter() - start)
        return results


class ParallelExecutor(Executor):
    """Fan items across a lazily created process pool.

    Parameters
    ----------
    workers:
        Worker process count; defaults to the machine's CPU count.
    metrics:
        Shared metrics sink (a fresh one is created if omitted).
    chunk_factor:
        Items are shipped to workers in chunks of roughly
        ``len(items) / (workers * chunk_factor)`` to amortize pickling
        without starving the pool of parallel slack.

    Notes
    -----
    The pool is created on first use and survives across calls, so
    repeated ``locate`` calls pay the worker start-up cost once.  Call
    :meth:`close` (or use the executor as a context manager) to reap the
    workers.  Exceptions raised by a task propagate to the caller with
    their original type, matching the serial path.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        metrics: Optional[RuntimeMetrics] = None,
        chunk_factor: int = 4,
    ) -> None:
        super().__init__(metrics)
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if chunk_factor < 1:
            raise ConfigurationError(f"chunk_factor must be >= 1, got {chunk_factor}")
        self._workers = int(workers)
        self._chunk_factor = int(chunk_factor)
        self._pool = None

    @property
    def workers(self) -> int:
        return self._workers

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self._workers)
        return self._pool

    def map_ordered(
        self, fn: Callable, items: Iterable, stage: str = "map"
    ) -> List:
        items = list(items)
        if not items:
            return []
        self.metrics.record_submit(stage, len(items))
        chunksize = max(1, len(items) // (self._workers * self._chunk_factor))
        start = time.perf_counter()
        try:
            results = list(self._ensure_pool().map(fn, items, chunksize=chunksize))
        except Exception:
            self.metrics.record_error(stage, len(items))
            raise
        self.metrics.record_complete(
            stage, time.perf_counter() - start, n=len(items)
        )
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


def create_executor(
    workers: int = 1, metrics: Optional[RuntimeMetrics] = None
) -> Executor:
    """The right executor for a ``--workers N`` knob.

    ``workers <= 1`` returns a :class:`SerialExecutor` (exact current
    behaviour, no subprocess machinery); anything larger returns a
    :class:`ParallelExecutor`.
    """
    if workers <= 1:
        return SerialExecutor(metrics)
    return ParallelExecutor(workers=workers, metrics=metrics)
