"""Memoized steering grids for the MUSIC spectrum evaluation.

Every per-packet spectrum needs the same three grid matrices — the AoA
grid, the ToF grid, and the per-grid-point antenna/subcarrier phase
vectors Phi(theta) and Omega(tau) of Eqs. 1/6 — yet the estimator used
to rebuild them for each packet.  They depend only on (array geometry,
OFDM grid, MUSIC grid configuration), so across a 40-packet burst (or a
million-user deployment with a handful of AP hardware models) the same
few matrices recur endlessly.

:class:`SteeringCache` memoizes them.  The cache is process-local: each
worker process of a :class:`~repro.runtime.executor.ParallelExecutor`
builds its own on first use and then serves every subsequent packet from
memory.  Values are computed by the exact same :class:`SteeringModel`
methods the uncached path called, so cached and uncached spectra are
bit-identical.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.music import MusicConfig
from repro.core.steering import SteeringModel
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SteeringGrids:
    """The precomputed grid matrices for one (model, MUSIC config) pair.

    Attributes
    ----------
    aoa_grid_deg:
        1-D AoA search grid (A,).
    tof_grid_s:
        1-D ToF search grid (T,).
    phi:
        Antenna steering vectors over the AoA grid, shape (A, M).
    omega:
        Subcarrier steering vectors over the ToF grid, shape (T, N).
    """

    aoa_grid_deg: np.ndarray
    tof_grid_s: np.ndarray
    phi: np.ndarray
    omega: np.ndarray


def _build_grids(model: SteeringModel, music: MusicConfig) -> SteeringGrids:
    aoa_grid = music.aoa_grid()
    tof_grid = music.tof_grid()
    phi = model.antenna_vector(aoa_grid)
    omega = model.subcarrier_vector(tof_grid)
    # Entries are shared across packets and workers' closures; freeze them
    # so an accidental in-place edit cannot corrupt later spectra.
    for arr in (aoa_grid, tof_grid, phi, omega):
        arr.setflags(write=False)
    return SteeringGrids(
        aoa_grid_deg=aoa_grid, tof_grid_s=tof_grid, phi=phi, omega=omega
    )


class SteeringCache:
    """LRU-bounded memoization of :class:`SteeringGrids`.

    Keys are ``(SteeringModel, aoa grid spec, tof grid spec)`` — all
    hashable value objects, so two estimators with identical physics
    share one entry regardless of identity.
    """

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ConfigurationError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, SteeringGrids]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    def grids_for(self, model: SteeringModel, music: MusicConfig) -> SteeringGrids:
        """The (possibly cached) steering grids for a model/config pair."""
        key = (model, music.aoa_grid_deg, music.tof_grid_s)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._hits += 1
                self._entries.move_to_end(key)
                return cached
            self._misses += 1
        # Build outside the lock: construction is pure and idempotent, so
        # a racing duplicate build costs time, never correctness.
        grids = _build_grids(model, music)
        with self._lock:
            self._entries[key] = grids
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
        return grids

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Hit/miss/eviction counters, entry count, and derived hit rate.

        ``hit_rate`` is hits / (hits + misses), 0.0 before any lookup —
        the gauge :func:`repro.obs.prometheus.render_prometheus` exposes
        as ``repro_steering_cache_hit_rate``.
        """
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "entries": len(self._entries),
                "hit_rate": self._hits / lookups if lookups else 0.0,
            }

    def clear(self) -> None:
        """Drop every entry and zero the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_DEFAULT_CACHE = SteeringCache()


def default_steering_cache() -> SteeringCache:
    """The process-wide cache the estimators use.

    Module-level rather than per-estimator so (a) forked workers reuse
    one cache across every task they run, and (b) estimators stay
    picklable (the cache holds a lock, which is not).
    """
    return _DEFAULT_CACHE
