"""Steering vectors for SpotFi's joint (AoA, ToF) sensor array.

Implements the paper's Eqs. 1, 2, 6 and 7:

* ``Phi(theta) = exp(-j 2 pi d sin(theta) f / c)`` — per-antenna phase
  ratio induced by the AoA (Eq. 1);
* ``Omega(tau) = exp(-j 2 pi f_delta tau)`` — per-subcarrier phase ratio
  induced by the ToF (Eq. 6);
* ``a(theta, tau)`` — the joint steering vector over the M x N sensor
  array, antenna-major so entry (m, n) sits at index ``m * N + n``
  (Eq. 7 / Fig. 4 stacking order).

The joint vector factorizes as a Kronecker product
``a(theta, tau) = phi_vec(theta) (x) omega_vec(tau)``; the MUSIC spectrum
evaluation exploits that factorization to evaluate whole (theta, tau)
grids with three small matrix products instead of per-point loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike

from repro.constants import SPEED_OF_LIGHT
from repro.core.indexcache import index_vector
from repro.errors import ConfigurationError
from repro.wifi.ofdm import OfdmGrid


@dataclass(frozen=True)
class SteeringModel:
    """Parameters of the joint steering-vector model.

    Attributes
    ----------
    num_antennas:
        M — antennas spanned by the steering vector (2 for the smoothed
        subarray, 3 for the raw Intel 5300 array).
    num_subcarriers:
        N — subcarriers spanned (15 for the smoothed subarray, 30 raw).
    antenna_spacing_m:
        ULA element spacing d.
    carrier_freq_hz:
        Signal frequency f of Eq. 1.
    subcarrier_spacing_hz:
        f_delta of Eq. 6 (spacing of consecutive *reported* entries).
    """

    num_antennas: int
    num_subcarriers: int
    antenna_spacing_m: float
    carrier_freq_hz: float
    subcarrier_spacing_hz: float

    def __post_init__(self) -> None:
        if self.num_antennas < 1 or self.num_subcarriers < 1:
            raise ConfigurationError("need >= 1 antenna and >= 1 subcarrier")
        if min(self.antenna_spacing_m, self.carrier_freq_hz, self.subcarrier_spacing_hz) <= 0:
            raise ConfigurationError(
                "spacing and frequencies must be positive: "
                f"d={self.antenna_spacing_m}, f={self.carrier_freq_hz}, "
                f"f_delta={self.subcarrier_spacing_hz}"
            )

    @property
    def num_sensors(self) -> int:
        """Size M x N of the joint sensor array."""
        return self.num_antennas * self.num_subcarriers

    @property
    def tof_ambiguity_s(self) -> float:
        """Omega's period: ToF is identifiable only in [0, 1/f_delta)."""
        return 1.0 / self.subcarrier_spacing_hz

    # ------------------------------------------------------------------
    # Eq. 1 / Eq. 6 scalars
    # ------------------------------------------------------------------
    def phi(self, aoa_deg: "ArrayLike") -> np.ndarray:
        """Eq. 1: Phi(theta), vectorized over ``aoa_deg``."""
        theta = np.deg2rad(np.asarray(aoa_deg, dtype=float))
        return np.exp(
            -2j
            * np.pi
            * self.antenna_spacing_m
            * np.sin(theta)
            * self.carrier_freq_hz
            / SPEED_OF_LIGHT
        )

    def omega(self, tof_s: "ArrayLike") -> np.ndarray:
        """Eq. 6: Omega(tau), vectorized over ``tof_s``."""
        tau = np.asarray(tof_s, dtype=float)
        return np.exp(-2j * np.pi * self.subcarrier_spacing_hz * tau)

    # ------------------------------------------------------------------
    # Eq. 2 / Eq. 7 vectors
    # ------------------------------------------------------------------
    def antenna_vector(self, aoa_deg: "ArrayLike") -> np.ndarray:
        """Eq. 2: ``[1, Phi, ..., Phi^(M-1)]``; (..., M) for array input."""
        phi = self.phi(aoa_deg)
        powers = index_vector(self.num_antennas)
        return np.power(np.asarray(phi)[..., None], powers)

    def subcarrier_vector(self, tof_s: "ArrayLike") -> np.ndarray:
        """``[1, Omega, ..., Omega^(N-1)]``; (..., N) for array input."""
        omega = self.omega(tof_s)
        powers = index_vector(self.num_subcarriers)
        return np.power(np.asarray(omega)[..., None], powers)

    def steering_vector(self, aoa_deg: float, tof_s: float) -> np.ndarray:
        """Eq. 7: the joint (M*N,) steering vector, antenna-major."""
        return np.kron(
            self.antenna_vector(float(aoa_deg)),
            self.subcarrier_vector(float(tof_s)),
        )

    def steering_matrix(self, aoas_deg: "ArrayLike", tofs_s: "ArrayLike") -> np.ndarray:
        """Steering matrix A = [a(theta_1, tau_1) ... a(theta_L, tau_L)].

        ``aoas_deg`` and ``tofs_s`` are equal-length sequences; the result
        has shape (M*N, L).
        """
        aoas = np.atleast_1d(np.asarray(aoas_deg, dtype=float))
        tofs = np.atleast_1d(np.asarray(tofs_s, dtype=float))
        if aoas.shape != tofs.shape:
            raise ConfigurationError(
                f"AoA/ToF lists must have equal length: {aoas.shape} vs {tofs.shape}"
            )
        columns = [self.steering_vector(a, t) for a, t in zip(aoas, tofs)]
        return np.stack(columns, axis=1)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def for_grid(
        grid: OfdmGrid,
        num_antennas: int,
        antenna_spacing_m: float,
        num_subcarriers: int = 0,
    ) -> "SteeringModel":
        """Build a model matching an :class:`OfdmGrid`.

        ``num_subcarriers`` defaults to the grid's full count; pass the
        subarray size when modeling the smoothed matrix.
        """
        n = num_subcarriers if num_subcarriers > 0 else grid.num_subcarriers
        return SteeringModel(
            num_antennas=num_antennas,
            num_subcarriers=n,
            antenna_spacing_m=antenna_spacing_m,
            carrier_freq_hz=grid.carrier_freq_hz,
            subcarrier_spacing_hz=grid.subcarrier_spacing_hz,
        )

    def subarray_model(self, num_antennas: int, num_subcarriers: int) -> "SteeringModel":
        """The same physics on a smaller (sub)array — used after smoothing."""
        if num_antennas > self.num_antennas or num_subcarriers > self.num_subcarriers:
            raise ConfigurationError(
                "subarray cannot exceed the parent array: "
                f"({num_antennas}, {num_subcarriers}) vs "
                f"({self.num_antennas}, {self.num_subcarriers})"
            )
        return SteeringModel(
            num_antennas=num_antennas,
            num_subcarriers=num_subcarriers,
            antenna_spacing_m=self.antenna_spacing_m,
            carrier_freq_hz=self.carrier_freq_hz,
            subcarrier_spacing_hz=self.subcarrier_spacing_hz,
        )
