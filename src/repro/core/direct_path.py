"""Direct-path selection (paper Alg. 2 lines 9-10).

SpotFi declares the cluster with the highest Eq. 8 likelihood as the direct
path, and carries both its AoA and the likelihood value forward to the
localization stage (which uses the likelihood as the AP's weight in Eq. 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.clustering import PathCluster, cluster_estimates
from repro.core.estimator import PathEstimate
from repro.core.likelihood import DEFAULT_WEIGHTS, LikelihoodWeights, path_likelihoods
from repro.errors import ClusteringError


@dataclass(frozen=True)
class DirectPathEstimate:
    """One AP's direct-path verdict.

    Attributes
    ----------
    aoa_deg:
        Direct-path AoA estimate (the selected cluster's mean).
    tof_s:
        Relative ToF of the selected cluster (diagnostic only).
    likelihood:
        Eq. 8 likelihood of the selected cluster — the l_i of Eq. 9.
    cluster:
        The winning cluster.
    all_clusters:
        Every cluster considered, with :attr:`all_likelihoods` aligned.
    all_likelihoods:
        Likelihood of each cluster in :attr:`all_clusters`.
    """

    aoa_deg: float
    tof_s: float
    likelihood: float
    cluster: PathCluster
    all_clusters: tuple = ()
    all_likelihoods: tuple = ()


def select_direct_path(
    clusters: Sequence[PathCluster],
    weights: LikelihoodWeights = DEFAULT_WEIGHTS,
) -> DirectPathEstimate:
    """Pick the highest-likelihood cluster as the direct path."""
    cluster_list = list(clusters)
    likelihoods = path_likelihoods(cluster_list, weights)
    best = int(np.argmax(likelihoods))
    winner = cluster_list[best]
    return DirectPathEstimate(
        aoa_deg=winner.mean_aoa_deg,
        tof_s=winner.mean_tof_s,
        likelihood=float(likelihoods[best]),
        cluster=winner,
        all_clusters=tuple(cluster_list),
        all_likelihoods=tuple(likelihoods),
    )


def direct_path_from_estimates(
    estimates: Sequence[PathEstimate],
    num_clusters: int = 5,
    weights: LikelihoodWeights = DEFAULT_WEIGHTS,
    method: str = "gmm",
    rng: Optional[np.random.Generator] = None,
    min_cluster_size: int = 1,
) -> DirectPathEstimate:
    """Cluster raw per-packet estimates and select the direct path.

    Convenience wrapper fusing Sec. 3.2.3's two steps; raises
    :class:`ClusteringError` when there are no estimates.
    """
    clusters = cluster_estimates(
        estimates,
        num_clusters=num_clusters,
        method=method,
        rng=rng,
        min_cluster_size=min_cluster_size,
    )
    return select_direct_path(clusters, weights)
