"""Cached, read-only index/grid arrays for the per-packet hot path.

``np.arange``/``np.eye`` calls in sanitize, steering, and grid-search
code rebuild the same small arrays on every packet — flagged by flow
rule REP011 because the shapes depend only on the (fixed) array
geometry and grid config, never on the data.  These helpers memoize
them once per distinct argument tuple.

Returned arrays are the cached instances with ``writeable=False``: a
caller that tries to mutate one raises immediately instead of silently
poisoning every later packet.  Callers needing a scratch copy must
``.copy()`` explicitly.

The functions here are declared cache boundaries in the flow seam
manifest (:data:`repro.analysis.flow.seams.DEFAULT_MANIFEST`): the
allocation inside them happens only on cache miss, so REP011 does not
flag it.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

import numpy as np


@lru_cache(maxsize=128)
def index_vector(n: int, dtype: Optional[str] = None) -> np.ndarray:
    """``np.arange(n)`` (optionally typed), cached and read-only."""
    out = np.arange(n) if dtype is None else np.arange(n, dtype=dtype)
    out.setflags(write=False)
    return out


@lru_cache(maxsize=64)
def identity(n: int) -> np.ndarray:
    """``np.eye(n)``, cached and read-only."""
    out = np.eye(n)
    out.setflags(write=False)
    return out


@lru_cache(maxsize=128)
def grid_range(start: float, stop: float, step: float) -> np.ndarray:
    """``np.arange(start, stop, step)``, cached and read-only."""
    out = np.arange(start, stop, step)
    out.setflags(write=False)
    return out
