"""ToF sanitization — paper Algorithm 1 (Sec. 3.2.2).

The sampling time offset (STO) between the unsynchronized target and AP
adds the *same* delay to every path, which appears in the CSI phase as a
term linear in subcarrier index and identical across antennas (all receive
chains share one sampling clock).  Because the STO drifts packet-to-packet
(SFO, detection delay), raw ToF estimates have large spurious variance.

Algorithm 1 removes it: fit a single straight line (common slope and
intercept) to the unwrapped phase over *all* antennas and subcarriers,
interpret the slope as ``-2 pi f_delta tau_sto``, and subtract the slope
term.  The result is invariant to the packet's STO (two packets differing
only in STO sanitize to identical phases), which our property tests verify.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.analysis.contracts import contract
from repro.core.indexcache import index_vector
from repro.wifi.csi import CsiFrame, validate_csi_matrix


@contract(psi="(M,N)")
def fit_common_slope(psi: np.ndarray) -> Tuple[float, float]:
    """Least-squares common (slope, intercept) of phase vs subcarrier index.

    Solves Algorithm 1 line 1: the single (rho, beta) minimizing
    ``sum_{m,n} (psi(m,n) + 2 pi f_delta (n-1) rho + beta)^2`` — i.e. an
    ordinary least-squares line ``psi ~ slope * (n-1) + intercept`` pooled
    over antennas.  Returns the slope in radians per subcarrier step and
    the intercept in radians.
    """
    psi = np.asarray(psi, dtype=float)
    if psi.ndim != 2:
        raise ValueError(f"phase must be 2-D (antennas, subcarriers), got {psi.shape}")
    num_antennas, num_subcarriers = psi.shape
    n = index_vector(num_subcarriers, dtype="float64")
    # Closed-form OLS pooled over antennas: identical n-design for each row.
    n_mean = n.mean()
    psi_mean = psi.mean()
    n_var = float(np.sum((n - n_mean) ** 2)) * num_antennas
    cov = float(np.sum((n - n_mean)[None, :] * (psi - psi_mean)))
    slope = cov / n_var
    intercept = psi_mean - slope * n_mean
    return float(slope), float(intercept)


@contract(csi="(M,N)", subcarrier_spacing_hz="float", returns="float")
def estimate_sto(csi: np.ndarray, subcarrier_spacing_hz: float) -> float:
    """Estimated STO (s) from a CSI matrix's common phase slope.

    This is the ``tau_hat_{s,i}`` of Algorithm 1: the common linear phase
    slope divided by ``-2 pi f_delta``.  Note it absorbs the (unknowable)
    bulk ToF of the channel as well — which is exactly why the paper never
    uses sanitized ToFs for ranging.
    """
    psi = np.unwrap(np.angle(validate_csi_matrix(csi)), axis=1)
    slope, _ = fit_common_slope(psi)
    return -slope / (2.0 * np.pi * subcarrier_spacing_hz)


@contract(psi="(M,N)", returns="(M,N) float64")
def sanitize_phase(psi: np.ndarray) -> np.ndarray:
    """Algorithm 1 on an unwrapped phase matrix: remove the common slope.

    Only the slope term is subtracted (the paper's line 2 subtracts the
    STO-induced phase, not the intercept), so per-antenna phase offsets —
    which carry the AoA information — are preserved.
    """
    psi = np.asarray(psi, dtype=float)
    slope, _ = fit_common_slope(psi)
    n = index_vector(psi.shape[1], dtype="float64")
    return psi - slope * n[None, :]


@contract(csi="(M,N)", returns="(M,N) complex128")
def sanitize_csi(csi: np.ndarray) -> np.ndarray:
    """Apply Algorithm 1 to a complex CSI matrix.

    Magnitudes are preserved; the phase is replaced by the sanitized
    (common-slope-removed) unwrapped phase.  The returned CSI is what
    SpotFi's super-resolution step consumes (Alg. 2 line 3 precedes
    line 4).
    """
    csi = validate_csi_matrix(csi)
    psi = np.unwrap(np.angle(csi), axis=1)
    psi_hat = sanitize_phase(psi)
    return np.abs(csi) * np.exp(1j * psi_hat)


def sanitize_frame(frame: CsiFrame) -> CsiFrame:
    """Sanitized copy of a :class:`CsiFrame` (metadata preserved)."""
    return CsiFrame(
        csi=sanitize_csi(frame.csi),
        rssi_dbm=frame.rssi_dbm,
        timestamp_s=frame.timestamp_s,
        source=frame.source,
    )


@contract(csi_frames="(P,M,N)", returns="float")
def phase_dispersion_across_packets(csi_frames: np.ndarray) -> float:
    """RMS inter-packet deviation of the subcarrier phase *slope* (radians).

    Diagnostic used by the Fig. 5(a)/(b) benchmark: large before
    sanitization (each packet's STO tilts the phase differently), near the
    noise floor after.  The metric works on wrapped adjacent-subcarrier
    phase steps, so it is immune to the global CFO rotation (which cancels
    in differences) and to unwrap branch flips at deep fading nulls; the
    per-step circular mean over packets is the reference.
    """
    frames = np.asarray(csi_frames)
    if frames.ndim != 3:
        raise ValueError(f"expected (packets, antennas, subcarriers), got {frames.shape}")
    steps = np.angle(frames[:, :, 1:] * np.conj(frames[:, :, :-1]))  # (P, M, N-1)
    reference = np.angle(np.mean(np.exp(1j * steps), axis=0, keepdims=True))
    deviation = np.angle(np.exp(1j * (steps - reference)))
    return float(np.sqrt(np.mean(deviation**2)))
