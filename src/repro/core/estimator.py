"""Per-packet joint (AoA, ToF) estimation — Alg. 2 lines 3-7 for one packet.

:class:`JointEstimator` chains sanitization (Algorithm 1), CSI smoothing
(Fig. 4), MUSIC (lines 5-6), and peak extraction (line 7), producing the
:class:`PathEstimate` points that the clustering stage consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, List, Optional, Tuple, Union

import numpy as np

from repro.core.music import (
    MusicConfig,
    covariance,
    music_spectrum,
    music_spectrum_from_signal,
    subspaces,
)
from repro.core.peaks import SpectrumPeak, find_peaks_2d, merge_close_peaks
from repro.core.sanitize import sanitize_csi
from repro.core.smoothing import SmoothingConfig, smooth_csi, smooth_csi_batch
from repro.core.steering import SteeringModel
from repro.errors import EstimationError
from repro.analysis.contracts import contract
from repro.runtime.cache import default_steering_cache
from repro.wifi.arrays import UniformLinearArray
from repro.wifi.csi import CsiTrace, validate_csi_matrix
from repro.wifi.ofdm import OfdmGrid

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.runtime.executor import Executor


@dataclass(frozen=True)
class PathEstimate:
    """One estimated multipath component from one packet.

    Attributes
    ----------
    aoa_deg:
        Estimated angle of arrival (deg from array normal).
    tof_s:
        Estimated *relative* time of flight (s); STO-sanitized, so only
        differences between paths are meaningful.
    power:
        MUSIC pseudospectrum height at the peak.
    packet_index:
        Which packet of the trace this estimate came from.
    """

    aoa_deg: float
    tof_s: float
    power: float
    packet_index: int = 0


@dataclass
class JointEstimator:
    """SpotFi's super-resolution joint (AoA, ToF) estimator.

    Attributes
    ----------
    model:
        Steering model of the *full* array (e.g. 3 antennas x 30
        subcarriers for the Intel 5300).
    smoothing:
        Subarray configuration for the smoothed CSI matrix.
    music:
        MUSIC subspace and grid configuration.
    sanitize:
        Apply Algorithm 1 before smoothing (the paper always does; the
        flag exists for the ablation benchmark).
    max_peaks:
        Maximum multipath components returned per packet.
    min_rel_height_db:
        Peak acceptance threshold below the strongest peak.
    """

    model: SteeringModel
    smoothing: SmoothingConfig = field(default_factory=SmoothingConfig)
    music: MusicConfig = field(default_factory=MusicConfig)
    sanitize: bool = True
    max_peaks: int = 6
    min_rel_height_db: float = 20.0

    def __post_init__(self) -> None:
        # The steering model used against the smoothed matrix spans the
        # subarray, not the full array.
        self._sub_model = self.model.subarray_model(
            self.smoothing.sub_antennas, self.smoothing.sub_subcarriers
        )

    @property
    def subarray_model(self) -> SteeringModel:
        """Steering model of the smoothed subarray MUSIC runs on."""
        return self._sub_model

    # ------------------------------------------------------------------
    # Single packet
    # ------------------------------------------------------------------
    def estimate_packet(
        self, csi: np.ndarray, packet_index: int = 0
    ) -> List[PathEstimate]:
        """Estimate the (AoA, ToF) of every resolvable path in one packet.

        Returns estimates sorted by descending spectrum power.  Raises
        :class:`EstimationError` only for structurally invalid input; a
        packet whose spectrum has no acceptable peaks yields an empty list.
        """
        spectrum, aoa_grid, tof_grid = self.spectrum(csi)
        return self.stage_peaks(spectrum, aoa_grid, tof_grid, packet_index)

    def spectrum(
        self, csi: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The (spectrum, aoa_grid, tof_grid) for one packet's CSI.

        Exposed separately so diagnostics/benchmarks can inspect the full
        pseudospectrum, not just its peaks.
        """
        return self.stage_music(self.stage_smooth(self.stage_sanitize(csi)))

    # ------------------------------------------------------------------
    # Pipeline stages (Alg. 2 lines 3-7, individually addressable)
    # ------------------------------------------------------------------
    # ``estimate_packet`` is their composition; the traced pipeline path
    # (repro.core.pipeline with a real repro.obs tracer) drives them one
    # at a time so each stage gets its own span.

    @contract(csi="(M,N)", returns="(M,N) complex128")
    def stage_sanitize(self, csi: np.ndarray) -> np.ndarray:
        """Validate one packet's CSI and apply Algorithm 1 (if enabled)."""
        csi = validate_csi_matrix(csi)
        if csi.shape != (self.model.num_antennas, self.model.num_subcarriers):
            raise EstimationError(
                f"CSI shape {csi.shape} does not match the steering model "
                f"({self.model.num_antennas}, {self.model.num_subcarriers})"
            )
        if self.sanitize:
            csi = sanitize_csi(csi)
        return csi

    @contract(csi="(M,N)", returns="(S,C) complex128")
    def stage_smooth(self, csi: np.ndarray) -> np.ndarray:
        """Fig. 4 smoothing of sanitized CSI into the subarray matrix."""
        return smooth_csi(csi, self.smoothing)

    def stage_music(
        self, x: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """MUSIC over a smoothed matrix -> (spectrum, aoa_grid, tof_grid)."""
        e_signal, e_noise, _ = subspaces(
            covariance(x), self.music, num_snapshots=x.shape[1]
        )
        grids = default_steering_cache().grids_for(self._sub_model, self.music)
        if e_signal.shape[1] <= e_noise.shape[1]:
            spectrum = music_spectrum_from_signal(
                e_signal,
                self._sub_model,
                grids.aoa_grid_deg,
                grids.tof_grid_s,
                phi=grids.phi,
                omega=grids.omega,
            )
        else:
            spectrum = music_spectrum(
                e_noise,
                self._sub_model,
                grids.aoa_grid_deg,
                grids.tof_grid_s,
                phi=grids.phi,
                omega=grids.omega,
            )
        return spectrum, grids.aoa_grid_deg, grids.tof_grid_s

    def stage_peaks(
        self,
        spectrum: np.ndarray,
        aoa_grid: np.ndarray,
        tof_grid: np.ndarray,
        packet_index: int = 0,
    ) -> List[PathEstimate]:
        """Peak extraction (line 7): spectrum -> sorted path estimates."""
        peaks = find_peaks_2d(
            spectrum,
            aoa_grid,
            tof_grid,
            max_peaks=self.max_peaks * 2,
            min_rel_height_db=self.min_rel_height_db,
        )
        peaks = merge_close_peaks(peaks)[: self.max_peaks]
        return [
            PathEstimate(
                aoa_deg=p.aoa_deg,
                tof_s=p.tof_s,
                power=p.power,
                packet_index=packet_index,
            )
            for p in peaks
        ]

    # ------------------------------------------------------------------
    # Traces
    # ------------------------------------------------------------------
    def estimate_trace(
        self, trace: CsiTrace, executor: Optional["Executor"] = None
    ) -> List[PathEstimate]:
        """Estimates pooled over every packet of a trace (Alg. 2 lines 2-8).

        ``executor`` (a :class:`repro.runtime.executor.Executor`) fans the
        per-packet MUSIC calls across workers with deterministic result
        ordering; None keeps the historical inline loop.  Per-packet
        estimation is pure, so every executor returns identical values.
        """
        if executor is None:
            estimates: List[PathEstimate] = []
            for index, frame in enumerate(trace):
                estimates.extend(self.estimate_packet(frame.csi, packet_index=index))
            return estimates
        tasks = [(self, frame.csi, index) for index, frame in enumerate(trace)]
        # CSI is pickled once per task until the ROADMAP item 2 shared-memory
        # path lands; acceptable at trace sizes, tracked by BENCH_dist.json.
        per_packet = executor.map_ordered(  # repro: noqa REP013
            estimate_packet_task, tasks, stage="estimate"
        )
        return [estimate for packet in per_packet for estimate in packet]

    def estimate_burst(self, trace: CsiTrace) -> List[PathEstimate]:
        """One MUSIC pass over a whole burst (pooled-covariance variant).

        Instead of the paper's per-packet spectra + clustering, this
        concatenates every packet's smoothed matrix column-wise and runs
        MUSIC once on the pooled covariance.  Caveat (measured in
        ``bench_pooled.py``): Algorithm 1's per-packet slope fit leaves
        small noise-driven ToF offsets *between* packets, so pooling
        smears the ToF axis and per-packet estimation + clustering is
        actually more accurate — which is precisely why the paper
        aggregates after estimation, not before.  This method exists for
        that comparison and for callers whose CSI shares one sampling
        reference (e.g. synchronized captures).
        """
        if len(trace) == 0:
            raise EstimationError("cannot estimate an empty trace")
        frames = trace.csi_array()
        if frames.shape[1:] != (self.model.num_antennas, self.model.num_subcarriers):
            raise EstimationError(
                f"trace CSI shape {frames.shape[1:]} does not match the "
                f"steering model ({self.model.num_antennas}, "
                f"{self.model.num_subcarriers})"
            )
        if self.sanitize:
            frames = np.stack([sanitize_csi(f) for f in frames])
        x = smooth_csi_batch(frames, self.smoothing)
        e_signal, e_noise, _ = subspaces(
            covariance(x), self.music, num_snapshots=x.shape[1]
        )
        grids = default_steering_cache().grids_for(self._sub_model, self.music)
        aoa_grid, tof_grid = grids.aoa_grid_deg, grids.tof_grid_s
        if e_signal.shape[1] <= e_noise.shape[1]:
            spectrum = music_spectrum_from_signal(
                e_signal, self._sub_model, aoa_grid, tof_grid,
                phi=grids.phi, omega=grids.omega,
            )
        else:
            spectrum = music_spectrum(
                e_noise, self._sub_model, aoa_grid, tof_grid,
                phi=grids.phi, omega=grids.omega,
            )
        peaks = find_peaks_2d(
            spectrum,
            aoa_grid,
            tof_grid,
            max_peaks=self.max_peaks * 2,
            min_rel_height_db=self.min_rel_height_db,
        )
        peaks = merge_close_peaks(peaks)[: self.max_peaks]
        return [
            PathEstimate(aoa_deg=p.aoa_deg, tof_s=p.tof_s, power=p.power)
            for p in peaks
        ]

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def for_intel5300(
        array: UniformLinearArray,
        grid: OfdmGrid,
        smoothing: Optional[SmoothingConfig] = None,
        music: Optional[MusicConfig] = None,
        **kwargs: object,
    ) -> "JointEstimator":
        """Estimator for an Intel 5300-style (M x 30) CSI report."""
        model = SteeringModel.for_grid(
            grid,
            num_antennas=array.num_antennas,
            antenna_spacing_m=array.spacing_m,
        )
        return JointEstimator(
            model=model,
            smoothing=smoothing or SmoothingConfig(),
            music=music or MusicConfig(),
            **kwargs,
        )


def estimate_packet_task(
    task: Tuple["JointEstimator", np.ndarray, int]
) -> List[PathEstimate]:
    """Executor task: one packet through one estimator.

    ``task`` is ``(estimator, csi, packet_index)``.  Module-level so a
    :class:`~repro.runtime.executor.ParallelExecutor` can pickle it into
    worker processes; exceptions propagate (matching the inline loop).
    """
    estimator, csi, packet_index = task
    return estimator.estimate_packet(csi, packet_index=packet_index)


def estimate_packet_safe(
    task: Tuple["JointEstimator", np.ndarray, int]
) -> Union[List[PathEstimate], EstimationError]:
    """Executor task that converts per-packet estimation failures to values.

    Used by the batched multi-AP fan-out in
    :meth:`repro.core.pipeline.SpotFi.locate`, where one AP's
    :class:`EstimationError` must mark only that AP unusable instead of
    aborting the whole batch.  Structural errors (e.g.
    :class:`~repro.errors.CsiShapeError`) still raise, exactly like the
    serial path.
    """
    try:
        return estimate_packet_task(task)
    except EstimationError as exc:
        return exc


@contract(returns="(K,4) float64")
def estimates_as_array(estimates: List[PathEstimate]) -> np.ndarray:
    """(K, 4) float array of [aoa_deg, tof_s, power, packet_index] rows."""
    if not estimates:
        return np.zeros((0, 4), dtype=float)
    return np.array(
        [[e.aoa_deg, e.tof_s, e.power, e.packet_index] for e in estimates],
        dtype=float,
    )
