"""Localization — paper Eq. 9 and Alg. 2 line 12 (Sec. 3.3).

Finds the position minimizing the likelihood-weighted least-squares
deviation between observed and predicted (AoA, RSSI) at every AP:

    sum_i l_i [ w_rssi (p_pred_i - p_i)^2 + w_aoa (theta_pred_i - theta_i)^2 ]

with the log-distance path-loss parameters (P0, gamma) as nuisance
variables ("optimization variables as target's location and path loss model
parameters").

The paper convexifies Eq. 9 with sequential convex optimization; the
objective is a small 2-D problem once (P0, gamma) are profiled out — for a
fixed location the optimal (P0, gamma) is a weighted linear regression with
a closed form — so we solve it globally by a vectorized coarse grid search
followed by Nelder-Mead refinement.  This finds the same global minimizer
the paper's heuristic targets and is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from repro.channel.pathloss import LogDistancePathLoss
from repro.core.indexcache import grid_range
from repro.errors import LocalizationError
from repro.geom.points import Point, PointLike, angle_diff_deg, as_point
from repro.wifi.arrays import UniformLinearArray

#: Physical clamp for the fitted path-loss exponent.
_GAMMA_RANGE = (1.5, 6.0)


@dataclass(frozen=True)
class ApObservation:
    """What one AP contributes to localization.

    Attributes
    ----------
    array:
        The AP's antenna array (position + orientation).
    aoa_deg:
        Direct-path AoA the AP reported (deg from its array normal).
    rssi_dbm:
        Observed RSSI (median over the packets used).
    likelihood:
        Eq. 8 likelihood of the AP's direct-path estimate — the l_i
        weight.  Use 1.0 for unweighted ablations.
    """

    array: UniformLinearArray
    aoa_deg: float
    rssi_dbm: float
    likelihood: float = 1.0


@dataclass(frozen=True)
class LocalizationResult:
    """Solver output.

    Attributes
    ----------
    position:
        Estimated target location.
    objective:
        Final Eq. 9 value.
    path_loss:
        Path-loss model fitted at the solution.
    aoa_residuals_deg:
        Per-AP angle residuals at the solution.
    rssi_residuals_db:
        Per-AP RSSI residuals at the solution.
    iterations:
        Nelder-Mead refinement iterations (0 when refinement was
        disabled); surfaced as a trace/metrics attribute.
    """

    position: Point
    objective: float
    path_loss: LogDistancePathLoss
    aoa_residuals_deg: Tuple[float, ...] = ()
    rssi_residuals_db: Tuple[float, ...] = ()
    iterations: int = 0

    def error_to(self, truth: PointLike) -> float:
        """Euclidean distance (m) from the estimate to a ground-truth point."""
        return self.position.distance_to(as_point(truth))


@dataclass
class Localizer:
    """Eq. 9 solver over a rectangular search region.

    Attributes
    ----------
    bounds:
        (x0, y0, x1, y1) search rectangle (typically the floorplan bounds).
    grid_step_m:
        Coarse grid resolution of the global search.
    aoa_weight:
        w_aoa multiplying squared AoA residuals (deg^2).  The paper adds
        raw squared deviations; with AoA in degrees and RSSI in dB the two
        are naturally same-scale, and these weights let benchmarks rebalance.
    rssi_weight:
        w_rssi multiplying squared RSSI residuals (dB^2).
    aoa_residual_cap_deg:
        Per-AP AoA residuals are clipped to this value before squaring
        (0 disables).  One confidently-wrong AP (a reflection selected as
        the direct path) can otherwise contribute a 100+ degree residual
        that outweighs every correct AP; capping bounds its influence,
        realizing the paper's claim that inaccurate APs "will effectively
        not be considered due to SpotFi's robust localization algorithm"
        (Sec. 4.4.3).
    use_likelihood_weights:
        If False, every AP gets weight 1 (ablation of the paper's l_i).
    refine:
        Run Nelder-Mead refinement from the best grid cell.
    min_aps:
        Minimum observations required (2 AoAs already intersect;
        the default of 2 matches the paper's stress tests).
    """

    bounds: Tuple[float, float, float, float]
    grid_step_m: float = 0.25
    aoa_weight: float = 1.0
    rssi_weight: float = 1.0
    aoa_residual_cap_deg: float = 40.0
    use_likelihood_weights: bool = True
    refine: bool = True
    min_aps: int = 2

    def __post_init__(self) -> None:
        x0, y0, x1, y1 = self.bounds
        if x1 <= x0 or y1 <= y0:
            raise LocalizationError(f"empty search bounds {self.bounds}")
        if self.grid_step_m <= 0:
            raise LocalizationError(f"grid step must be > 0, got {self.grid_step_m}")

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def locate(self, observations: Sequence[ApObservation]) -> LocalizationResult:
        """Solve Eq. 9 for the given per-AP observations."""
        obs = [o for o in observations if np.isfinite(o.aoa_deg)]
        if len(obs) < self.min_aps:
            raise LocalizationError(
                f"need >= {self.min_aps} usable AP observations, got {len(obs)}"
            )
        weights = self._weights(obs)
        candidates = self._grid_points()
        values = self._objective_batch(candidates, obs, weights)
        best = int(np.argmin(values))
        start = candidates[best]
        iterations = 0
        if self.refine:
            result = optimize.minimize(
                lambda v: self._objective_batch(v[None, :], obs, weights)[0],
                start,
                method="Nelder-Mead",
                options={"xatol": 1e-3, "fatol": 1e-9, "maxiter": 400},
            )
            iterations = int(getattr(result, "nit", 0))
            solution = np.clip(
                result.x,
                [self.bounds[0], self.bounds[1]],
                [self.bounds[2], self.bounds[3]],
            )
            objective = float(
                self._objective_batch(solution[None, :], obs, weights)[0]
            )
        else:
            solution, objective = start, float(values[best])
        return self._build_result(
            Point(float(solution[0]), float(solution[1])),
            objective,
            obs,
            weights,
            iterations=iterations,
        )

    def locate_aoa_only(self, observations: Sequence[ApObservation]) -> LocalizationResult:
        """Eq. 9 restricted to the AoA terms (used by the ArrayTrack baseline)."""
        saved = self.rssi_weight
        self.rssi_weight = 0.0
        try:
            return self.locate(observations)
        finally:
            self.rssi_weight = saved

    # ------------------------------------------------------------------
    # Objective machinery
    # ------------------------------------------------------------------
    def _weights(self, obs: Sequence[ApObservation]) -> np.ndarray:
        if self.use_likelihood_weights:
            w = np.array([max(o.likelihood, 0.0) for o in obs], dtype=float)
            total = w.sum()
            if total <= 0:
                w = np.ones(len(obs))
            else:
                w = w * (len(obs) / total)  # normalize mean weight to 1
        else:
            w = np.ones(len(obs))
        return w

    def _grid_points(self) -> np.ndarray:
        x0, y0, x1, y1 = self.bounds
        xs = grid_range(x0 + self.grid_step_m / 2, x1, self.grid_step_m)
        ys = grid_range(y0 + self.grid_step_m / 2, y1, self.grid_step_m)
        gx, gy = np.meshgrid(xs, ys, indexing="ij")
        return np.stack([gx.ravel(), gy.ravel()], axis=1)

    def _geometry(
        self, candidates: np.ndarray, obs: Sequence[ApObservation]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per (candidate, AP): distance (m) and predicted AoA (deg)."""
        positions = np.array([o.array.position for o in obs], dtype=float)  # (R, 2)
        normals = np.array([o.array.normal_deg for o in obs], dtype=float)
        delta = candidates[:, None, :] - positions[None, :, :]  # (G, R, 2)
        dist = np.maximum(np.linalg.norm(delta, axis=2), 1e-3)  # (G, R)
        bearing = np.degrees(np.arctan2(delta[..., 1], delta[..., 0]))  # (G, R)
        pred_aoa = (bearing - normals[None, :] + 180.0) % 360.0 - 180.0
        return dist, pred_aoa

    def _objective_batch(
        self,
        candidates: np.ndarray,
        obs: Sequence[ApObservation],
        weights: np.ndarray,
    ) -> np.ndarray:
        """Vectorized Eq. 9 with (P0, gamma) profiled out per candidate."""
        dist, pred_aoa = self._geometry(candidates, obs)
        measured_aoa = np.array([o.aoa_deg for o in obs], dtype=float)
        measured_rssi = np.array([o.rssi_dbm for o in obs], dtype=float)

        aoa_diff = (pred_aoa - measured_aoa[None, :] + 180.0) % 360.0 - 180.0
        if self.aoa_residual_cap_deg > 0:
            aoa_diff = np.clip(
                aoa_diff, -self.aoa_residual_cap_deg, self.aoa_residual_cap_deg
            )
        aoa_cost = np.sum(weights[None, :] * aoa_diff**2, axis=1) * self.aoa_weight

        rssi_cost = np.zeros(len(candidates))
        rssi_ok = np.isfinite(measured_rssi)
        if self.rssi_weight > 0 and np.count_nonzero(rssi_ok) >= 2:
            w = weights[rssi_ok][None, :]
            p = measured_rssi[rssi_ok][None, :]
            x = -10.0 * np.log10(dist[:, rssi_ok])  # (G, R')
            p0, gamma = self._profile_path_loss(x, p, w)
            resid = p - (p0[:, None] + gamma[:, None] * x)
            rssi_cost = np.sum(w * resid**2, axis=1) * self.rssi_weight
        return aoa_cost + rssi_cost

    @staticmethod
    def _profile_path_loss(
        x: np.ndarray, p: np.ndarray, w: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Closed-form weighted LS for (P0, gamma) per candidate row.

        Model: p ~ P0 + gamma * x with x = -10 log10(d).  gamma is clamped
        to a physical range; P0 is re-solved after clamping.
        """
        sw = np.sum(w, axis=1)
        sx = np.sum(w * x, axis=1)
        sp = np.sum(w * p, axis=1)
        sxx = np.sum(w * x * x, axis=1)
        sxp = np.sum(w * x * p, axis=1)
        denom = sw * sxx - sx * sx
        gamma = np.where(np.abs(denom) > 1e-12, (sw * sxp - sx * sp) / np.where(denom == 0, 1, denom), 2.5)
        gamma = np.clip(gamma, *_GAMMA_RANGE)
        p0 = (sp - gamma * sx) / sw
        return p0, gamma

    def _build_result(
        self,
        position: Point,
        objective: float,
        obs: Sequence[ApObservation],
        weights: np.ndarray,
        iterations: int = 0,
    ) -> LocalizationResult:
        candidates = np.array([[position.x, position.y]])
        dist, pred_aoa = self._geometry(candidates, obs)
        measured_aoa = np.array([o.aoa_deg for o in obs])
        measured_rssi = np.array([o.rssi_dbm for o in obs])
        aoa_resid = tuple(
            float(angle_diff_deg(pred_aoa[0, i], measured_aoa[i])) for i in range(len(obs))
        )
        rssi_ok = np.isfinite(measured_rssi)
        if np.count_nonzero(rssi_ok) >= 2:
            x = -10.0 * np.log10(dist[:, rssi_ok])
            p0, gamma = self._profile_path_loss(
                x, measured_rssi[rssi_ok][None, :], weights[rssi_ok][None, :]
            )
            model = LogDistancePathLoss(p0_dbm=float(p0[0]), exponent=float(gamma[0]))
            pred = model.rssi_dbm(dist[0])
            rssi_resid = tuple(
                float(measured_rssi[i] - pred[i]) if rssi_ok[i] else float("nan")
                for i in range(len(obs))
            )
        else:
            model = LogDistancePathLoss()
            rssi_resid = tuple(float("nan") for _ in obs)
        return LocalizationResult(
            position=position,
            objective=objective,
            path_loss=model,
            aoa_residuals_deg=aoa_resid,
            rssi_residuals_db=rssi_resid,
            iterations=iterations,
        )
