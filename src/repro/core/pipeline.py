"""SpotFi end-to-end — paper Algorithm 2.

:class:`SpotFi` wires the whole system together: for every AP, sanitize
(Alg. 1) + smooth (Fig. 4) + MUSIC (lines 5-6) + peaks (line 7) per packet,
cluster across packets (line 9), select the direct path by Eq. 8 likelihood
(line 10), then fuse all APs' (AoA, likelihood, RSSI) with the Eq. 9
solver (line 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.clustering import PathCluster, cluster_estimates
from repro.core.direct_path import DirectPathEstimate, select_direct_path
from repro.core.estimator import (
    JointEstimator,
    PathEstimate,
    estimate_packet_safe,
)
from repro.core.likelihood import DEFAULT_WEIGHTS, LikelihoodWeights
from repro.core.localization import ApObservation, LocalizationResult, Localizer
from repro.core.music import MusicConfig
from repro.core.smoothing import SmoothingConfig
from repro.core.steering import SteeringModel
from repro.errors import (
    ClusteringError,
    EstimationError,
    LocalizationError,
    ReproError,
)
from repro.geom.points import Point, PointLike
from repro.obs import NOOP_TRACER, Tracer, cluster_summary, downsample_spectrum
from repro.runtime.executor import Executor, SerialExecutor
from repro.wifi.arrays import UniformLinearArray
from repro.wifi.csi import CsiTrace
from repro.wifi.ofdm import OfdmGrid


@dataclass
class SpotFiConfig:
    """Every tunable of the SpotFi pipeline, with the paper's defaults.

    Attributes
    ----------
    smoothing:
        Fig. 4 subarray configuration (2 x 15 for the Intel 5300).
    music:
        MUSIC grids and subspace threshold.
    likelihood:
        Eq. 8 weights.
    estimation:
        Per-packet estimator: "music" (the paper's spectral search) or
        "esprit" (grid-free shift invariance, see `repro.core.esprit`).
    num_clusters:
        Gaussian-mixture size (paper: 5).
    clustering_method:
        "gmm" (paper) or "kmeans".
    packets_per_fix:
        Packets used per location fix (paper shows 10 suffice, Fig. 9(b);
        evaluation groups use 40, Sec. 4.3.1).
    sanitize:
        Apply Algorithm 1 (ablation switch).
    min_cluster_size:
        Absolute floor on cluster membership; smaller clusters are
        discarded as spurious.
    min_cluster_fraction:
        Additional floor as a fraction of the packets used: a real path
        produces roughly one estimate per packet, so a cluster seen in
        under ~15% of packets is a spectrum artifact.  Artifacts recur
        with tiny variance and can otherwise steal the smallest-ToF bonus
        of Eq. 8.
    aoa_weight, rssi_weight:
        Eq. 9 term weights (deg^2 and dB^2 scales).
    grid_step_m:
        Coarse localization grid resolution.
    use_likelihood_weights:
        Weight APs by l_i in Eq. 9 (ablation switch).
    min_aps:
        Usable-AP quorum for a fix.  A degraded AP (estimation or
        clustering failure, blackout, deadline miss) is dropped and the
        Eq. 9 solve proceeds on the survivors — whose likelihood weights
        the solver renormalizes to mean 1, redistributing the lost AP's
        influence — as long as at least this many remain (floor 2; one
        AoA does not intersect).
    """

    smoothing: SmoothingConfig = field(default_factory=SmoothingConfig)
    music: MusicConfig = field(default_factory=MusicConfig)
    likelihood: LikelihoodWeights = DEFAULT_WEIGHTS
    estimation: str = "music"
    num_clusters: int = 5
    clustering_method: str = "gmm"
    packets_per_fix: int = 40
    sanitize: bool = True
    min_cluster_size: int = 2
    min_cluster_fraction: float = 0.15
    aoa_weight: float = 1.0
    rssi_weight: float = 1.0
    grid_step_m: float = 0.25
    use_likelihood_weights: bool = True
    min_aps: int = 2


@dataclass(frozen=True)
class ApReport:
    """Everything SpotFi derived from one AP's trace.

    Attributes
    ----------
    array:
        The AP's antenna array.
    direct:
        Direct-path selection outcome (None if estimation failed).
    rssi_dbm:
        Median RSSI of the packets used.
    estimates:
        All per-packet (AoA, ToF) estimates.
    clusters:
        The clusters the estimates formed.
    failure:
        Why the AP degraded (``"ErrorType: detail"``) when ``direct`` is
        None; None for a usable AP.
    """

    array: UniformLinearArray
    direct: Optional[DirectPathEstimate]
    rssi_dbm: float
    estimates: Tuple[PathEstimate, ...] = ()
    clusters: Tuple[PathCluster, ...] = ()
    failure: Optional[str] = None

    @property
    def usable(self) -> bool:
        return self.direct is not None


def _failure_text(exc: BaseException) -> str:
    """One-line ``"ErrorType: detail"`` diagnostic for a degraded AP."""
    return f"{type(exc).__name__}: {exc}"


@dataclass(frozen=True)
class SpotFiFix:
    """One localization fix: the result plus per-AP diagnostics.

    ``estimator`` names the registered estimator that produced the fix
    (empty only for fixes built outside :meth:`SpotFi.locate`).
    """

    result: LocalizationResult
    reports: Tuple[ApReport, ...]
    estimator: str = ""

    @property
    def position(self) -> Point:
        return self.result.position

    @property
    def degraded(self) -> bool:
        """True when any contributing AP failed and the fix used a quorum."""
        return any(not r.usable for r in self.reports)

    @property
    def degraded_aps(self) -> Tuple[int, ...]:
        """Indices (into ``reports``) of the APs that degraded."""
        return tuple(i for i, r in enumerate(self.reports) if not r.usable)

    def error_to(self, truth: PointLike) -> float:
        return self.result.error_to(truth)


class SpotFi:
    """The SpotFi server: Algorithm 2 over (AP trace) collections.

    Parameters
    ----------
    grid:
        OFDM grid the CSI was measured on (``Intel5300().grid()``).
    bounds:
        (x0, y0, x1, y1) localization search region, e.g. the floorplan
        bounding box.
    config:
        Pipeline tunables; defaults reproduce the paper.
    rng:
        Source of randomness for clustering initialization; fixing it makes
        fixes reproducible.
    executor:
        Runtime executor the per-packet estimation fans out on (see
        :mod:`repro.runtime`).  Defaults to a
        :class:`~repro.runtime.executor.SerialExecutor`, which reproduces
        the inline loop exactly.  Estimation is pure and clustering always
        runs in this process with the shared ``rng``, so a
        :class:`~repro.runtime.executor.ParallelExecutor` yields the same
        fixes as serial.
    tracer:
        A :class:`repro.obs.Tracer` producing hierarchical spans
        (``locate > ap[k] > sanitize|smooth|music|cluster > solve``)
        with per-stage timings and attributes; defaults to the zero-cost
        :data:`~repro.obs.NOOP_TRACER`.  With a real tracer, per-packet
        estimation runs inline stage by stage (bypassing the executor)
        so each stage's wall-clock is attributable — tracing is a
        diagnostic mode, not a serving mode.  Under head sampling
        (``ObsConfig(sample_rate=)``) the inline path applies only to
        sampled fixes; sampled-out fixes take the normal executor
        fan-out at full speed.  When the tracer's
        :class:`~repro.obs.ObsConfig` sets ``capture_artifacts``, spans
        also carry the downsampled mean MUSIC pseudospectrum and
        per-cluster (AoA, ToF) statistics.
    """

    def __init__(
        self,
        grid: OfdmGrid,
        bounds: Tuple[float, float, float, float],
        config: Optional[SpotFiConfig] = None,
        rng: Optional[np.random.Generator] = None,
        executor: Optional[Executor] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.grid = grid
        self.config = config or SpotFiConfig()
        self.bounds = bounds
        self.executor = executor or SerialExecutor()
        self.tracer = tracer or NOOP_TRACER
        self._rng = rng or np.random.default_rng(0)
        self._estimators: dict = {}
        self._registry_estimators: dict = {}

    # ------------------------------------------------------------------
    # Per-AP processing (Alg. 2 lines 1-11)
    # ------------------------------------------------------------------
    def estimator_for(self, array: UniformLinearArray) -> JointEstimator:
        """The joint estimator for an AP's array geometry (cached)."""
        key = (array.num_antennas, array.spacing_m)
        if key not in self._estimators:
            model = SteeringModel.for_grid(
                self.grid,
                num_antennas=array.num_antennas,
                antenna_spacing_m=array.spacing_m,
            )
            if self.config.estimation == "music":
                estimator = JointEstimator(
                    model=model,
                    smoothing=self.config.smoothing,
                    music=self.config.music,
                    sanitize=self.config.sanitize,
                )
            elif self.config.estimation == "esprit":
                from repro.core.esprit import EspritEstimator

                estimator = EspritEstimator(
                    model=model,
                    smoothing=self.config.smoothing,
                    music=self.config.music,
                    sanitize=self.config.sanitize,
                )
            else:
                raise EstimationError(
                    f"unknown estimation method {self.config.estimation!r}; "
                    "expected 'music' or 'esprit'"
                )
            self._estimators[key] = estimator
        return self._estimators[key]

    def process_ap(self, array: UniformLinearArray, trace: CsiTrace) -> ApReport:
        """Lines 2-10 for one AP: estimate, cluster, select direct path.

        Any :class:`~repro.errors.ReproError` the AP's estimation raises
        (bad CSI, no peaks, an executor deadline miss) degrades this AP —
        ``direct=None`` with ``failure`` recorded — instead of
        propagating, so callers can proceed on the surviving quorum.
        """
        if self.tracer.enabled and self.tracer.recording:
            return self._traced_ap_report(array, trace, 0)
        used = trace[: self.config.packets_per_fix]
        rssi = used.median_rssi_dbm()
        try:
            estimates = self.estimator_for(array).estimate_trace(
                used, executor=self.executor
            )
        except ReproError as exc:
            return ApReport(
                array=array,
                direct=None,
                rssi_dbm=rssi,
                failure=_failure_text(exc),
            )
        return self._cluster_report(array, used, rssi, estimates)

    def _cluster_report(
        self,
        array: UniformLinearArray,
        used: CsiTrace,
        rssi: float,
        estimates: List[PathEstimate],
    ) -> ApReport:
        """Lines 9-10: cluster pooled estimates and select the direct path.

        Always runs in the calling process so the shared clustering RNG
        advances in AP order regardless of which executor produced the
        estimates — that is what keeps parallel fixes identical to serial.
        """
        min_size = max(
            self.config.min_cluster_size,
            int(np.ceil(self.config.min_cluster_fraction * len(used))),
        )
        try:
            clusters = cluster_estimates(
                estimates,
                num_clusters=self.config.num_clusters,
                method=self.config.clustering_method,
                rng=self._rng,
                min_cluster_size=min_size,
            )
            direct = select_direct_path(clusters, self.config.likelihood)
        except (EstimationError, ClusteringError) as exc:
            return ApReport(
                array=array,
                direct=None,
                rssi_dbm=rssi,
                failure=_failure_text(exc),
            )
        return ApReport(
            array=array,
            direct=direct,
            rssi_dbm=rssi,
            estimates=tuple(estimates),
            clusters=tuple(clusters),
        )

    def _traced_ap_report(
        self, array: UniformLinearArray, trace: CsiTrace, index: int
    ) -> ApReport:
        """Lines 2-10 for one AP with per-stage spans.

        Runs the estimator stage by stage inline (no executor fan-out) so
        sanitize/smooth/music each get an attributable wall-clock; the
        executor path cannot provide that because workers interleave
        whole packets.  Numerically identical to the untraced path.
        """
        tracer = self.tracer
        capture = tracer.config.capture_artifacts
        used = trace[: self.config.packets_per_fix]
        rssi = used.median_rssi_dbm()
        estimator = self.estimator_for(array)
        with tracer.span(
            f"ap[{index}]",
            packets=len(used),
            num_antennas=array.num_antennas,
            rssi_dbm=float(rssi),
        ) as ap_span:
            try:
                with tracer.span("sanitize", packets=len(used)):
                    sanitized = [estimator.stage_sanitize(f.csi) for f in used]
                with tracer.span("smooth"):
                    smoothed = [estimator.stage_smooth(c) for c in sanitized]
                with tracer.span("music", packets=len(smoothed)) as music_span:
                    estimates: List = []
                    spectrum_sum = None
                    aoa_grid = tof_grid = None
                    for i, x in enumerate(smoothed):
                        spectrum, aoa_grid, tof_grid = estimator.stage_music(x)
                        estimates.extend(
                            estimator.stage_peaks(
                                spectrum, aoa_grid, tof_grid, packet_index=i
                            )
                        )
                        if capture:
                            spectrum_sum = (
                                spectrum
                                if spectrum_sum is None
                                else spectrum_sum + spectrum
                            )
                    music_span.set("estimates", len(estimates))
                    if capture and spectrum_sum is not None:
                        music_span.set(
                            "pseudospectrum",
                            downsample_spectrum(
                                spectrum_sum / len(smoothed),
                                aoa_grid,
                                tof_grid,
                                tracer.config.artifact_max_bins,
                            ),
                        )
            except ReproError as exc:
                ap_span.set("estimation_error", str(exc))
                ap_span.set("usable", False)
                return ApReport(
                    array=array,
                    direct=None,
                    rssi_dbm=rssi,
                    failure=_failure_text(exc),
                )
            with tracer.span("cluster", num_estimates=len(estimates)) as cl_span:
                report = self._cluster_report(array, used, rssi, estimates)
                if report.usable:
                    cl_span.set_many(
                        num_clusters=len(report.clusters),
                        direct_aoa_deg=float(report.direct.aoa_deg),
                        direct_likelihood=float(report.direct.likelihood),
                        likelihoods=[
                            round(float(l), 5)
                            for l in report.direct.all_likelihoods
                        ],
                    )
                    if capture:
                        cl_span.set(
                            "clusters",
                            cluster_summary(
                                report.clusters, report.direct.all_likelihoods
                            ),
                        )
            ap_span.set("usable", report.usable)
        return report

    # ------------------------------------------------------------------
    # Fusion (Alg. 2 line 12)
    # ------------------------------------------------------------------
    def default_estimator_name(self) -> str:
        """The registry name of this pipeline's built-in estimation path."""
        return "esprit" if self.config.estimation == "esprit" else "music2d"

    def locate(
        self,
        ap_traces: Sequence[Tuple[UniformLinearArray, CsiTrace]],
        estimator: Optional[str] = None,
    ) -> SpotFiFix:
        """Run the full Algorithm 2 on traces from several APs.

        Per-packet estimation for *all* APs is submitted to the executor
        as one batch, so a parallel executor overlaps packets across APs;
        clustering and fusion then run here in AP order.  With tracing
        enabled the whole run is wrapped in a ``locate`` span.

        ``estimator`` selects a registered estimator (or QoS tier) from
        :mod:`repro.estimators` for this request.  ``None`` — and any
        name resolving to this pipeline's own configuration — runs the
        classic inline path, byte-identical to the historical behaviour;
        anything else dispatches through the registry (see
        :meth:`_locate_with_registry`).  Unknown names raise
        :class:`~repro.errors.UnknownEstimatorError`.
        """
        name = self.default_estimator_name()
        if estimator is not None:
            from repro.estimators import resolve_name

            name = resolve_name(estimator)
        if name != self.default_estimator_name():
            return self._locate_with_registry(name, ap_traces)
        with self.tracer.span("locate", num_aps=len(ap_traces)) as span:
            reports = self.process_aps(ap_traces)
            fix = replace(self.locate_from_reports(reports), estimator=name)
            if span.recording:
                span.set_many(
                    usable_aps=sum(1 for r in reports if r.usable),
                    degraded_aps=list(fix.degraded_aps),
                    position=[
                        round(float(fix.position.x), 4),
                        round(float(fix.position.y), 4),
                    ],
                )
            return fix

    def _locate_with_registry(
        self,
        name: str,
        ap_traces: Sequence[Tuple[UniformLinearArray, CsiTrace]],
    ) -> SpotFiFix:
        """One fix through a registry estimator (the non-default path).

        Estimator instances are cached per name; each AP is estimated
        with per-AP failure isolation and an ``estimate.<name>`` stage
        timing (recorded by :func:`repro.estimators.timed_estimate`,
        which owns the clock — this module stays clock-free).  Fusion is
        delegated to the estimator's ``fuse`` after the same quorum
        check as :meth:`locate_from_reports`.
        """
        from repro.estimators import (
            EstimatorContext,
            create,
            timed_estimate,
            to_report,
        )

        est = self._registry_estimators.get(name)
        if est is None:
            context = EstimatorContext(
                grid=self.grid, bounds=self.bounds, config=self.config
            )
            est = create(name, context)
            self._registry_estimators[name] = est
        with self.tracer.span(
            "locate", num_aps=len(ap_traces), estimator=name
        ) as span:
            estimates = [
                timed_estimate(est, array, trace, self.executor.metrics)
                for array, trace in ap_traces
            ]
            reports = tuple(to_report(e) for e in estimates)
            usable = [e for e in estimates if e.usable]
            quorum = max(2, self.config.min_aps)
            if len(usable) < quorum:
                degraded = tuple(
                    (i, r.failure or "unusable")
                    for i, r in enumerate(reports)
                    if not r.usable
                )
                exc = LocalizationError(
                    f"estimator {name!r}: only {len(usable)} of "
                    f"{len(reports)} APs produced usable paths (quorum "
                    f"{quorum}); degraded: "
                    + (
                        "; ".join(f"ap[{i}] {why}" for i, why in degraded)
                        or "none reported"
                    )
                )
                exc.degraded_aps = degraded
                raise exc
            with self.tracer.span("solve", num_observations=len(usable)):
                result = est.fuse(usable)
            fix = SpotFiFix(result=result, reports=reports, estimator=name)
            if span.recording:
                span.set_many(
                    usable_aps=len(usable),
                    degraded_aps=list(fix.degraded_aps),
                    position=[
                        round(float(fix.position.x), 4),
                        round(float(fix.position.y), 4),
                    ],
                )
            return fix

    def process_aps(
        self, ap_traces: Sequence[Tuple[UniformLinearArray, CsiTrace]]
    ) -> Tuple[ApReport, ...]:
        """Lines 1-11 for several APs, fanning estimation across the executor.

        With tracing enabled, each AP instead runs the inline per-stage
        path (see :meth:`_traced_ap_report`) so the span tree covers
        every stage.

        Failure isolation: per-packet :class:`EstimationError` values are
        already carried through the batch by
        :func:`~repro.core.estimator.estimate_packet_safe`; when the
        batched map itself raises a :class:`~repro.errors.ReproError`
        (a structural CSI error, a deadline miss), estimation falls back
        to one map per AP so the failure degrades only the AP that
        caused it instead of aborting every AP's fix.
        """
        if self.tracer.enabled and self.tracer.recording:
            return tuple(
                self._traced_ap_report(array, trace, k)
                for k, (array, trace) in enumerate(ap_traces)
            )
        prepared = []
        tasks = []
        for array, trace in ap_traces:
            used = trace[: self.config.packets_per_fix]
            estimator = self.estimator_for(array)
            prepared.append((array, used, estimator))
            for index, frame in enumerate(used):
                tasks.append((estimator, frame.csi, index))
        try:
            # Per-task CSI pickling: accepted until the shared-memory path
            # lands (ROADMAP item 2); cost tracked by BENCH_dist.json.
            results = self.executor.map_ordered(  # repro: noqa REP013
                estimate_packet_safe, tasks, stage="estimate"
            )
        except ReproError:
            return tuple(
                self._isolated_ap_report(array, used, estimator)
                for array, used, estimator in prepared
            )
        reports = []
        position = 0
        for array, used, _ in prepared:
            packet_results = results[position : position + len(used)]
            position += len(used)
            rssi = used.median_rssi_dbm()
            errors = [r for r in packet_results if isinstance(r, EstimationError)]
            if errors:
                reports.append(
                    ApReport(
                        array=array,
                        direct=None,
                        rssi_dbm=rssi,
                        failure=_failure_text(errors[0]),
                    )
                )
                continue
            estimates = [e for packet in packet_results for e in packet]
            reports.append(self._cluster_report(array, used, rssi, estimates))
        return tuple(reports)

    def _isolated_ap_report(
        self, array: UniformLinearArray, used: CsiTrace, estimator: JointEstimator
    ) -> ApReport:
        """Re-run one AP's estimation alone after a batched-map failure.

        Duplicate work for the APs that would have succeeded, but only on
        the failure path — the price of knowing *which* AP poisoned the
        batch while still fixing from the survivors.
        """
        rssi = used.median_rssi_dbm()
        tasks = [(estimator, frame.csi, index) for index, frame in enumerate(used)]
        try:
            # Per-task CSI pickling: accepted until the shared-memory path
            # (ROADMAP item 2); this is the isolation/failure path anyway.
            packet_results = self.executor.map_ordered(  # repro: noqa REP013
                estimate_packet_safe, tasks, stage="estimate"
            )
        except ReproError as exc:
            return ApReport(
                array=array,
                direct=None,
                rssi_dbm=rssi,
                failure=_failure_text(exc),
            )
        errors = [r for r in packet_results if isinstance(r, EstimationError)]
        if errors:
            return ApReport(
                array=array,
                direct=None,
                rssi_dbm=rssi,
                failure=_failure_text(errors[0]),
            )
        estimates = [e for packet in packet_results for e in packet]
        return self._cluster_report(array, used, rssi, estimates)

    def locate_from_reports(self, reports: Sequence[ApReport]) -> SpotFiFix:
        """Fuse precomputed per-AP reports into a position fix.

        Degraded APs are dropped and the Eq. 9 solve runs on the
        surviving quorum, whose likelihood weights the solver
        renormalizes to mean 1 (the degraded APs' influence is
        redistributed).  Raises :class:`LocalizationError` — with the
        degraded APs attached as ``exc.degraded_aps``, a tuple of
        ``(report_index, failure)`` pairs — when fewer than
        ``max(2, config.min_aps)`` APs survive.
        """
        observations = [
            ApObservation(
                array=r.array,
                aoa_deg=r.direct.aoa_deg,
                rssi_dbm=r.rssi_dbm,
                likelihood=r.direct.likelihood,
            )
            for r in reports
            if r.usable
        ]
        quorum = max(2, self.config.min_aps)
        if len(observations) < quorum:
            degraded = tuple(
                (i, r.failure or "unusable")
                for i, r in enumerate(reports)
                if not r.usable
            )
            exc = LocalizationError(
                f"only {len(observations)} of {len(reports)} APs produced "
                f"usable direct paths (quorum {quorum}); degraded: "
                + (
                    "; ".join(f"ap[{i}] {why}" for i, why in degraded)
                    or "none reported"
                )
            )
            exc.degraded_aps = degraded
            raise exc
        localizer = Localizer(
            bounds=self.bounds,
            grid_step_m=self.config.grid_step_m,
            aoa_weight=self.config.aoa_weight,
            rssi_weight=self.config.rssi_weight,
            use_likelihood_weights=self.config.use_likelihood_weights,
        )
        with self.tracer.span("solve", num_observations=len(observations)) as span:
            result = localizer.locate(observations)
            if span.recording:
                span.set_many(
                    objective=float(result.objective),
                    iterations=int(result.iterations),
                    mean_abs_aoa_residual_deg=float(
                        np.mean(np.abs(result.aoa_residuals_deg))
                    )
                    if result.aoa_residuals_deg
                    else 0.0,
                )
        return SpotFiFix(result=result, reports=tuple(reports))
