"""Direct-path likelihood — paper Eq. 8 (Sec. 3.2.3).

Each cluster k gets

    likelihood_k = exp(w_C C_k - w_theta var_theta_k - w_tau var_tau_k - w_s tau_k)

rewarding big, tight clusters with small mean ToF.  The paper notes the
weights exist "to account for different scales of the corresponding terms";
we make that concrete by normalizing every term by its maximum over the
cluster set before weighting, so the weights are scale-free and the
likelihoods of different APs are mutually comparable (they feed the l_i
weights of Eq. 9).  Raw (unnormalized) evaluation is available for the
weight-ablation benchmark.

The default weights (tuned on the simulated testbed, Fig. 8(b) benchmark)
put the strongest prior on the smallest-ToF term — the direct path cannot
arrive late — with the cluster-size term guarding against spurious early
clusters and the variance terms breaking ties toward stability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.clustering import PathCluster
from repro.errors import ClusteringError


@dataclass(frozen=True)
class LikelihoodWeights:
    """Weights of Eq. 8 (applied to max-normalized terms by default).

    Attributes
    ----------
    w_count:
        Reward for the number of points in the cluster (w_C).
    w_aoa_var:
        Penalty for AoA variance (w_theta).
    w_tof_var:
        Penalty for ToF variance (w_tau).
    w_tof_mean:
        Penalty for large mean ToF (w_s) — the direct path has the
        smallest ToF.
    normalize:
        If True (default), each term is divided by its maximum over the
        cluster set before weighting.
    """

    w_count: float = 1.0
    w_aoa_var: float = 0.5
    w_tof_var: float = 0.5
    w_tof_mean: float = 2.0
    normalize: bool = True

    def without_count(self) -> "LikelihoodWeights":
        """Ablation helper: drop the cluster-size term."""
        return LikelihoodWeights(0.0, self.w_aoa_var, self.w_tof_var, self.w_tof_mean, self.normalize)

    def without_tof_mean(self) -> "LikelihoodWeights":
        """Ablation helper: drop the smallest-ToF prior."""
        return LikelihoodWeights(self.w_count, self.w_aoa_var, self.w_tof_var, 0.0, self.normalize)

    def variance_only(self) -> "LikelihoodWeights":
        """Ablation helper: keep only the tightness terms."""
        return LikelihoodWeights(0.0, self.w_aoa_var, self.w_tof_var, 0.0, self.normalize)


DEFAULT_WEIGHTS = LikelihoodWeights()


def _normalized(values: np.ndarray) -> np.ndarray:
    peak = float(np.max(np.abs(values)))
    if peak <= 0:
        return np.zeros_like(values)
    return values / peak


def path_likelihoods(
    clusters: Sequence[PathCluster],
    weights: LikelihoodWeights = DEFAULT_WEIGHTS,
) -> List[float]:
    """Eq. 8 likelihood for every cluster, in input order.

    ToF terms are computed in nanoseconds; the mean-ToF term is measured
    relative to the *smallest* cluster mean (sanitized ToFs are relative,
    so only differences carry information).
    """
    cluster_list = list(clusters)
    if not cluster_list:
        raise ClusteringError("cannot compute likelihoods of zero clusters")
    counts = np.array([c.count for c in cluster_list], dtype=float)
    var_aoa = np.array([c.var_aoa_deg2 for c in cluster_list], dtype=float)
    var_tof = np.array([c.var_tof_s2 for c in cluster_list], dtype=float) * 1e18  # ns^2
    mean_tof = np.array([c.mean_tof_s for c in cluster_list], dtype=float) * 1e9  # ns
    mean_tof = mean_tof - mean_tof.min()

    if weights.normalize:
        counts = _normalized(counts)
        var_aoa = _normalized(var_aoa)
        var_tof = _normalized(var_tof)
        mean_tof = _normalized(mean_tof)

    exponent = (
        weights.w_count * counts
        - weights.w_aoa_var * var_aoa
        - weights.w_tof_var * var_tof
        - weights.w_tof_mean * mean_tof
    )
    return [float(v) for v in np.exp(exponent)]
