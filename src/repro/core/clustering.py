"""Clustering of multi-packet (AoA, ToF) estimates — paper Sec. 3.2.3.

Estimates from the same physical path across packets cluster together in
the 2-D (AoA, ToF) plane; the cluster tightness feeds the direct-path
likelihood.  The paper uses "Gaussian Mean clustering ... with five
clusters"; we implement an EM Gaussian mixture (diagonal covariances,
k-means++ initialization) plus a plain k-means fallback, both from scratch
(no sklearn), and normalize both axes to a common range as the paper's
Fig. 5(c) does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.estimator import PathEstimate
from repro.errors import ClusteringError

#: Paper's cluster count: "typically we see at best five significant paths".
DEFAULT_NUM_CLUSTERS = 5


# ----------------------------------------------------------------------
# K-means
# ----------------------------------------------------------------------
@dataclass
class KMeans:
    """Plain k-means with k-means++ seeding.

    Attributes
    ----------
    num_clusters:
        Target k; silently reduced if there are fewer distinct points.
    max_iter:
        Lloyd iteration cap.
    tol:
        Relative center-movement convergence threshold.
    """

    num_clusters: int = DEFAULT_NUM_CLUSTERS
    max_iter: int = 100
    tol: float = 1e-6

    def fit(
        self, points: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Cluster ``points`` (n, d); returns (labels (n,), centers (k, d))."""
        x = _validate_points(points)
        rng = np.random.default_rng(0) if rng is None else rng
        k = min(self.num_clusters, len(np.unique(x, axis=0)))
        centers = _kmeanspp_init(x, k, rng)
        labels = np.zeros(len(x), dtype=int)
        for _ in range(self.max_iter):
            dists = _sq_distances(x, centers)
            labels = np.argmin(dists, axis=1)
            new_centers = centers.copy()
            for j in range(k):
                members = x[labels == j]
                if len(members):
                    new_centers[j] = members.mean(axis=0)
            shift = float(np.max(np.linalg.norm(new_centers - centers, axis=1)))
            centers = new_centers
            if shift <= self.tol:
                break
        return labels, centers


def _validate_points(points: np.ndarray) -> np.ndarray:
    x = np.asarray(points, dtype=float)
    if x.ndim != 2 or x.shape[0] < 1:
        raise ClusteringError(f"points must be a non-empty (n, d) array, got {x.shape}")
    if not np.all(np.isfinite(x)):
        raise ClusteringError("points contain non-finite values")
    return x


def _sq_distances(x: np.ndarray, centers: np.ndarray) -> np.ndarray:
    diff = x[:, None, :] - centers[None, :, :]
    return np.sum(diff**2, axis=2)


def _kmeanspp_init(x: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    centers = [x[rng.integers(len(x))]]
    while len(centers) < k:
        d2 = np.min(_sq_distances(x, np.asarray(centers)), axis=1)
        total = d2.sum()
        if total <= 0:
            centers.append(x[rng.integers(len(x))])
            continue
        probs = d2 / total
        centers.append(x[rng.choice(len(x), p=probs)])
    return np.asarray(centers, dtype=float)


# ----------------------------------------------------------------------
# Gaussian mixture (EM, diagonal covariances)
# ----------------------------------------------------------------------
@dataclass
class GaussianMixture:
    """EM Gaussian mixture with diagonal covariances.

    Attributes
    ----------
    num_components:
        Mixture size (reduced automatically for tiny datasets).
    max_iter:
        EM iteration cap.
    tol:
        Log-likelihood convergence threshold (per point).
    min_var:
        Variance floor preventing singular components.
    """

    num_components: int = DEFAULT_NUM_CLUSTERS
    max_iter: int = 200
    tol: float = 1e-7
    min_var: float = 1e-6

    def fit(
        self, points: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fit the mixture; returns (labels, means, variances).

        ``labels`` are the hard (argmax-responsibility) assignments,
        ``means``/``variances`` have shape (k, d).
        """
        x = _validate_points(points)
        rng = np.random.default_rng(0) if rng is None else rng
        n, d = x.shape
        # Initialize from k-means.
        labels, centers = KMeans(num_clusters=self.num_components).fit(x, rng)
        k = len(centers)
        means = centers.copy()
        variances = np.empty((k, d))
        weights = np.empty(k)
        for j in range(k):
            members = x[labels == j]
            weights[j] = max(len(members), 1) / n
            if len(members) > 1:
                variances[j] = np.maximum(members.var(axis=0), self.min_var)
            else:
                variances[j] = np.maximum(x.var(axis=0), self.min_var)
        weights /= weights.sum()

        prev_ll = -np.inf
        resp = np.zeros((n, k))
        for _ in range(self.max_iter):
            # E step: log responsibilities under diagonal Gaussians.
            log_prob = -0.5 * (
                np.sum(
                    (x[:, None, :] - means[None, :, :]) ** 2 / variances[None, :, :],
                    axis=2,
                )
                + np.sum(np.log(2.0 * np.pi * variances), axis=1)[None, :]
            )
            log_prob += np.log(np.maximum(weights, 1e-300))[None, :]
            log_norm = _logsumexp(log_prob, axis=1)
            resp = np.exp(log_prob - log_norm[:, None])
            ll = float(np.mean(log_norm))
            # M step.
            nk = resp.sum(axis=0) + 1e-12
            weights = nk / n
            means = (resp.T @ x) / nk[:, None]
            diff2 = (x[:, None, :] - means[None, :, :]) ** 2
            variances = np.maximum(
                np.einsum("nk,nkd->kd", resp, diff2) / nk[:, None], self.min_var
            )
            if abs(ll - prev_ll) < self.tol:
                break
            prev_ll = ll
        labels = np.argmax(resp, axis=1)
        return labels, means, variances


def _logsumexp(a: np.ndarray, axis: int) -> np.ndarray:
    peak = np.max(a, axis=axis, keepdims=True)
    return (peak + np.log(np.sum(np.exp(a - peak), axis=axis, keepdims=True))).squeeze(
        axis
    )


# ----------------------------------------------------------------------
# Path clusters
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PathCluster:
    """Statistics of one (AoA, ToF) cluster — the inputs of Eq. 8.

    Attributes
    ----------
    mean_aoa_deg, mean_tof_s:
        Cluster means — the AoA/ToF estimate for the underlying path.
    var_aoa_deg2, var_tof_s2:
        Population variances of the members (paper's sigma-bar terms).
    count:
        Number of member points (paper's C-bar).
    mean_power:
        Mean MUSIC spectrum power of members (used by the CUPID baseline).
    member_indices:
        Indices into the estimate list this cluster was built from.
    """

    mean_aoa_deg: float
    mean_tof_s: float
    var_aoa_deg2: float
    var_tof_s2: float
    count: int
    mean_power: float
    member_indices: Tuple[int, ...] = ()


def _normalize_columns(x: np.ndarray) -> np.ndarray:
    """Scale each column to [0, 1] (constant columns map to 0)."""
    out = np.zeros_like(x)
    for j in range(x.shape[1]):
        col = x[:, j]
        span = col.max() - col.min()
        if span > 0:
            out[:, j] = (col - col.min()) / span
    return out


def cluster_estimates(
    estimates: Sequence[PathEstimate],
    num_clusters: int = DEFAULT_NUM_CLUSTERS,
    method: str = "gmm",
    rng: Optional[np.random.Generator] = None,
    min_cluster_size: int = 1,
) -> List[PathCluster]:
    """Cluster multi-packet path estimates into per-path groups.

    AoA and ToF are min-max normalized to a common [0, 1] range before
    clustering, as in paper Fig. 5(c).  ``method`` is ``"gmm"`` (default,
    the paper's Gaussian clustering) or ``"kmeans"``.

    Returns clusters with at least ``min_cluster_size`` members, sorted by
    descending size.  Raises :class:`ClusteringError` for an empty input.
    """
    points_list = list(estimates)
    if not points_list:
        raise ClusteringError("no path estimates to cluster")
    raw = np.array([[e.aoa_deg, e.tof_s] for e in points_list], dtype=float)
    powers = np.array([e.power for e in points_list], dtype=float)
    normalized = _normalize_columns(raw)
    rng = np.random.default_rng(0) if rng is None else rng

    k = min(num_clusters, len(points_list))
    if method == "gmm":
        labels, _, _ = GaussianMixture(num_components=k).fit(normalized, rng)
    elif method == "kmeans":
        labels, _ = KMeans(num_clusters=k).fit(normalized, rng)
    else:
        raise ClusteringError(f"unknown clustering method {method!r}")

    clusters: List[PathCluster] = []
    for label in np.unique(labels):
        idx = np.nonzero(labels == label)[0]
        if len(idx) < min_cluster_size:
            continue
        aoas = raw[idx, 0]
        tofs = raw[idx, 1]
        clusters.append(
            PathCluster(
                mean_aoa_deg=float(aoas.mean()),
                mean_tof_s=float(tofs.mean()),
                var_aoa_deg2=float(aoas.var()),
                var_tof_s2=float(tofs.var()),
                count=int(len(idx)),
                mean_power=float(powers[idx].mean()),
                member_indices=tuple(int(i) for i in idx),
            )
        )
    if not clusters:
        raise ClusteringError(
            f"all clusters smaller than min_cluster_size={min_cluster_size}"
        )
    clusters.sort(key=lambda c: -c.count)
    return clusters
