"""MUSIC on the smoothed CSI matrix (paper Alg. 2 lines 5-6).

Given the smoothed measurement matrix X, form the covariance ``X X^H``,
split its eigenvectors into signal and noise subspaces, and evaluate the
2-D pseudospectrum

    P(theta, tau) = 1 / (a^H(theta, tau) E_N E_N^H a(theta, tau))

whose peaks are the multipath (AoA, ToF) estimates.  The noise subspace is
chosen by eigenvalue threshold, as the paper specifies ("eigenvalues that
are smaller than a threshold"); an MDL-based model-order estimate is also
provided for ablations.

The steering vector factorizes as a Kronecker product (see
:mod:`repro.core.steering`), so the spectrum over a full (theta, tau) grid
is three einsums instead of a per-point loop — this makes whole-testbed
benchmarks tractable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.analysis.contracts import contract
from repro.core.indexcache import grid_range
from repro.core.steering import SteeringModel
from repro.errors import ConfigurationError, EstimationError


@dataclass(frozen=True)
class MusicConfig:
    """MUSIC subspace/grid parameters.

    Attributes
    ----------
    eigenvalue_threshold_ratio:
        Eigenvectors with eigenvalue below ``ratio * lambda_max`` form the
        noise subspace (paper's threshold rule).  Coherent multipath
        compresses into few dominant eigenvalues even after smoothing, so
        the threshold is deliberately generous (25 dB down): extra signal
        dimensions cost spurious peaks — which the clustering stage
        absorbs — while a missed dimension loses a real path.
    max_paths:
        Upper bound on signal-subspace dimension; at least one noise
        dimension is always kept.
    aoa_grid_deg:
        (min, max, step) of the AoA search grid in degrees.
    tof_grid_s:
        (min, max, step) of the ToF search grid in seconds.  Sanitization
        removes the *mean* delay, so relative ToFs extend below zero.
    use_mdl:
        If True, the signal dimension comes from the MDL criterion instead
        of the eigenvalue threshold.
    forward_backward:
        Apply forward-backward averaging to the smoothed covariance
        (valid here: the joint steering manifold is conjugate-symmetric
        up to a unit-modulus factor, so J R* J has the same signal
        subspace).  Improves decorrelation of coherent paths.
    """

    eigenvalue_threshold_ratio: float = 0.003
    max_paths: int = 10
    aoa_grid_deg: Tuple[float, float, float] = (-90.0, 90.0, 1.0)
    tof_grid_s: Tuple[float, float, float] = (-100e-9, 400e-9, 2.5e-9)
    use_mdl: bool = False
    forward_backward: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.eigenvalue_threshold_ratio < 1.0:
            raise ConfigurationError(
                "eigenvalue_threshold_ratio must be in (0, 1), got "
                f"{self.eigenvalue_threshold_ratio}"
            )
        if self.max_paths < 1:
            raise ConfigurationError(f"max_paths must be >= 1, got {self.max_paths}")
        for name, grid in (("aoa", self.aoa_grid_deg), ("tof", self.tof_grid_s)):
            lo, hi, step = grid
            if hi <= lo or step <= 0:
                raise ConfigurationError(f"invalid {name} grid {grid}")

    def aoa_grid(self) -> np.ndarray:
        lo, hi, step = self.aoa_grid_deg
        return grid_range(lo, hi + step / 2, step)

    def tof_grid(self) -> np.ndarray:
        lo, hi, step = self.tof_grid_s
        return grid_range(lo, hi + step / 2, step)


@contract(cov="(S,S)", returns="(S,S) complex128")
def forward_backward_average(cov: np.ndarray) -> np.ndarray:
    """Forward-backward average ``(R + J R* J) / 2`` of a covariance.

    J is the exchange (reversal) matrix.  For the Kronecker-structured
    steering vectors of Eq. 7, ``J conj(a(theta, tau))`` equals
    ``a(theta, tau)`` times a unit-modulus scalar, so the averaged
    covariance keeps the same signal subspace while decorrelating
    coherent arrivals.
    """
    r = np.asarray(cov, dtype=np.complex128)
    flipped = r[::-1, ::-1].conj()
    avg = r + flipped  # fresh array: halving in place cannot alias `cov`
    avg /= 2.0
    return avg


@contract(returns="(S,S) complex128")
def covariance(smoothed: np.ndarray) -> np.ndarray:
    """X X^H for a smoothed measurement matrix (sensors x snapshots)."""
    x = np.asarray(smoothed, dtype=np.complex128)
    if x.ndim != 2:
        raise EstimationError(f"measurement matrix must be 2-D, got shape {x.shape}")
    return x @ x.conj().T


@contract(eigenvalues="(S)", num_snapshots="int", returns="int")
def mdl_signal_dimension(eigenvalues: np.ndarray, num_snapshots: int) -> int:
    """Model order via the MDL criterion (Wax-Kailath).

    ``eigenvalues`` must be sorted descending.  Returns the estimated
    number of signals (at least 1, at most len - 1).
    """
    lam = np.asarray(eigenvalues, dtype=float)
    lam = np.maximum(lam, 1e-300)
    p = lam.size
    n = max(num_snapshots, 1)
    best_k, best_score = 1, np.inf
    for k in range(0, p):
        tail = lam[k:]
        m = p - k
        geo = np.exp(np.mean(np.log(tail)))
        arith = np.mean(tail)
        if arith <= 0:
            continue
        log_lik = -n * m * np.log(geo / arith)
        penalty = 0.5 * k * (2 * p - k) * np.log(n)
        score = log_lik + penalty
        if score < best_score:
            best_score, best_k = score, k
    return int(min(max(best_k, 1), p - 1))


def subspaces(
    cov: np.ndarray,
    config: MusicConfig = MusicConfig(),
    num_snapshots: int = 0,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Signal/noise eigen-decomposition of a covariance matrix.

    Returns ``(E_S, E_N, num_signals)`` where E_S holds the ``num_signals``
    dominant eigenvectors and E_N the rest.  Raises
    :class:`EstimationError` if the covariance is degenerate (all-zero).
    """
    r = np.asarray(cov, dtype=np.complex128)
    if r.ndim != 2 or r.shape[0] != r.shape[1]:
        raise EstimationError(f"covariance must be square, got shape {r.shape}")
    if config.forward_backward:
        r = forward_backward_average(r)
    # eigh returns ascending eigenvalues for Hermitian input.
    sym = r + r.conj().T  # fresh array: halving in place cannot alias `cov`
    sym /= 2.0
    eigenvalues, eigenvectors = np.linalg.eigh(sym)
    eigenvalues = eigenvalues[::-1]
    eigenvectors = eigenvectors[:, ::-1]
    lam_max = float(eigenvalues[0])
    if lam_max <= 0:
        raise EstimationError("covariance has no positive eigenvalues (zero CSI?)")
    if config.use_mdl:
        snapshots = num_snapshots if num_snapshots > 0 else r.shape[0]
        num_signals = mdl_signal_dimension(eigenvalues, snapshots)
    else:
        num_signals = int(np.sum(eigenvalues > config.eigenvalue_threshold_ratio * lam_max))
    num_signals = int(np.clip(num_signals, 1, min(config.max_paths, r.shape[0] - 1)))
    return eigenvectors[:, :num_signals], eigenvectors[:, num_signals:], num_signals


def noise_subspace(
    cov: np.ndarray,
    config: MusicConfig = MusicConfig(),
    num_snapshots: int = 0,
) -> Tuple[np.ndarray, int]:
    """Noise-subspace basis E_N of a covariance matrix.

    Returns ``(E_N, num_signals)`` where E_N has shape
    (num_sensors, num_noise_dims) and ``num_signals`` is the estimated
    path count.
    """
    _, e_noise, num_signals = subspaces(cov, config, num_snapshots)
    return e_noise, num_signals


@contract(
    e_noise="(MN,K)",
    phi="(A,M)",
    omega="(T,N)",
    returns="(A,T) float64",
)
def music_spectrum(
    e_noise: np.ndarray,
    model: SteeringModel,
    aoa_grid_deg: np.ndarray,
    tof_grid_s: np.ndarray,
    phi: np.ndarray = None,
    omega: np.ndarray = None,
) -> np.ndarray:
    """Evaluate the 2-D MUSIC pseudospectrum on a (theta, tau) grid.

    Parameters
    ----------
    e_noise:
        Noise-subspace basis, shape (M*N, K), antenna-major sensor order.
    model:
        Steering model of the (sub)array the rows correspond to.
    aoa_grid_deg, tof_grid_s:
        1-D grids.
    phi, omega:
        Optional precomputed ``model.antenna_vector(aoa_grid_deg)`` /
        ``model.subcarrier_vector(tof_grid_s)`` matrices (see
        :class:`repro.runtime.cache.SteeringCache`); computed here when
        omitted.

    Returns
    -------
    numpy.ndarray
        Spectrum of shape (len(aoa_grid_deg), len(tof_grid_s)); larger is
        more likely a path.
    """
    e_noise = np.asarray(e_noise, dtype=np.complex128)
    m, n = model.num_antennas, model.num_subcarriers
    if e_noise.shape[0] != m * n:
        raise EstimationError(
            f"noise subspace has {e_noise.shape[0]} sensors but the steering "
            f"model describes {m}x{n}={m * n}"
        )
    aoa_grid_deg = np.asarray(aoa_grid_deg, dtype=float)
    tof_grid_s = np.asarray(tof_grid_s, dtype=float)
    if phi is None:
        phi = model.antenna_vector(aoa_grid_deg)  # (A, M)
    if omega is None:
        omega = model.subcarrier_vector(tof_grid_s)  # (T, N)
    # e_k^H a(theta, tau) = sum_{m,n} conj(E[m,n,k]) phi[m] omega[n]
    e_grid = e_noise.conj().reshape(m, n, -1)  # (M, N, K)
    partial = np.einsum("am,mnk->ank", phi, e_grid)  # (A, N, K)
    proj = np.einsum("ank,tn->atk", partial, omega)  # (A, T, K)
    denom = np.sum(np.abs(proj) ** 2, axis=2)  # (A, T)
    # The steering vector has norm sqrt(M*N); normalizing makes spectra
    # comparable across configurations.  The chain runs in place on the
    # freshly reduced (A, T) array — identical values, no grid-sized
    # temporaries on the per-packet path.
    denom /= m * n
    np.maximum(denom, 1e-18, out=denom)
    np.divide(1.0, denom, out=denom)
    return denom


@contract(
    e_signal="(MN,K)",
    phi="(A,M)",
    omega="(T,N)",
    returns="(A,T) float64",
)
def music_spectrum_from_signal(
    e_signal: np.ndarray,
    model: SteeringModel,
    aoa_grid_deg: np.ndarray,
    tof_grid_s: np.ndarray,
    phi: np.ndarray = None,
    omega: np.ndarray = None,
) -> np.ndarray:
    """MUSIC spectrum computed from the *signal* subspace.

    Identical to :func:`music_spectrum` via the complement identity
    ``|E_N^H a|^2 = |a|^2 - |E_S^H a|^2`` (E_S, E_N together form an
    orthonormal basis).  Since the signal subspace has only ~L columns vs
    the noise subspace's M*N - L, this is several times faster on the
    30-sensor smoothed array; the estimator uses whichever basis is
    smaller.  ``phi``/``omega`` behave as in :func:`music_spectrum`.
    """
    e_signal = np.asarray(e_signal, dtype=np.complex128)
    m, n = model.num_antennas, model.num_subcarriers
    if e_signal.shape[0] != m * n:
        raise EstimationError(
            f"signal subspace has {e_signal.shape[0]} sensors but the steering "
            f"model describes {m}x{n}={m * n}"
        )
    if phi is None:
        phi = model.antenna_vector(np.asarray(aoa_grid_deg, dtype=float))  # (A, M)
    if omega is None:
        omega = model.subcarrier_vector(np.asarray(tof_grid_s, dtype=float))  # (T, N)
    e_grid = e_signal.conj().reshape(m, n, -1)  # (M, N, K)
    partial = np.einsum("am,mnk->ank", phi, e_grid)
    proj = np.einsum("ank,tn->atk", partial, omega)
    signal_energy = np.sum(np.abs(proj) ** 2, axis=2)  # |E_S^H a|^2
    # |a|^2 = m*n for unit-modulus steering entries.  In place on the
    # fresh (A, T) reduction, as in :func:`music_spectrum`.
    signal_energy /= m * n
    np.subtract(1.0, signal_energy, out=signal_energy)
    np.maximum(signal_energy, 1e-18, out=signal_energy)
    np.divide(1.0, signal_energy, out=signal_energy)
    return signal_energy


@contract(e_noise="(MN,K)", aoa_deg="float", tof_s="float", returns="float")
def spectrum_value(
    e_noise: np.ndarray, model: SteeringModel, aoa_deg: float, tof_s: float
) -> float:
    """Pseudospectrum at a single (theta, tau) point."""
    a = model.steering_vector(aoa_deg, tof_s)
    proj = e_noise.conj().T @ a
    denom = float(np.sum(np.abs(proj) ** 2)) / a.size
    return 1.0 / max(denom, 1e-18)
