"""2-D spectrum peak extraction (paper Alg. 2 line 7).

Finds local maxima of the MUSIC pseudospectrum, refines them with a
quadratic (log-domain) interpolation around the grid cell, and returns the
strongest few as (AoA, ToF, power) triples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np
from scipy import ndimage

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SpectrumPeak:
    """One local maximum of the MUSIC spectrum.

    Attributes
    ----------
    aoa_deg, tof_s:
        Refined peak coordinates.
    power:
        Pseudospectrum value at the peak (linear).
    """

    aoa_deg: float
    tof_s: float
    power: float


def _parabolic_offset(left: float, center: float, right: float) -> float:
    """Sub-cell offset in [-0.5, 0.5] of a parabola through three samples."""
    denom = left - 2.0 * center + right
    if denom >= -1e-300:  # not strictly concave; stay on the grid point
        return 0.0
    offset = 0.5 * (left - right) / denom
    return float(np.clip(offset, -0.5, 0.5))


def find_peaks_2d(
    spectrum: np.ndarray,
    aoa_grid_deg: np.ndarray,
    tof_grid_s: np.ndarray,
    max_peaks: int = 8,
    min_rel_height_db: float = 20.0,
    neighborhood: int = 3,
    exclude_border: bool = True,
) -> List[SpectrumPeak]:
    """Extract local maxima from a 2-D pseudospectrum.

    Parameters
    ----------
    spectrum:
        (len(aoa_grid), len(tof_grid)) positive values.
    aoa_grid_deg, tof_grid_s:
        The grids the spectrum was evaluated on.
    max_peaks:
        Keep at most this many strongest peaks.
    min_rel_height_db:
        Drop peaks more than this many dB below the strongest peak.
    neighborhood:
        Odd size of the local-maximum window (3 = 8-connected).
    exclude_border:
        Drop maxima on the outermost grid rows/columns.  A maximum pinned
        to the grid border is almost always the clipped shoulder of an
        out-of-window ridge, not a real path; such artifacts recur
        identically across packets and would otherwise form deceptively
        tight clusters.

    Returns
    -------
    list of :class:`SpectrumPeak`, strongest first.  Empty only for a
    flat spectrum.
    """
    spec = np.asarray(spectrum, dtype=float)
    if spec.ndim != 2:
        raise ConfigurationError(f"spectrum must be 2-D, got shape {spec.shape}")
    if spec.shape != (len(aoa_grid_deg), len(tof_grid_s)):
        raise ConfigurationError(
            f"spectrum shape {spec.shape} does not match grids "
            f"({len(aoa_grid_deg)}, {len(tof_grid_s)})"
        )
    if neighborhood % 2 == 0 or neighborhood < 3:
        raise ConfigurationError(f"neighborhood must be odd and >= 3, got {neighborhood}")

    local_max = ndimage.maximum_filter(spec, size=neighborhood, mode="nearest")
    is_peak = (spec >= local_max) & (spec > 0)
    # A constant plateau makes everything a "peak"; require strictly above
    # the neighborhood minimum to reject flat regions.
    local_min = ndimage.minimum_filter(spec, size=neighborhood, mode="nearest")
    is_peak &= spec > local_min * (1.0 + 1e-12)
    if exclude_border:
        is_peak[0, :] = is_peak[-1, :] = False
        is_peak[:, 0] = is_peak[:, -1] = False

    rows, cols = np.nonzero(is_peak)
    if rows.size == 0:
        return []
    powers = spec[rows, cols]
    order = np.argsort(powers)[::-1]
    strongest = powers[order[0]]
    floor = strongest * 10.0 ** (-min_rel_height_db / 10.0)

    peaks: List[SpectrumPeak] = []
    for idx in order:
        if len(peaks) >= max_peaks:
            break
        power = float(powers[idx])
        if power < floor:
            break
        i, j = int(rows[idx]), int(cols[idx])
        aoa = _refine_axis(spec, aoa_grid_deg, i, j, axis=0)
        tof = _refine_axis(spec, tof_grid_s, i, j, axis=1)
        peaks.append(SpectrumPeak(aoa_deg=float(aoa), tof_s=float(tof), power=power))
    return peaks


def _refine_axis(spec: np.ndarray, grid: np.ndarray, i: int, j: int, axis: int) -> float:
    """Quadratic sub-grid refinement of a peak along one axis (log domain)."""
    n = spec.shape[axis]
    k = i if axis == 0 else j
    if k == 0 or k == n - 1:
        return float(grid[k])
    if axis == 0:
        left, center, right = spec[i - 1, j], spec[i, j], spec[i + 1, j]
    else:
        left, center, right = spec[i, j - 1], spec[i, j], spec[i, j + 1]
    # Log-domain interpolation: MUSIC peaks are sharp, near-Gaussian in log.
    logs = np.log(np.maximum([left, center, right], 1e-300))
    offset = _parabolic_offset(logs[0], logs[1], logs[2])
    step = grid[k + 1] - grid[k] if offset >= 0 else grid[k] - grid[k - 1]
    return float(grid[k] + offset * step)


def merge_close_peaks(
    peaks: List[SpectrumPeak],
    min_aoa_sep_deg: float = 5.0,
    min_tof_sep_s: float = 10e-9,
) -> List[SpectrumPeak]:
    """Collapse peaks closer than the separation thresholds in *both* axes.

    Keeps the stronger peak of each close pair.  Peaks are assumed sorted
    strongest-first (as :func:`find_peaks_2d` returns them).
    """
    kept: List[SpectrumPeak] = []
    for peak in peaks:
        close = any(
            abs(peak.aoa_deg - k.aoa_deg) < min_aoa_sep_deg
            and abs(peak.tof_s - k.tof_s) < min_tof_sep_s
            for k in kept
        )
        if not close:
            kept.append(peak)
    return kept
