"""SpotFi's core algorithms (the paper's contribution).

Sub-modules follow the paper's structure:

* :mod:`repro.core.steering` — Eq. 1/2/6/7 steering vectors.
* :mod:`repro.core.smoothing` — Fig. 4 smoothed CSI matrix.
* :mod:`repro.core.sanitize` — Algorithm 1 ToF sanitization.
* :mod:`repro.core.music` — MUSIC noise subspace and 2-D pseudospectrum.
* :mod:`repro.core.peaks` — spectrum peak extraction.
* :mod:`repro.core.estimator` — per-packet joint (AoA, ToF) estimation.
* :mod:`repro.core.clustering` — GMM/k-means over multi-packet estimates.
* :mod:`repro.core.likelihood` — Eq. 8 direct-path likelihood.
* :mod:`repro.core.direct_path` — direct-path selection.
* :mod:`repro.core.localization` — Eq. 9 position solver.
* :mod:`repro.core.pipeline` — Algorithm 2 end to end.
"""

from repro.core.clustering import GaussianMixture, KMeans, PathCluster, cluster_estimates
from repro.core.direct_path import DirectPathEstimate, select_direct_path
from repro.core.estimator import JointEstimator, PathEstimate
from repro.core.likelihood import LikelihoodWeights, path_likelihoods
from repro.core.localization import ApObservation, LocalizationResult, Localizer
from repro.core.music import MusicConfig, music_spectrum, noise_subspace
from repro.core.pipeline import SpotFi, SpotFiConfig
from repro.core.sanitize import sanitize_csi, sanitize_phase
from repro.core.smoothing import SmoothingConfig, smooth_csi
from repro.core.steering import SteeringModel

__all__ = [
    "ApObservation",
    "DirectPathEstimate",
    "GaussianMixture",
    "JointEstimator",
    "KMeans",
    "LikelihoodWeights",
    "LocalizationResult",
    "Localizer",
    "MusicConfig",
    "PathCluster",
    "PathEstimate",
    "SmoothingConfig",
    "SpotFi",
    "SpotFiConfig",
    "SteeringModel",
    "cluster_estimates",
    "music_spectrum",
    "noise_subspace",
    "path_likelihoods",
    "sanitize_csi",
    "sanitize_phase",
    "select_direct_path",
    "smooth_csi",
]
