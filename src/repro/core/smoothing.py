"""Smoothed CSI matrix construction (paper Fig. 4).

SpotFi's "mathematical trick": slide a fixed sensor subarray (a block of
``sub_antennas`` consecutive antennas x ``sub_subcarriers`` consecutive
subcarriers) over the full M x N CSI matrix; each placement's CSI, stacked
antenna-major into a column, is a linear combination of the *same* steering
vectors (the subarray's) with placement-dependent gains.  Collecting all
placements as columns yields the smoothed matrix on which MUSIC applies.

For the Intel 5300 defaults (M=3, N=30, subarray 2 x 15) this is exactly
the paper's 30 x 30 smoothed CSI matrix: 16 subcarrier shifts x 2 antenna
shifts = 32 placements... the paper counts 30; we expose the full set of
placements (antenna shifts x subcarrier shifts) and the default config
reproduces the paper's 30 x 30 shape by using 15 subcarrier shifts
(see :class:`SmoothingConfig`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.contracts import contract
from repro.errors import ConfigurationError, CsiShapeError
from repro.wifi.csi import validate_csi_matrix


@dataclass(frozen=True)
class SmoothingConfig:
    """Shape of the sliding sensor subarray.

    Attributes
    ----------
    sub_antennas:
        Antennas per subarray (paper: 2 of 3).
    sub_subcarriers:
        Subcarriers per subarray (paper: 15 of 30).
    max_subcarrier_shifts:
        Cap on the number of subcarrier shifts used (0 = use all
        available).  The paper's Fig. 4 uses 15 subcarrier shifts with 2
        antenna shifts for a 30 x 30 matrix; all 16 available shifts would
        give 30 x 32, which works identically — the cap exists to
        reproduce the paper's exact construction.
    """

    sub_antennas: int = 2
    sub_subcarriers: int = 15
    max_subcarrier_shifts: int = 15

    def __post_init__(self) -> None:
        if self.sub_antennas < 1 or self.sub_subcarriers < 2:
            raise ConfigurationError(
                "subarray needs >= 1 antenna and >= 2 subcarriers, got "
                f"({self.sub_antennas}, {self.sub_subcarriers})"
            )
        if self.max_subcarrier_shifts < 0:
            raise ConfigurationError("max_subcarrier_shifts must be >= 0")

    @property
    def sensors_per_subarray(self) -> int:
        """Rows of the smoothed matrix."""
        return self.sub_antennas * self.sub_subcarriers

    def num_shifts(self, num_antennas: int, num_subcarriers: int) -> "tuple[int, int]":
        """(antenna shifts, subcarrier shifts) available on an M x N matrix."""
        ant = num_antennas - self.sub_antennas + 1
        sub = num_subcarriers - self.sub_subcarriers + 1
        if ant < 1 or sub < 1:
            raise CsiShapeError(
                f"subarray ({self.sub_antennas} x {self.sub_subcarriers}) does not "
                f"fit in CSI of shape ({num_antennas} x {num_subcarriers})"
            )
        if self.max_subcarrier_shifts:
            sub = min(sub, self.max_subcarrier_shifts)
        return ant, sub

    def num_columns(self, num_antennas: int, num_subcarriers: int) -> int:
        """Columns of the smoothed matrix (number of subarray placements)."""
        ant, sub = self.num_shifts(num_antennas, num_subcarriers)
        return ant * sub


#: The paper's Intel 5300 configuration: 2 x 15 subarray, 30 x 30 output.
PAPER_CONFIG = SmoothingConfig(sub_antennas=2, sub_subcarriers=15, max_subcarrier_shifts=15)


@contract(csi="(M,N)", returns="(S,C) complex128")
def smooth_csi(csi: np.ndarray, config: SmoothingConfig = PAPER_CONFIG) -> np.ndarray:
    """Build the smoothed CSI matrix of paper Fig. 4.

    Parameters
    ----------
    csi:
        CSI matrix (num_antennas, num_subcarriers), paper Eq. 5 layout.
    config:
        Subarray shape; the default reproduces the paper's 30 x 30 matrix
        for 3 x 30 input.

    Returns
    -------
    numpy.ndarray
        Complex matrix of shape
        (sub_antennas * sub_subcarriers, num_placements).  Column for
        placement (antenna shift i, subcarrier shift j) contains
        ``csi[i : i + sub_antennas, j : j + sub_subcarriers]`` flattened
        antenna-major, matching the steering-vector index order of Eq. 7.
        Placements iterate antenna-shift-major (all subcarrier shifts of
        antenna shift 0 first), matching Fig. 4's column order.
    """
    csi = validate_csi_matrix(csi)
    num_antennas, num_subcarriers = csi.shape
    ant_shifts, sub_shifts = config.num_shifts(num_antennas, num_subcarriers)
    rows = config.sensors_per_subarray
    out = np.empty((rows, ant_shifts * sub_shifts), dtype=np.complex128)
    col = 0
    for i in range(ant_shifts):
        for j in range(sub_shifts):
            block = csi[i : i + config.sub_antennas, j : j + config.sub_subcarriers]
            out[:, col] = block.reshape(-1)
            col += 1
    return out


@contract(csi="(M,N)", returns="(S,S) complex128")
def smoothed_covariance(
    csi: np.ndarray, config: SmoothingConfig = PAPER_CONFIG
) -> np.ndarray:
    """X X^H of the smoothed matrix — the input to MUSIC (Alg. 2 line 5)."""
    x = smooth_csi(csi, config)
    return x @ x.conj().T


@contract(returns="(S,C) complex128")
def smooth_csi_batch(
    csi_frames: np.ndarray, config: SmoothingConfig = PAPER_CONFIG
) -> np.ndarray:
    """Concatenate the smoothed matrices of several packets column-wise.

    Pooling placements across packets multiplies the number of independent
    measurement columns, which sharpens the covariance estimate; used by
    the multi-packet variant of the estimator.
    """
    frames = np.asarray(csi_frames)
    if frames.ndim != 3:
        raise CsiShapeError(
            f"expected (packets, antennas, subcarriers), got shape {frames.shape}"
        )
    return np.concatenate([smooth_csi(f, config) for f in frames], axis=1)
