"""Joint (AoA, ToF) estimation via shift invariance (ESPRIT / JADE).

The paper builds on the joint angle-delay estimation literature that
exploits *shift invariance* instead of spectral search (its refs [42, 43]:
van der Veen, Vanderveen & Paulraj).  This module implements that
alternative estimator on the same smoothed CSI matrix SpotFi uses:

* the sensor subarray is doubly shift-invariant — dropping the last
  subcarrier row and the first subcarrier row yields selections J1/J2 with
  ``J2 E_s = J1 E_s Psi_tau`` whose eigenvalues are ``Omega(tau_k)``;
  the analogous antenna-direction selection yields ``Phi(theta_k)``;
* solving both invariance equations in the least-squares sense and
  diagonalizing the ToF operator pairs each path's AoA with its ToF
  automatically (the AoA operator is transformed into the ToF operator's
  eigenbasis, where it is approximately diagonal).

Compared to the 2-D MUSIC search, ESPRIT is grid-free and an order of
magnitude faster per packet.  Two caveats: it is more sensitive to
coherent-path residual correlation, and the automatic pairing requires
the ToF eigenvalues to be *distinct* — two paths at the same delay
defeat the diagonalization regardless of angular separation (the
spectral search has no such failure mode).  ``EspritEstimator`` mirrors
``JointEstimator``'s interface
so it can drop into the pipeline (``SpotFiConfig(estimation="esprit")``)
and the ablation benchmark compares both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.estimator import PathEstimate, estimate_packet_task
from repro.core.music import MusicConfig, covariance, forward_backward_average
from repro.core.sanitize import sanitize_csi
from repro.core.smoothing import SmoothingConfig, smooth_csi
from repro.core.steering import SteeringModel
from repro.errors import EstimationError
from repro.wifi.csi import CsiTrace, validate_csi_matrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.runtime.executor import Executor


def _selection_indices(
    sub_antennas: int, sub_subcarriers: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Row-index selections (J1, J2) for both shift directions.

    Rows of the smoothed matrix are antenna-major: index = m * N + n.
    Returns ``(tau_j1, tau_j2, theta_j1, theta_j2)``.
    """
    m = np.arange(sub_antennas)
    n = np.arange(sub_subcarriers)
    grid_m, grid_n = np.meshgrid(m, n, indexing="ij")
    flat = (grid_m * sub_subcarriers + grid_n).ravel()
    idx = flat.reshape(sub_antennas, sub_subcarriers)
    tau_j1 = idx[:, :-1].ravel()
    tau_j2 = idx[:, 1:].ravel()
    theta_j1 = idx[:-1, :].ravel()
    theta_j2 = idx[1:, :].ravel()
    return tau_j1, tau_j2, theta_j1, theta_j2


@dataclass
class EspritEstimator:
    """Shift-invariance joint (AoA, ToF) estimator.

    Attributes
    ----------
    model:
        Steering model of the full array (e.g. 3 x 30 Intel 5300).
    smoothing:
        Subarray configuration (shared with the MUSIC path).
    music:
        Reused for its subspace parameters (eigenvalue threshold,
        max_paths, forward_backward); the grids are ignored.
    sanitize:
        Apply Algorithm 1 first.
    """

    model: SteeringModel
    smoothing: SmoothingConfig = field(default_factory=SmoothingConfig)
    music: MusicConfig = field(default_factory=MusicConfig)
    sanitize: bool = True

    def __post_init__(self) -> None:
        self._sub_model = self.model.subarray_model(
            self.smoothing.sub_antennas, self.smoothing.sub_subcarriers
        )
        self._selections = _selection_indices(
            self.smoothing.sub_antennas, self.smoothing.sub_subcarriers
        )

    @property
    def subarray_model(self) -> SteeringModel:
        return self._sub_model

    # ------------------------------------------------------------------
    def estimate_packet(
        self, csi: np.ndarray, packet_index: int = 0
    ) -> List[PathEstimate]:
        """Grid-free (AoA, ToF) estimates for one packet.

        Returns estimates sorted by descending path power (least-squares
        amplitude against the estimated steering vectors).
        """
        csi = validate_csi_matrix(csi)
        if csi.shape != (self.model.num_antennas, self.model.num_subcarriers):
            raise EstimationError(
                f"CSI shape {csi.shape} does not match the steering model "
                f"({self.model.num_antennas}, {self.model.num_subcarriers})"
            )
        if self.sanitize:
            csi = sanitize_csi(csi)
        x = smooth_csi(csi, self.smoothing)
        r = covariance(x)
        if self.music.forward_backward:
            r = forward_backward_average(r)
        eigenvalues, eigenvectors = np.linalg.eigh((r + r.conj().T) / 2.0)
        eigenvalues = eigenvalues[::-1]
        eigenvectors = eigenvectors[:, ::-1]
        if eigenvalues[0] <= 0:
            raise EstimationError("degenerate covariance (zero CSI?)")
        num_paths = int(
            np.sum(eigenvalues > self.music.eigenvalue_threshold_ratio * eigenvalues[0])
        )
        # Shift invariance needs J1 E_s full column rank: L cannot exceed
        # the smaller selection's row count nor make pinv ill-posed.
        tau_j1, tau_j2, theta_j1, theta_j2 = self._selections
        limit = min(self.music.max_paths, len(tau_j1) - 1, len(theta_j1) - 1)
        num_paths = int(np.clip(num_paths, 1, limit))
        e_signal = eigenvectors[:, :num_paths]

        f_tau = np.linalg.lstsq(e_signal[tau_j1], e_signal[tau_j2], rcond=None)[0]
        f_theta = np.linalg.lstsq(e_signal[theta_j1], e_signal[theta_j2], rcond=None)[0]

        # Diagonalize the ToF operator; read the AoA operator in the same
        # basis (automatic pairing).
        tau_eigs, t = np.linalg.eig(f_tau)
        try:
            t_inv = np.linalg.inv(t)
        except np.linalg.LinAlgError:
            raise EstimationError("ESPRIT pairing failed: defective ToF operator")
        theta_eigs = np.diag(t_inv @ f_theta @ t)

        estimates = []
        for omega, phi in zip(tau_eigs, theta_eigs):
            tof = self._tof_from_omega(omega)
            aoa = self._aoa_from_phi(phi)
            if aoa is None:
                continue
            estimates.append((aoa, tof))
        if not estimates:
            return []
        powers = self._path_powers(csi, estimates)
        results = [
            PathEstimate(
                aoa_deg=aoa, tof_s=tof, power=float(p), packet_index=packet_index
            )
            for (aoa, tof), p in zip(estimates, powers)
        ]
        results.sort(key=lambda e: -e.power)
        return results

    def estimate_trace(
        self, trace: CsiTrace, executor: Optional["Executor"] = None
    ) -> List[PathEstimate]:
        """Estimates pooled over every packet of a trace.

        ``executor`` mirrors :meth:`JointEstimator.estimate_trace` so the
        pipeline can fan per-packet ESPRIT across workers; None keeps the
        inline loop.
        """
        if executor is None:
            estimates: List[PathEstimate] = []
            for index, frame in enumerate(trace):
                estimates.extend(self.estimate_packet(frame.csi, packet_index=index))
            return estimates
        tasks = [(self, frame.csi, index) for index, frame in enumerate(trace)]
        # CSI is pickled once per task until the ROADMAP item 2 shared-memory
        # path lands; acceptable at trace sizes, tracked by BENCH_dist.json.
        per_packet = executor.map_ordered(  # repro: noqa REP013
            estimate_packet_task, tasks, stage="estimate"
        )
        return [estimate for packet in per_packet for estimate in packet]

    # ------------------------------------------------------------------
    def _tof_from_omega(self, omega: complex) -> float:
        """Invert Omega(tau) = exp(-j 2 pi f_delta tau), principal branch."""
        angle = np.angle(omega)  # (-pi, pi]
        return float(-angle / (2.0 * np.pi * self._sub_model.subcarrier_spacing_hz))

    def _aoa_from_phi(self, phi: complex) -> Optional[float]:
        """Invert Phi(theta) = exp(-j 2 pi d sin(theta) f / c)."""
        angle = np.angle(phi)
        from repro.constants import SPEED_OF_LIGHT

        sin_theta = -angle * SPEED_OF_LIGHT / (
            2.0
            * np.pi
            * self._sub_model.antenna_spacing_m
            * self._sub_model.carrier_freq_hz
        )
        if abs(sin_theta) > 1.0:
            return None  # outside the visible region: a spurious mode
        return float(np.degrees(np.arcsin(sin_theta)))

    def _path_powers(
        self, csi: np.ndarray, estimates: Sequence[Tuple[float, float]]
    ) -> np.ndarray:
        """Least-squares path powers against the full-array steering matrix."""
        aoas = [a for a, _ in estimates]
        tofs = [t for _, t in estimates]
        a = self.model.steering_matrix(aoas, tofs)
        gains, *_ = np.linalg.lstsq(a, csi.reshape(-1), rcond=None)
        return np.abs(gains) ** 2
