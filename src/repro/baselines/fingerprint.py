"""RSSI fingerprinting baseline (the paper's Sec. 2 second category).

Fingerprinting systems (Horus [14] and kin) war-drive the space once,
recording each location's vector of per-AP RSSIs, then localize by
matching a target's RSSI vector against the database — "around 0.6 m of
median accuracy" at the cost of "an expensive and recurring fingerprinting
operation any time there are changes in the environment".

This implementation is the standard probabilistic/kNN formulation:

* **training**: a survey grid over the floorplan; at each point, the mean
  and spread of each AP's RSSI over a short burst;
* **matching**: weighted k-nearest-neighbors in RSSI space (Gaussian
  per-AP likelihoods), position = likelihood-weighted centroid of the
  best matches.

Used by ``bench_related_work.py`` to reproduce the paper's deploy-vs-
accuracy landscape: fingerprinting beats plain RSSI trilateration but
needs the survey; SpotFi matches it with zero war-driving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.channel.csi_model import ChannelSimulator
from repro.errors import ConfigurationError, LocalizationError, ReproError
from repro.geom.points import Point, PointLike, as_point
from repro.wifi.arrays import UniformLinearArray


@dataclass(frozen=True)
class Fingerprint:
    """One survey point: location + per-AP RSSI statistics."""

    position: Point
    mean_rssi_dbm: Tuple[float, ...]
    std_rssi_db: Tuple[float, ...]


@dataclass
class FingerprintDatabase:
    """The war-driven radio map.

    Attributes
    ----------
    aps:
        The AP arrays the fingerprints index (order fixed).
    fingerprints:
        Survey points.
    """

    aps: List[UniformLinearArray]
    fingerprints: List[Fingerprint] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.fingerprints)

    def add(self, position: PointLike, rssi_samples_dbm: np.ndarray) -> Fingerprint:
        """Record one survey point from (num_samples, num_aps) RSSI readings."""
        samples = np.asarray(rssi_samples_dbm, dtype=float)
        if samples.ndim != 2 or samples.shape[1] != len(self.aps):
            raise ConfigurationError(
                f"expected (num_samples, {len(self.aps)}) RSSI array, got "
                f"{samples.shape}"
            )
        fingerprint = Fingerprint(
            position=as_point(position),
            mean_rssi_dbm=tuple(float(v) for v in samples.mean(axis=0)),
            std_rssi_db=tuple(
                float(max(v, 0.5)) for v in samples.std(axis=0)
            ),
        )
        self.fingerprints.append(fingerprint)
        return fingerprint


def survey(
    simulator: ChannelSimulator,
    aps: Sequence[UniformLinearArray],
    bounds: Tuple[float, float, float, float],
    grid_step_m: float = 1.0,
    samples_per_point: int = 5,
    rng: Optional[np.random.Generator] = None,
) -> FingerprintDatabase:
    """Simulate the war-drive: record RSSI fingerprints on a survey grid.

    Grid points with no propagation to an AP record -120 dBm for it
    (below any real reading).  This is the expensive, environment-specific
    step SpotFi exists to avoid.
    """
    if grid_step_m <= 0:
        raise ConfigurationError("grid step must be positive")
    rng = np.random.default_rng() if rng is None else rng
    database = FingerprintDatabase(aps=list(aps))
    x0, y0, x1, y1 = bounds
    for x in np.arange(x0 + grid_step_m / 2, x1, grid_step_m):
        for y in np.arange(y0 + grid_step_m / 2, y1, grid_step_m):
            samples = np.full((samples_per_point, len(aps)), -120.0)
            reachable = False
            for j, ap in enumerate(aps):
                try:
                    profile = simulator.profile((float(x), float(y)), ap)
                except ReproError:
                    # An AP with no propagation path to this grid point
                    # simply contributes no fingerprint sample.
                    continue
                if profile.num_paths == 0:
                    continue
                base = profile.rssi_dbm(simulator.tx_power_dbm)
                if not np.isfinite(base):
                    continue
                reachable = True
                samples[:, j] = base + rng.normal(
                    0.0, simulator.rssi_jitter_db or 1.0, size=samples_per_point
                )
            if reachable:
                database.add((float(x), float(y)), samples)
    if not database.fingerprints:
        raise ConfigurationError("survey produced no reachable fingerprints")
    return database


@dataclass
class FingerprintLocalizer:
    """Weighted-kNN matcher over a fingerprint database.

    Attributes
    ----------
    database:
        The radio map from :func:`survey` (or real measurements).
    k:
        Neighbors averaged for the position estimate.
    """

    database: FingerprintDatabase
    k: int = 4

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError("k must be >= 1")
        if len(self.database) == 0:
            raise LocalizationError("fingerprint database is empty")

    def locate(self, rssi_dbm: Sequence[float]) -> Point:
        """Match an observed per-AP RSSI vector to a position.

        Missing observations (NaN) are skipped per-AP; at least two
        finite readings are required.
        """
        observed = np.asarray(rssi_dbm, dtype=float)
        if observed.shape != (len(self.database.aps),):
            raise ConfigurationError(
                f"expected {len(self.database.aps)} RSSI values, got "
                f"{observed.shape}"
            )
        mask = np.isfinite(observed)
        if mask.sum() < 2:
            raise LocalizationError("need >= 2 finite RSSI readings to match")
        log_likelihoods = []
        for fp in self.database.fingerprints:
            mean = np.asarray(fp.mean_rssi_dbm)[mask]
            std = np.asarray(fp.std_rssi_db)[mask]
            resid = (observed[mask] - mean) / std
            log_likelihoods.append(float(-0.5 * np.sum(resid**2) - np.sum(np.log(std))))
        order = np.argsort(log_likelihoods)[::-1][: self.k]
        top = np.asarray(log_likelihoods)[order]
        weights = np.exp(top - top.max())
        weights /= weights.sum()
        xs = np.array([self.database.fingerprints[i].position.x for i in order])
        ys = np.array([self.database.fingerprints[i].position.y for i in order])
        return Point(float(weights @ xs), float(weights @ ys))
