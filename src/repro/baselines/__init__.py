"""Baselines the paper compares against.

* :mod:`repro.baselines.music_aoa` — antenna-only MUSIC (Phaser [8] /
  ArrayTrack [1] style), the paper's "MUSIC-AoA" (Sec. 4.4.1).
* :mod:`repro.baselines.arraytrack` — the "practical implementation of
  ArrayTrack" with three antennas used throughout Sec. 4.3.
* :mod:`repro.baselines.selection` — LTEye (min ToF), CUPID (max power)
  and Oracle direct-path selectors (Sec. 4.4.2).
* :mod:`repro.baselines.rssi_loc` — RSSI trilateration (Sec. 2 context).
"""

from repro.baselines.arraytrack import ArrayTrack
from repro.baselines.fingerprint import (
    FingerprintDatabase,
    FingerprintLocalizer,
    survey,
)
from repro.baselines.music_aoa import MusicAoaConfig, MusicAoaEstimator
from repro.baselines.rssi_loc import RssiLocalizer
from repro.baselines.selection import (
    select_cupid,
    select_lteye,
    select_oracle,
    select_spotfi,
)

__all__ = [
    "ArrayTrack",
    "FingerprintDatabase",
    "FingerprintLocalizer",
    "MusicAoaConfig",
    "MusicAoaEstimator",
    "RssiLocalizer",
    "survey",
    "select_cupid",
    "select_lteye",
    "select_oracle",
    "select_spotfi",
]
