"""Direct-path selection baselines — paper Sec. 4.4.2.

All four selectors operate on the *same* clusters produced by SpotFi's
super-resolution estimates ("all of these schemes are working with the AoA
estimates from SpotFi's super-resolution algorithm"):

* **LTEye** [6]: the cluster with the smallest (relative) mean ToF.
* **CUPID** [23]: the cluster with the largest MUSIC spectrum power.
* **Oracle**: the cluster whose AoA is closest to the ground truth.
* **SpotFi**: the Eq. 8 likelihood winner (re-exported for symmetry).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.clustering import PathCluster
from repro.core.direct_path import DirectPathEstimate, select_direct_path
from repro.core.likelihood import DEFAULT_WEIGHTS, LikelihoodWeights, path_likelihoods
from repro.errors import ClusteringError
from repro.geom.points import angle_diff_deg


def _require_clusters(clusters: Sequence[PathCluster]) -> "list[PathCluster]":
    cluster_list = list(clusters)
    if not cluster_list:
        raise ClusteringError("no clusters to select from")
    return cluster_list


def _estimate_from(cluster: PathCluster, likelihood: float) -> DirectPathEstimate:
    return DirectPathEstimate(
        aoa_deg=cluster.mean_aoa_deg,
        tof_s=cluster.mean_tof_s,
        likelihood=likelihood,
        cluster=cluster,
    )


def select_lteye(clusters: Sequence[PathCluster]) -> DirectPathEstimate:
    """LTEye rule: smallest mean ToF is the direct path.

    As the paper notes, the lack of synchronization adds the same delay to
    all paths, so the smallest *estimated* ToF still identifies the path
    with the smallest actual ToF.
    """
    cluster_list = _require_clusters(clusters)
    winner = min(cluster_list, key=lambda c: c.mean_tof_s)
    return _estimate_from(winner, likelihood=1.0)


def select_cupid(clusters: Sequence[PathCluster]) -> DirectPathEstimate:
    """CUPID rule: largest MUSIC spectrum value is the direct path."""
    cluster_list = _require_clusters(clusters)
    winner = max(cluster_list, key=lambda c: c.mean_power)
    return _estimate_from(winner, likelihood=1.0)


def select_oracle(
    clusters: Sequence[PathCluster], true_aoa_deg: float
) -> DirectPathEstimate:
    """Oracle rule: the cluster AoA closest to the ground-truth direct AoA."""
    cluster_list = _require_clusters(clusters)
    winner = min(
        cluster_list,
        key=lambda c: abs(angle_diff_deg(c.mean_aoa_deg, true_aoa_deg)),
    )
    return _estimate_from(winner, likelihood=1.0)


def select_spotfi(
    clusters: Sequence[PathCluster],
    weights: LikelihoodWeights = DEFAULT_WEIGHTS,
) -> DirectPathEstimate:
    """SpotFi's Eq. 8 likelihood selection (same as core.direct_path)."""
    return select_direct_path(clusters, weights)


#: Selector registry used by the Fig. 8(b) benchmark.
SELECTORS = {
    "spotfi": select_spotfi,
    "lteye": select_lteye,
    "cupid": select_cupid,
}
