"""Antenna-only MUSIC AoA estimation — the paper's "MUSIC-AoA" baseline.

This is the AoA algorithm of Phaser [8] / ArrayTrack [1] constrained to a
commodity 3-antenna NIC (paper Sec. 3.1.1 and 4.4.1): the measurement
matrix is the raw CSI (antennas x subcarriers), each subcarrier providing
one snapshot of the antenna array; MUSIC runs on the (M x M) covariance
with only the AoA-induced inter-antenna phases modeled.  With M = 3 at
most 2 paths can be resolved — the limitation SpotFi's joint estimation
removes.

Forward-backward averaging and antenna-domain spatial smoothing (the [9]
technique ArrayTrack uses) are implemented as options; smoothing trades
aperture for decorrelation of coherent multipath.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.core.indexcache import grid_range, identity
from repro.core.music import MusicConfig, mdl_signal_dimension
from repro.core.peaks import SpectrumPeak
from repro.core.sanitize import sanitize_csi
from repro.core.steering import SteeringModel
from repro.errors import ConfigurationError, EstimationError
from repro.wifi.csi import CsiTrace, validate_csi_matrix


@dataclass(frozen=True)
class MusicAoaConfig:
    """Configuration of the antenna-only MUSIC estimator.

    Attributes
    ----------
    aoa_grid_deg:
        (min, max, step) AoA search grid.
    eigenvalue_threshold_ratio:
        Noise-subspace threshold, as in the joint estimator.
    forward_backward:
        Apply forward-backward covariance averaging.
    spatial_smoothing_subarray:
        Antenna-subarray size for spatial smoothing (0 disables; 2 is the
        only useful value for M = 3).
    max_peaks:
        Maximum AoA peaks returned.
    """

    aoa_grid_deg: Tuple[float, float, float] = (-90.0, 90.0, 1.0)
    eigenvalue_threshold_ratio: float = 0.03
    forward_backward: bool = True
    spatial_smoothing_subarray: int = 0
    max_peaks: int = 2
    min_rel_height_db: float = 20.0

    def aoa_grid(self) -> np.ndarray:
        lo, hi, step = self.aoa_grid_deg
        return grid_range(lo, hi + step / 2, step)


@dataclass
class MusicAoaEstimator:
    """MUSIC over the antenna dimension only.

    Attributes
    ----------
    model:
        Steering model of the physical array (num_subcarriers is unused by
        the antenna-domain spectrum but kept for shape validation).
    config:
        Estimator options.
    sanitize:
        Apply Algorithm 1 first.  Irrelevant for pure-AoA MUSIC in theory
        (the STO ramp is antenna-invariant and cancels in the covariance),
        but kept for exact parity with the SpotFi pipeline's input.
    """

    model: SteeringModel
    config: MusicAoaConfig = field(default_factory=MusicAoaConfig)
    sanitize: bool = False

    def estimate_packet(self, csi: np.ndarray) -> List[SpectrumPeak]:
        """AoA peaks for one packet, strongest first."""
        spectrum, grid = self.spectrum(csi)
        return self._peaks(spectrum, grid)

    def spectrum(self, csi: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(1-D pseudospectrum, AoA grid) for one packet."""
        csi = validate_csi_matrix(csi)
        if csi.shape[0] != self.model.num_antennas:
            raise EstimationError(
                f"CSI has {csi.shape[0]} antennas, model expects "
                f"{self.model.num_antennas}"
            )
        if self.sanitize:
            csi = sanitize_csi(csi)
        cov, num_antennas = self._covariance(csi)
        eigenvalues, eigenvectors = np.linalg.eigh((cov + cov.conj().T) / 2.0)
        eigenvalues = eigenvalues[::-1]
        eigenvectors = eigenvectors[:, ::-1]
        lam_max = float(eigenvalues[0])
        if lam_max <= 0:
            raise EstimationError("degenerate covariance (zero CSI?)")
        num_signals = int(
            np.sum(eigenvalues > self.config.eigenvalue_threshold_ratio * lam_max)
        )
        num_signals = int(np.clip(num_signals, 1, num_antennas - 1))
        e_noise = eigenvectors[:, num_signals:]
        grid = self.config.aoa_grid()
        sub_model = self.model.subarray_model(num_antennas, 1)
        steering = sub_model.antenna_vector(grid)  # (A, M')
        proj = steering.conj() @ e_noise  # (A, K)
        denom = np.maximum(np.sum(np.abs(proj) ** 2, axis=1) / num_antennas, 1e-18)
        return 1.0 / denom, grid

    def _covariance(self, csi: np.ndarray) -> Tuple[np.ndarray, int]:
        """Antenna covariance with optional smoothing; returns (R, M')."""
        m = csi.shape[0]
        sub = self.config.spatial_smoothing_subarray
        if sub:
            if not 2 <= sub <= m:
                raise ConfigurationError(
                    f"spatial smoothing subarray must be in [2, {m}], got {sub}"
                )
            blocks = [csi[i : i + sub, :] for i in range(m - sub + 1)]
            x = np.concatenate(blocks, axis=1)
            m = sub
        else:
            x = csi
        cov = x @ x.conj().T
        if self.config.forward_backward:
            exchange = identity(m)[::-1]
            cov = (cov + exchange @ cov.conj() @ exchange) / 2.0
        return cov, m

    def _peaks(self, spectrum: np.ndarray, grid: np.ndarray) -> List[SpectrumPeak]:
        # 1-D local maxima (interior points only; the border rule of the
        # 2-D finder applies here too).
        interior = (spectrum[1:-1] >= spectrum[:-2]) & (spectrum[1:-1] >= spectrum[2:])
        idx = np.nonzero(interior)[0] + 1
        if idx.size == 0:
            # Monotone spectrum: fall back to the global maximum.
            best = int(np.argmax(spectrum))
            return [SpectrumPeak(float(grid[best]), 0.0, float(spectrum[best]))]
        order = idx[np.argsort(spectrum[idx])[::-1]]
        strongest = spectrum[order[0]]
        floor = strongest * 10.0 ** (-self.config.min_rel_height_db / 10.0)
        peaks = []
        for i in order[: self.config.max_peaks]:
            if spectrum[i] < floor:
                break
            peaks.append(SpectrumPeak(float(grid[i]), 0.0, float(spectrum[i])))
        return peaks

    # ------------------------------------------------------------------
    def estimate_trace_best(self, trace: CsiTrace) -> List[float]:
        """Strongest-peak AoA per packet over a trace."""
        aoas = []
        for frame in trace:
            peaks = self.estimate_packet(frame.csi)
            if peaks:
                aoas.append(peaks[0].aoa_deg)
        return aoas

    def estimate_trace_all(self, trace: CsiTrace) -> List[float]:
        """Every peak AoA over all packets of a trace."""
        aoas = []
        for frame in trace:
            aoas.extend(p.aoa_deg for p in self.estimate_packet(frame.csi))
        return aoas
