"""RSSI-only trilateration baseline (the paper's Sec. 2 "RSSI based
approaches" context: median accuracy 2-4 m).

Converts each AP's RSSI into a distance estimate with a log-distance model
and finds the position minimizing the squared range residuals.  The model
parameters can be fixed a priori or profiled out per candidate exactly as
the full localizer does — the latter mirrors deployments with unknown
transmit power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.channel.pathloss import LogDistancePathLoss
from repro.errors import LocalizationError
from repro.geom.points import Point


@dataclass(frozen=True)
class RssiObservation:
    """One AP's contribution: its position and the measured RSSI."""

    position: Tuple[float, float]
    rssi_dbm: float


@dataclass
class RssiLocalizer:
    """Grid-search RSSI trilateration.

    Attributes
    ----------
    bounds:
        (x0, y0, x1, y1) search rectangle.
    grid_step_m:
        Grid resolution.
    path_loss:
        Fixed propagation model, or None to profile (P0, gamma) out per
        candidate (recommended; transmit power is rarely known).
    """

    bounds: Tuple[float, float, float, float]
    grid_step_m: float = 0.25
    path_loss: Optional[LogDistancePathLoss] = None

    def locate(self, observations: Sequence[RssiObservation]) -> Point:
        """Position minimizing squared RSSI residuals over the grid."""
        obs = [o for o in observations if np.isfinite(o.rssi_dbm)]
        min_needed = 3 if self.path_loss is None else 2
        if len(obs) < min_needed:
            raise LocalizationError(
                f"RSSI trilateration needs >= {min_needed} finite RSSI "
                f"observations, got {len(obs)}"
            )
        x0, y0, x1, y1 = self.bounds
        xs = np.arange(x0 + self.grid_step_m / 2, x1, self.grid_step_m)
        ys = np.arange(y0 + self.grid_step_m / 2, y1, self.grid_step_m)
        gx, gy = np.meshgrid(xs, ys, indexing="ij")
        candidates = np.stack([gx.ravel(), gy.ravel()], axis=1)  # (G, 2)
        positions = np.array([o.position for o in obs])  # (R, 2)
        rssi = np.array([o.rssi_dbm for o in obs])  # (R,)
        dist = np.maximum(
            np.linalg.norm(candidates[:, None, :] - positions[None, :, :], axis=2),
            1e-3,
        )
        if self.path_loss is not None:
            predicted = self.path_loss.rssi_dbm(dist)  # (G, R)
        else:
            x = -10.0 * np.log10(dist)
            x_mean = x.mean(axis=1, keepdims=True)
            p_mean = rssi.mean()
            denom = np.sum((x - x_mean) ** 2, axis=1)
            gamma = np.where(
                denom > 1e-12,
                np.sum((x - x_mean) * (rssi[None, :] - p_mean), axis=1)
                / np.where(denom == 0, 1, denom),
                2.5,
            )
            gamma = np.clip(gamma, 1.5, 6.0)
            p0 = p_mean - gamma * x_mean[:, 0]
            predicted = p0[:, None] + gamma[:, None] * x
        cost = np.sum((predicted - rssi[None, :]) ** 2, axis=1)
        best = int(np.argmin(cost))
        return Point(float(candidates[best, 0]), float(candidates[best, 1]))
