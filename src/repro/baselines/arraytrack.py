"""The "practical implementation of ArrayTrack" the paper compares with.

Paper Sec. 4.1: "we compare SpotFi with practical implementation of
ArrayTrack based on CSI from a WiFi NIC with three antennas and no further
hardware modifications [8]" — i.e. the Phaser localization application:
antenna-only MUSIC per packet, the strongest spectrum direction as the
direct-path AoA (energy-based selection), triangulation over APs.

We reuse the same localization backend (Eq. 9 restricted to AoA terms with
equal AP weights) so the comparison isolates the estimation/selection
differences, exactly as the paper's evaluation does (it feeds "the same
data" to both systems).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.music_aoa import MusicAoaConfig, MusicAoaEstimator
from repro.core.localization import ApObservation, LocalizationResult, Localizer
from repro.core.steering import SteeringModel
from repro.errors import EstimationError, LocalizationError
from repro.wifi.arrays import UniformLinearArray
from repro.wifi.csi import CsiTrace
from repro.wifi.ofdm import OfdmGrid


@dataclass(frozen=True)
class ArrayTrackReport:
    """Per-AP outcome of the ArrayTrack baseline."""

    array: UniformLinearArray
    aoa_deg: float
    num_packets_used: int

    @property
    def usable(self) -> bool:
        return bool(np.isfinite(self.aoa_deg))


class ArrayTrack:
    """3-antenna ArrayTrack/Phaser-style localizer.

    Parameters
    ----------
    grid:
        OFDM grid of the CSI (only the carrier matters for pure AoA).
    bounds:
        Localization search rectangle.
    config:
        MUSIC-AoA options.
    packets_per_fix:
        Packets used per fix (kept equal to SpotFi's for fairness).
    grid_step_m:
        Localization grid resolution.
    """

    def __init__(
        self,
        grid: OfdmGrid,
        bounds: Tuple[float, float, float, float],
        config: Optional[MusicAoaConfig] = None,
        packets_per_fix: int = 40,
        grid_step_m: float = 0.25,
    ) -> None:
        self.grid = grid
        self.bounds = bounds
        self.config = config or MusicAoaConfig()
        self.packets_per_fix = packets_per_fix
        self.grid_step_m = grid_step_m
        self._estimators: dict = {}

    def estimator_for(self, array: UniformLinearArray) -> MusicAoaEstimator:
        key = (array.num_antennas, array.spacing_m)
        if key not in self._estimators:
            model = SteeringModel.for_grid(
                self.grid,
                num_antennas=array.num_antennas,
                antenna_spacing_m=array.spacing_m,
            )
            self._estimators[key] = MusicAoaEstimator(model=model, config=self.config)
        return self._estimators[key]

    # ------------------------------------------------------------------
    def process_ap(self, array: UniformLinearArray, trace: CsiTrace) -> ArrayTrackReport:
        """Direct-path AoA for one AP.

        ArrayTrack accumulates per-packet MUSIC pseudospectra and takes the
        dominant direction of the aggregate (its "spectrum synthesis").  We
        average the per-packet spectra in the log domain (geometric mean),
        which rewards directions that are consistently strong across
        packets, then pick the strongest interior peak.
        """
        used = trace[: self.packets_per_fix]
        estimator = self.estimator_for(array)
        log_sum = None
        grid = None
        num_used = 0
        for frame in used:
            try:
                spectrum, grid = estimator.spectrum(frame.csi)
            except EstimationError:
                continue
            log_spec = np.log(np.maximum(spectrum, 1e-18))
            log_sum = log_spec if log_sum is None else log_sum + log_spec
            num_used += 1
        if log_sum is None or grid is None:
            return ArrayTrackReport(array=array, aoa_deg=float("nan"), num_packets_used=0)
        aggregate = log_sum / num_used
        # Strongest interior local maximum of the aggregate spectrum.
        interior = (aggregate[1:-1] >= aggregate[:-2]) & (
            aggregate[1:-1] >= aggregate[2:]
        )
        candidates = np.nonzero(interior)[0] + 1
        if candidates.size == 0:
            best = int(np.argmax(aggregate))
        else:
            best = int(candidates[np.argmax(aggregate[candidates])])
        return ArrayTrackReport(
            array=array,
            aoa_deg=float(grid[best]),
            num_packets_used=num_used,
        )

    def locate(
        self, ap_traces: Sequence[Tuple[UniformLinearArray, CsiTrace]]
    ) -> LocalizationResult:
        """Triangulate from per-AP strongest-direction AoAs."""
        reports = [self.process_ap(array, trace) for array, trace in ap_traces]
        observations = [
            ApObservation(
                array=r.array,
                aoa_deg=r.aoa_deg,
                rssi_dbm=float("nan"),
                likelihood=1.0,
            )
            for r in reports
            if r.usable
        ]
        if len(observations) < 2:
            raise LocalizationError(
                f"ArrayTrack: only {len(observations)} APs produced AoA estimates"
            )
        localizer = Localizer(
            bounds=self.bounds,
            grid_step_m=self.grid_step_m,
            use_likelihood_weights=False,
        )
        return localizer.locate_aoa_only(observations)
