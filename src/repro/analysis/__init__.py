"""Repo-specific static analysis: lint rules, shape contracts, typing gate.

Three layers keep the pipeline's unwritten conventions written down and
machine-checked:

* :mod:`repro.analysis.rules` — REP001–REP007 and REP010 AST lint
  rules encoding this repo's invariants (seeded RNG, typed error
  accounting, no mutable defaults, tracer-owned clocks, tolerance
  float compares, picklable pool tasks, honest ``__all__``, canonical
  tracer stage names).
* :mod:`repro.analysis.contracts` — the :func:`contract` decorator:
  runtime ndarray shape/dtype validation, enabled by
  ``REPRO_CONTRACTS=1`` and compiled to a no-op otherwise; plus
  :mod:`repro.analysis.contracts_static` cross-checks (REP008/REP009).
* :mod:`repro.analysis.typegate` — the strict typing gate (mypy when
  available, AST annotation-coverage fallback) with a checked-in
  baseline so only *new* violations fail CI.

Run everything with ``python -m repro.analysis --strict src/repro``.
"""

from repro.analysis.contracts import (
    apply_contract,
    contract,
    contracts_enabled,
    parse_spec,
)
from repro.analysis.contracts_static import check_contracts
from repro.analysis.findings import Finding, render_json, render_text
from repro.analysis.rules import DEFAULT_RULES, Linter, Rule, SourceFile
from repro.analysis.runner import AnalysisReport, run_analysis
from repro.analysis.typegate import STRICT_PACKAGES, collect_typing_findings, gate

__all__ = [
    "AnalysisReport",
    "DEFAULT_RULES",
    "Finding",
    "Linter",
    "Rule",
    "SourceFile",
    "STRICT_PACKAGES",
    "apply_contract",
    "check_contracts",
    "collect_typing_findings",
    "contract",
    "contracts_enabled",
    "gate",
    "parse_spec",
    "render_json",
    "render_text",
    "run_analysis",
]
