"""The strict typing gate (pass 3 of ``python -m repro.analysis``).

Preferred engine: ``mypy --strict`` over ``src/repro`` when mypy is
importable.  The container/CI image may not ship mypy, so a built-in
AST fallback enforces the load-bearing subset of strictness that needs
no type inference: every function in the gate's scope must annotate
every parameter *and* its return type (mypy's
``--disallow-untyped-defs`` / ``--disallow-incomplete-defs``).

Gating is baseline-driven: a checked-in ``typing-baseline.txt`` lists
the historical violations (line-number-free keys, so unrelated edits
don't churn it), and the gate fails only on findings *not* in the
baseline.  Entries under the strict packages (``repro.core``,
``repro.runtime``, ``repro.obs``, ``repro.faults``,
``repro.analysis``) are ignored when loading, so those packages can
never hide behind the baseline — they must be clean.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import SourceFile, iter_python_files

RULE_PARAM = "TYP001"
RULE_RETURN = "TYP002"
RULE_MYPY = "TYP100"

#: Packages that must pass the gate with zero findings (no baseline).
STRICT_PACKAGES: Tuple[str, ...] = (
    "repro/core",
    "repro/runtime",
    "repro/obs",
    "repro/faults",
    "repro/analysis",
    "repro/dist",
    "repro/estimators",
    "repro/channel",
    "repro/io",
    "repro/mobility",
)

DEFAULT_BASELINE = "typing-baseline.txt"


def in_strict_package(path: str) -> bool:
    """True when ``path`` falls under a package that may not be baselined."""
    normalized = path.replace("\\", "/")
    return any(f"{pkg}/" in normalized or normalized.endswith(f"{pkg}.py") for pkg in STRICT_PACKAGES)


def _missing_annotations(module: SourceFile) -> Iterable[Finding]:
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        params = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        if args.vararg is not None:
            params.append(args.vararg)
        if args.kwarg is not None:
            params.append(args.kwarg)
        for index, param in enumerate(params):
            if index == 0 and param.arg in {"self", "cls"}:
                continue
            if param.annotation is None:
                yield Finding(
                    path=module.path,
                    line=node.lineno,
                    rule_id=RULE_PARAM,
                    message=f"`{node.name}()` parameter {param.arg!r} lacks a type annotation",
                    hint="annotate (use numpy.typing.NDArray for arrays)",
                )
        if node.returns is None:
            yield Finding(
                path=module.path,
                line=node.lineno,
                rule_id=RULE_RETURN,
                message=f"`{node.name}()` lacks a return annotation",
                hint="annotate the return type (-> None for procedures)",
            )


def _mypy_available() -> bool:
    try:
        import mypy.api  # noqa: F401
    except ImportError:
        return False
    return True


def _run_mypy(paths: Sequence[str]) -> List[Finding]:
    from mypy import api

    stdout, _, _ = api.run(
        ["--strict", "--no-error-summary", "--show-error-codes", *paths]
    )
    findings: List[Finding] = []
    for line in stdout.splitlines():
        parts = line.split(":", 2)
        if len(parts) < 3 or not parts[1].strip().isdigit():
            continue
        findings.append(
            Finding(
                path=parts[0].strip(),
                line=int(parts[1]),
                rule_id=RULE_MYPY,
                message=parts[2].strip(),
                hint="",
            )
        )
    return findings


def collect_typing_findings(paths: Sequence[str], engine: str = "auto") -> List[Finding]:
    """All typing violations in ``paths`` using the best available engine.

    ``engine``: ``"auto"`` (mypy when importable, else fallback),
    ``"mypy"``, or ``"fallback"``.
    """
    if engine == "mypy" or (engine == "auto" and _mypy_available()):
        return _run_mypy(list(paths))
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        try:
            module = SourceFile.parse(path)
        except SyntaxError:
            continue  # the lint pass reports syntax errors
        for finding in _missing_annotations(module):
            if not module.suppressed(finding.rule_id, finding.line):
                findings.append(finding)
    return sorted(findings)


def load_baseline(path: str) -> Set[str]:
    """Baseline keys from ``path``; strict-package entries are dropped."""
    baseline_file = Path(path)
    if not baseline_file.exists():
        return set()
    keys: Set[str] = set()
    for line in baseline_file.read_text().splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if in_strict_package(line.split("::", 1)[0]):
            continue  # strict packages may never hide behind the baseline
        keys.add(line)
    return keys


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Write the baseline file from current findings; returns entry count."""
    keys = sorted(
        {f.baseline_key() for f in findings if not in_strict_package(f.path)}
    )
    header = (
        "# repro.analysis typing-gate baseline — known pre-existing violations.\n"
        "# The gate fails only on findings NOT listed here.  Strict packages\n"
        "# (repro.core/runtime/obs/faults/analysis) are never baselined.\n"
        "# Regenerate: python -m repro.analysis --typing --update-baseline src/repro\n"
    )
    Path(path).write_text(header + "\n".join(keys) + ("\n" if keys else ""))
    return len(keys)


def gate(
    paths: Sequence[str],
    baseline_path: str = DEFAULT_BASELINE,
    engine: str = "auto",
) -> Tuple[List[Finding], List[Finding]]:
    """Run the typing gate.

    Returns ``(new, baselined)``: findings that fail the gate vs. those
    excused by the baseline file.
    """
    findings = collect_typing_findings(paths, engine=engine)
    baseline = load_baseline(baseline_path)
    new = [f for f in findings if f.baseline_key() not in baseline]
    excused = [f for f in findings if f.baseline_key() in baseline]
    return new, excused
