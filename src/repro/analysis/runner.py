"""Orchestrates the analysis passes and the CLI exit code.

Passes:

1. **lint** — the REP001–REP007 and REP010 AST rules
   (:mod:`repro.analysis.rules`).
2. **contracts** — REP008/REP009 static contract validation
   (:mod:`repro.analysis.contracts_static`).
3. **typing** — the strict typing gate with its checked-in baseline
   (:mod:`repro.analysis.typegate`); runs only with ``--strict`` or
   ``--typing``.
4. **flow** — the whole-program pass: call graph, taint propagation,
   and the REP011–REP018 rule families
   (:mod:`repro.analysis.flow`); runs with ``--flow`` or ``--strict``.

Any non-baselined finding makes :func:`run_analysis` report failure
(exit code 1 from the CLI); a clean tree exits 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.contracts_static import check_contracts
from repro.analysis.findings import Finding, render_json, render_text, sort_findings
from repro.analysis.rules import DEFAULT_RULES, Linter, Rule
from repro.analysis.typegate import DEFAULT_BASELINE, gate


@dataclass
class AnalysisReport:
    """Aggregated result of one analysis run."""

    lint: List[Finding] = field(default_factory=list)
    contracts: List[Finding] = field(default_factory=list)
    typing_new: List[Finding] = field(default_factory=list)
    typing_baselined: List[Finding] = field(default_factory=list)
    flow: List[Finding] = field(default_factory=list)

    @property
    def failures(self) -> List[Finding]:
        """Findings that fail the run (baselined typing findings don't)."""
        return sort_findings([*self.lint, *self.contracts, *self.typing_new, *self.flow])

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self, fmt: str = "text") -> str:
        if fmt == "json":
            return render_json(self.failures)
        lines: List[str] = []
        if self.failures:
            lines.append(render_text(self.failures))
        summary = (
            f"repro.analysis: {len(self.lint)} lint, "
            f"{len(self.contracts)} contract, "
            f"{len(self.flow)} flow, "
            f"{len(self.typing_new)} typing finding(s)"
        )
        if self.typing_baselined:
            summary += f" ({len(self.typing_baselined)} baselined)"
        lines.append(summary + (" — FAIL" if self.failures else " — OK"))
        return "\n".join(lines)


def select_rules(ids: Optional[Sequence[str]]) -> List[Rule]:
    """The default rule set, optionally filtered to specific rule IDs."""
    if not ids:
        return list(DEFAULT_RULES)
    wanted = {rule_id.strip().upper() for rule_id in ids}
    return [rule for rule in DEFAULT_RULES if rule.rule_id in wanted]


def run_analysis(
    paths: Sequence[str],
    lint: bool = True,
    contracts: bool = True,
    typing: bool = False,
    flow: bool = False,
    rule_ids: Optional[Sequence[str]] = None,
    baseline_path: str = DEFAULT_BASELINE,
    typing_engine: str = "auto",
) -> AnalysisReport:
    """Run the requested passes over ``paths`` and aggregate findings."""
    report = AnalysisReport()
    if lint:
        report.lint = Linter(select_rules(rule_ids)).lint_paths(paths)
    if contracts:
        report.contracts = check_contracts(paths)
    if typing:
        report.typing_new, report.typing_baselined = gate(
            paths, baseline_path=baseline_path, engine=typing_engine
        )
    if flow:
        # Local import: the flow engine is optional machinery that only
        # ``--flow``/``--strict`` runs pay for.
        from repro.analysis.flow import analyze_flow

        flow_report = analyze_flow(paths, rule_ids=rule_ids)
        report.flow = flow_report.findings
    return report
