"""CLI for the repo's static analysis: ``python -m repro.analysis``.

Examples::

    python -m repro.analysis src/repro              # lint + contract checks
    python -m repro.analysis --strict src/repro     # all passes; the CI gate
    python -m repro.analysis --flow src/repro       # whole-program pass only
    python -m repro.analysis --flow --graph dot src/repro > callgraph.dot
    python -m repro.analysis --list-rules           # rule catalogue
    python -m repro.analysis --typing --update-baseline src/repro

Exit code 0 when clean, 1 when any non-baselined finding fires, 2 on
usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.contracts_static import RULE_BAD_SPEC, RULE_SPEC_MISMATCH
from repro.analysis.rules import DEFAULT_RULES
from repro.analysis.runner import run_analysis
from repro.analysis.typegate import (
    DEFAULT_BASELINE,
    collect_typing_findings,
    write_baseline,
)

#: Rule IDs owned by the whole-program flow pass; selecting one of them
#: implies ``--flow``.
_FLOW_RULE_IDS = frozenset(
    {"REP011", "REP012", "REP013", "REP014", "REP015", "REP016", "REP017", "REP018"}
)


def _list_rules() -> str:
    from repro.analysis.flow import FLOW_RULES

    lines = ["Rule catalogue (suppress with `# repro: noqa REP00x`):", ""]
    for rule in DEFAULT_RULES:
        doc = (rule.__doc__ or "").strip().splitlines()
        rationale = doc[0] if doc else ""
        lines.append(f"  {rule.rule_id}  {rule.title}")
        lines.append(f"         {rationale}")
        if rule.hint:
            lines.append(f"         fix: {rule.hint}")
    lines.append(f"  {RULE_BAD_SPEC}  invalid @contract spec string or unknown parameter")
    lines.append(f"  {RULE_SPEC_MISMATCH}  literal shape/dtype conflict between contracted caller/callee")
    for rule in FLOW_RULES:
        doc = (rule.__doc__ or "").strip().splitlines()
        rationale = doc[0] if doc else ""
        lines.append(f"  {rule.rule_id}  {rule.title}")
        lines.append(f"         {rationale}")
        if rule.hint:
            lines.append(f"         fix: {rule.hint}")
    lines.append("  TYP001/TYP002  missing parameter/return annotations (typing gate)")
    lines.append("  TYP100  mypy --strict diagnostics (when mypy is installed)")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo-specific static analysis: AST lint, contract cross-checks, typing gate.",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"], help="files/dirs to analyze")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="run all passes including the typing gate; any finding fails",
    )
    parser.add_argument("--typing", action="store_true", help="include the typing gate")
    parser.add_argument(
        "--flow",
        action="store_true",
        help="include the whole-program flow pass (REP011-REP018)",
    )
    parser.add_argument(
        "--graph",
        choices=("dot",),
        help="export the flow call graph (implies --flow); 'dot' prints Graphviz",
    )
    parser.add_argument(
        "--graph-out",
        metavar="PATH",
        help="write the --graph export to a file instead of stdout",
    )
    parser.add_argument("--no-lint", action="store_true", help="skip the AST lint pass")
    parser.add_argument(
        "--no-contracts", action="store_true", help="skip the static contract pass"
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule IDs to run (e.g. REP001,REP005)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"typing-gate baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--typing-engine",
        choices=("auto", "mypy", "fallback"),
        default="auto",
        help="mypy when importable (auto), or force the AST fallback",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from current typing findings and exit",
    )
    parser.add_argument("--list-rules", action="store_true", help="print the rule catalogue")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    if args.update_baseline:
        findings = collect_typing_findings(args.paths, engine=args.typing_engine)
        count = write_baseline(args.baseline, findings)
        print(f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} to {args.baseline}")
        return 0
    rule_ids = args.select.split(",") if args.select else None
    selected_flow = bool(rule_ids) and bool(
        _FLOW_RULE_IDS & {r.strip().upper() for r in rule_ids or ()}
    )
    flow = args.strict or args.flow or bool(args.graph) or selected_flow
    if args.graph:
        from repro.analysis.flow import analyze_flow, graph_to_dot

        flow_report = analyze_flow(args.paths, rule_ids=rule_ids)
        dot = graph_to_dot(flow_report.graph, flow_report.taints)
        if args.graph_out:
            with open(args.graph_out, "w") as handle:
                handle.write(dot + "\n")
            print(f"wrote call graph ({flow_report.stats()['functions']} nodes) to {args.graph_out}")
        else:
            print(dot)
        return 0
    report = run_analysis(
        args.paths,
        lint=not args.no_lint,
        contracts=not args.no_contracts,
        typing=args.strict or args.typing,
        flow=flow,
        rule_ids=rule_ids,
        baseline_path=args.baseline,
        typing_engine=args.typing_engine,
    )
    print(report.render(args.format))
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
