"""Runtime shape/dtype contracts for ndarray-passing functions.

The pipeline's stages communicate through exact tensor shapes — the
(M, N) CSI matrix of Eq. 5, the 30 x 30 smoothed matrix of Fig. 4, the
(A, T) pseudospectrum — but nothing checked them.  :func:`contract`
declares those shapes in the signature::

    @contract(csi="(M,N) complex128", returns="(S,C) complex128")
    def smooth_csi(csi, config=PAPER_CONFIG): ...

Dimension symbols (``M``, ``N``) bind to concrete sizes on first use
within one call and must agree everywhere they reappear — including in
``returns`` — so a function declared ``"(M,N) -> (N,M)"`` is checked
for the *transpose relationship*, not just for being 2-D.  Dims may be
integer literals (exact), ``*`` (anything), or arithmetic over bound
symbols (``M*N``, ``N-1``, ``M*N//2``).  A spec with no parenthesized
shape (``"float"``) declares a scalar.

Contracts are **free by default**: unless ``REPRO_CONTRACTS`` is set to
``1``/``true``/``yes``/``on`` at decoration time (or ``enabled=True``
is forced), :func:`contract` returns the original function object
untouched — zero wrapper, zero overhead (benchmarked < 3%) — and only
records the parsed spec on ``fn.__contract__`` for the static
cross-checker.  Violations raise :class:`~repro.errors.ContractError`
naming the parameter and the expected vs. actual shape.
"""

from __future__ import annotations

import ast
import functools
import inspect
import numbers
import os
import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Tuple, TypeVar, Union

import numpy as np

from repro.errors import ConfigurationError, ContractError

F = TypeVar("F", bound=Callable[..., Any])

#: Environment variable that turns contract enforcement on.
ENV_FLAG = "REPRO_CONTRACTS"

_TRUTHY = {"1", "true", "yes", "on"}

#: dtype vocabulary: concrete numpy dtypes plus abstract kind classes.
_ABSTRACT_KINDS: Dict[str, Tuple[str, ...]] = {
    "any": (),
    "float": ("f",),
    "complex": ("c",),
    "int": ("i", "u"),
    "bool": ("b",),
}

_SPEC_RE = re.compile(r"^\s*(?:\((?P<dims>[^)]*)\))?\s*(?P<dtype>[A-Za-z_][A-Za-z0-9_]*)?\s*$")

_DIM_OPS = (ast.Add, ast.Sub, ast.Mult, ast.FloorDiv)


def contracts_enabled() -> bool:
    """True when the ``REPRO_CONTRACTS`` env flag requests enforcement."""
    return os.environ.get(ENV_FLAG, "").strip().lower() in _TRUTHY


@dataclass(frozen=True)
class Dim:
    """One dimension of a shape spec.

    Exactly one of ``size`` (integer literal), ``symbol`` (bare name),
    ``expr`` (arithmetic AST over symbols), or wildcard (all None).
    """

    text: str
    size: Optional[int] = None
    symbol: Optional[str] = None
    expr: Optional[ast.expr] = None

    @property
    def is_wildcard(self) -> bool:
        return self.size is None and self.symbol is None and self.expr is None


def _eval_dim(node: ast.expr, bindings: Mapping[str, int]) -> Optional[int]:
    """Evaluate a dim expression; None when a symbol is still unbound."""
    if isinstance(node, ast.Constant):
        if isinstance(node.value, int):
            return node.value
        raise ConfigurationError(f"non-integer literal in dim expression: {node.value!r}")
    if isinstance(node, ast.Name):
        return bindings.get(node.id)
    if isinstance(node, ast.BinOp) and isinstance(node.op, _DIM_OPS):
        left = _eval_dim(node.left, bindings)
        right = _eval_dim(node.right, bindings)
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            return left * right
        return left // right
    raise ConfigurationError(f"unsupported dim expression: {ast.dump(node)}")


def _parse_dim(text: str) -> Dim:
    text = text.strip()
    if not text:
        raise ConfigurationError("empty dimension in shape spec")
    if text == "*":
        return Dim(text=text)
    if re.fullmatch(r"\d+", text):
        return Dim(text=text, size=int(text))
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", text):
        return Dim(text=text, symbol=text)
    try:
        node = ast.parse(text, mode="eval").body
    except SyntaxError as exc:
        raise ConfigurationError(f"unparsable dimension {text!r}: {exc.msg}") from exc
    _eval_dim(node, {})  # validate operator/leaf vocabulary eagerly
    return Dim(text=text, expr=node)


@dataclass(frozen=True)
class Spec:
    """A parsed contract spec: optional shape dims plus optional dtype."""

    text: str
    dims: Optional[Tuple[Dim, ...]]  # None => scalar spec
    dtype: Optional[str]

    @property
    def is_scalar(self) -> bool:
        return self.dims is None


def parse_spec(text: str) -> Spec:
    """Parse ``"(M,N) complex128"`` / ``"(P,*,N)"`` / ``"float"``.

    Raises :class:`~repro.errors.ConfigurationError` on bad syntax or an
    unknown dtype name.
    """
    match = _SPEC_RE.match(text)
    if match is None:
        raise ConfigurationError(f"unparsable contract spec {text!r}")
    dims_text, dtype = match.group("dims"), match.group("dtype")
    if dims_text is None and dtype is None:
        raise ConfigurationError(f"empty contract spec {text!r}")
    if dtype is not None and dtype not in _ABSTRACT_KINDS:
        try:
            np.dtype(dtype)
        except TypeError as exc:
            raise ConfigurationError(f"unknown dtype {dtype!r} in spec {text!r}") from exc
    dims: Optional[Tuple[Dim, ...]] = None
    if dims_text is not None:
        stripped = dims_text.strip()
        dims = tuple(_parse_dim(part) for part in stripped.split(",")) if stripped else ()
    return Spec(text=text, dims=dims, dtype=dtype)


@dataclass(frozen=True)
class FunctionContract:
    """The parsed contract attached to a function as ``__contract__``."""

    params: Mapping[str, Spec]
    returns: Optional[Spec]


def _check_dtype(where: str, spec: Spec, value: Any) -> None:
    if spec.dtype is None or spec.dtype == "any":
        return
    actual = np.asarray(value).dtype if not isinstance(value, np.ndarray) else value.dtype
    kinds = _ABSTRACT_KINDS.get(spec.dtype)
    if kinds is not None:
        if actual.kind not in kinds:
            raise ContractError(
                f"{where}: expected dtype kind {spec.dtype!r} per spec "
                f"{spec.text!r}, got dtype {actual}"
            )
    elif actual != np.dtype(spec.dtype):
        raise ContractError(
            f"{where}: expected dtype {spec.dtype} per spec {spec.text!r}, "
            f"got dtype {actual}"
        )


def _check_scalar(where: str, spec: Spec, value: Any) -> None:
    if isinstance(value, np.ndarray) and value.ndim == 0:
        value = value.item()
    kind_ok = {
        "float": isinstance(value, numbers.Real) and not isinstance(value, bool),
        "int": isinstance(value, numbers.Integral) and not isinstance(value, bool),
        "complex": isinstance(value, numbers.Complex),
        "bool": isinstance(value, (bool, np.bool_)),
        "any": True,
    }
    dtype = spec.dtype or "any"
    if dtype not in kind_ok:  # concrete numpy dtype name on a scalar spec
        kind_ok[dtype] = isinstance(value, np.generic) and value.dtype == np.dtype(dtype)
    if not kind_ok[dtype]:
        raise ContractError(
            f"{where}: expected scalar {dtype!r} per spec {spec.text!r}, "
            f"got {type(value).__name__} {value!r}"
        )


def _check_value(where: str, spec: Spec, value: Any, bindings: Dict[str, int]) -> None:
    if spec.is_scalar:
        _check_scalar(where, spec, value)
        return
    if isinstance(value, (list, tuple)):
        # Public APIs accept array-likes and np.asarray them internally;
        # the contract checks the shape the coercion would produce.
        value = np.asarray(value)
    if not isinstance(value, np.ndarray):
        raise ContractError(
            f"{where}: expected ndarray of shape ({', '.join(d.text for d in spec.dims or ())}) "
            f"per spec {spec.text!r}, got {type(value).__name__}"
        )
    assert spec.dims is not None
    if value.ndim != len(spec.dims):
        raise ContractError(
            f"{where}: expected {len(spec.dims)}-D array "
            f"({', '.join(d.text for d in spec.dims)}) per spec {spec.text!r}, "
            f"got shape {value.shape}"
        )
    for axis, (dim, actual) in enumerate(zip(spec.dims, value.shape)):
        if dim.is_wildcard:
            continue
        if dim.size is not None:
            expected: Optional[int] = dim.size
        elif dim.symbol is not None:
            bound = bindings.get(dim.symbol)
            if bound is None:
                bindings[dim.symbol] = int(actual)
                continue
            expected = bound
        else:
            assert dim.expr is not None
            expected = _eval_dim(dim.expr, bindings)
            if expected is None:
                continue  # free symbol — this dim cannot constrain
        if actual != expected:
            raise ContractError(
                f"{where}: axis {axis} expected {dim.text}={expected} "
                f"per spec {spec.text!r}, got shape {value.shape} "
                f"(bindings {dict(bindings)})"
            )
    _check_dtype(where, spec, value)


def build_contract(returns: Optional[str], param_specs: Mapping[str, str]) -> FunctionContract:
    """Parse every spec string of a ``@contract(...)`` declaration."""
    return FunctionContract(
        params={name: parse_spec(text) for name, text in param_specs.items()},
        returns=parse_spec(returns) if returns is not None else None,
    )


def apply_contract(fn: F, spec: Optional[FunctionContract] = None) -> F:
    """Wrap ``fn`` so calls validate against ``spec`` (or ``fn.__contract__``).

    Used directly by tests and by :func:`contract` when enforcement is
    on.  The wrapper binds call arguments by name, validates declared
    parameters (``None`` values are skipped — optional args), threads
    one symbol-binding table through params *and* the return spec, and
    raises :class:`~repro.errors.ContractError` on the first mismatch.
    """
    fc = spec if spec is not None else getattr(fn, "__contract__", None)
    if fc is None:
        raise ConfigurationError(f"{fn!r} has no contract to apply")
    unknown = set(fc.params) - set(inspect.signature(fn).parameters)
    if unknown:
        raise ConfigurationError(
            f"contract on {fn.__qualname__} names unknown parameters: {sorted(unknown)}"
        )
    sig = inspect.signature(fn)

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        bound = sig.bind(*args, **kwargs)
        bindings: Dict[str, int] = {}
        for name, pspec in fc.params.items():
            if name in bound.arguments and bound.arguments[name] is not None:
                _check_value(
                    f"{fn.__qualname__}: parameter {name!r}",
                    pspec,
                    bound.arguments[name],
                    bindings,
                )
        result = fn(*args, **kwargs)
        if fc.returns is not None and result is not None:
            _check_value(f"{fn.__qualname__}: return value", fc.returns, result, bindings)
        return result

    wrapper.__contract__ = fc  # type: ignore[attr-defined]
    wrapper.__wrapped_by_contract__ = True  # type: ignore[attr-defined]
    return wrapper  # type: ignore[return-value]


def contract(
    returns: Optional[str] = None,
    enabled: Optional[bool] = None,
    **param_specs: str,
) -> Callable[[F], F]:
    """Declare shape/dtype contracts on a function's parameters/return.

    Parameters
    ----------
    returns:
        Spec for the return value (optional).
    enabled:
        Force enforcement on/off; ``None`` (default) consults the
        ``REPRO_CONTRACTS`` environment flag *at decoration time* so
        the disabled path returns the original function object — a
        true no-op.
    **param_specs:
        ``param_name="(M,N) complex128"`` spec per validated parameter.
    """
    fc = build_contract(returns, param_specs)

    def decorate(fn: F) -> F:
        fn.__contract__ = fc  # type: ignore[attr-defined]
        on = contracts_enabled() if enabled is None else enabled
        if not on:
            return fn
        return apply_contract(fn, fc)

    return decorate
