"""Static cross-checking of ``@contract`` declarations (REP008/REP009).

Two checks run without importing any target code:

* **REP008** — every spec string in a ``@contract(...)`` decorator must
  parse, and every keyword must name a real parameter of the decorated
  function.  A typo'd spec that only explodes when ``REPRO_CONTRACTS=1``
  is itself a latent bug.
* **REP009** — where a contracted function's result flows *directly*
  into another contracted function (``g(f(x))``), the literal parts of
  ``f``'s return spec must be consistent with ``g``'s parameter spec:
  same rank, equal integer dims, compatible dtypes.  Symbolic dims
  (``M``, ``N``) and wildcards are not constrained statically — only
  what is literally written can be literally wrong.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.analysis.contracts import _ABSTRACT_KINDS, Spec, parse_spec
from repro.analysis.findings import Finding
from repro.analysis.rules import SourceFile, _dotted_name, iter_python_files
from repro.errors import ConfigurationError

RULE_BAD_SPEC = "REP008"
RULE_SPEC_MISMATCH = "REP009"

_HINT_BAD_SPEC = "fix the spec string: '(DIM,...) dtype' with int/symbol/* dims"
_HINT_MISMATCH = "align the producer's returns spec with the consumer's parameter spec"


@dataclass(frozen=True)
class ContractedFunction:
    """A statically discovered ``@contract``-decorated function."""

    name: str
    path: str
    line: int
    param_order: Tuple[str, ...]
    param_specs: Dict[str, Spec]
    returns: Optional[Spec]


def _contract_decorator(node: ast.AST) -> Optional[ast.Call]:
    if isinstance(node, ast.Call) and _dotted_name(node.func).split(".")[-1] == "contract":
        return node
    return None


def _spec_keywords(call: ast.Call) -> Iterator[Tuple[str, ast.expr]]:
    for kw in call.keywords:
        if kw.arg is not None and kw.arg != "enabled":
            yield kw.arg, kw.value


def collect_contracts(
    module: SourceFile,
) -> Tuple[List[ContractedFunction], List[Finding]]:
    """Parse every ``@contract`` in a module; return (table, REP008 findings)."""
    functions: List[ContractedFunction] = []
    findings: List[Finding] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for decorator in node.decorator_list:
            call = _contract_decorator(decorator)
            if call is None:
                continue
            args = node.args
            param_names = tuple(
                a.arg
                for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
            )
            specs: Dict[str, Spec] = {}
            returns: Optional[Spec] = None
            for name, value in _spec_keywords(call):
                if not (isinstance(value, ast.Constant) and isinstance(value.value, str)):
                    continue  # dynamically built spec — nothing to check statically
                try:
                    spec = parse_spec(value.value)
                except ConfigurationError as exc:
                    findings.append(
                        Finding(
                            path=module.path,
                            line=value.lineno,
                            rule_id=RULE_BAD_SPEC,
                            message=f"invalid contract spec on `{node.name}`: {exc}",
                            hint=_HINT_BAD_SPEC,
                        )
                    )
                    continue
                if name == "returns":
                    returns = spec
                elif name not in param_names:
                    findings.append(
                        Finding(
                            path=module.path,
                            line=value.lineno,
                            rule_id=RULE_BAD_SPEC,
                            message=(
                                f"contract on `{node.name}` names unknown "
                                f"parameter {name!r}"
                            ),
                            hint=_HINT_BAD_SPEC,
                        )
                    )
                else:
                    specs[name] = spec
            functions.append(
                ContractedFunction(
                    name=node.name,
                    path=module.path,
                    line=node.lineno,
                    param_order=param_names,
                    param_specs=specs,
                    returns=returns,
                )
            )
    return functions, findings


def _dtypes_compatible(a: Optional[str], b: Optional[str]) -> bool:
    if a is None or b is None or "any" in (a, b):
        return True
    kinds_a, kinds_b = _ABSTRACT_KINDS.get(a), _ABSTRACT_KINDS.get(b)
    if kinds_a is None and kinds_b is None:  # both concrete
        return a == b
    import numpy as np

    if kinds_a is None:
        return np.dtype(a).kind in (kinds_b or ())
    if kinds_b is None:
        return np.dtype(b).kind in (kinds_a or ())
    return bool(set(kinds_a) & set(kinds_b)) or not (kinds_a and kinds_b)


def _specs_conflict(produced: Spec, consumed: Spec) -> Optional[str]:
    """A human-readable conflict between two specs, or None if compatible."""
    if produced.is_scalar != consumed.is_scalar:
        return (
            f"producer returns {produced.text!r} but consumer expects "
            f"{consumed.text!r} (scalar vs array)"
        )
    if not produced.is_scalar:
        assert produced.dims is not None and consumed.dims is not None
        if len(produced.dims) != len(consumed.dims):
            return (
                f"rank mismatch: producer returns {len(produced.dims)}-D "
                f"{produced.text!r}, consumer expects {len(consumed.dims)}-D "
                f"{consumed.text!r}"
            )
        for axis, (pd, cd) in enumerate(zip(produced.dims, consumed.dims)):
            if pd.size is not None and cd.size is not None and pd.size != cd.size:
                return (
                    f"axis {axis}: producer returns {pd.size}, consumer "
                    f"expects {cd.size}"
                )
    if not _dtypes_compatible(produced.dtype, consumed.dtype):
        return f"dtype mismatch: producer {produced.dtype}, consumer {consumed.dtype}"
    return None


def cross_check(
    modules: Iterable[SourceFile],
    table: Dict[str, ContractedFunction],
) -> Iterator[Finding]:
    """REP009: check ``g(f(...))`` call sites against the contract table."""
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Name):
                continue
            consumer = table.get(node.func.id)
            if consumer is None:
                continue
            for position, arg in enumerate(node.args):
                if not (isinstance(arg, ast.Call) and isinstance(arg.func, ast.Name)):
                    continue
                producer = table.get(arg.func.id)
                if producer is None or producer.returns is None:
                    continue
                if position >= len(consumer.param_order):
                    continue
                param = consumer.param_order[position]
                consumed = consumer.param_specs.get(param)
                if consumed is None:
                    continue
                conflict = _specs_conflict(producer.returns, consumed)
                if conflict:
                    yield Finding(
                        path=module.path,
                        line=arg.lineno,
                        rule_id=RULE_SPEC_MISMATCH,
                        message=(
                            f"`{consumer.name}({param}={producer.name}(...))`: "
                            f"{conflict}"
                        ),
                        hint=_HINT_MISMATCH,
                    )


def check_contracts(paths: Iterable[str]) -> List[Finding]:
    """Run both static contract checks over files/directories."""
    modules: List[SourceFile] = []
    table: Dict[str, ContractedFunction] = {}
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        try:
            module = SourceFile.parse(path)
        except SyntaxError:
            continue  # the lint pass reports syntax errors
        modules.append(module)
        functions, bad_specs = collect_contracts(module)
        findings.extend(bad_specs)
        for fn in functions:
            table[fn.name] = fn
    findings.extend(cross_check(modules, table))
    findings = [f for f in findings if not _suppressed_in(modules, f)]
    return sorted(set(findings))


def _suppressed_in(modules: List[SourceFile], finding: Finding) -> bool:
    for module in modules:
        if module.path == finding.path:
            return module.suppressed(finding.rule_id, finding.line)
    return False
