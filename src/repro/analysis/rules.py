"""Repo-specific AST lint rules.

Each rule has a stable ID (``REP00x``), a one-line title, a rationale
docstring, and an autofix hint.  Rules are deliberately narrow: they
encode *this* repository's conventions (seeded RNG everywhere, typed
error accounting, tracer-owned clocks, picklable process-pool tasks)
rather than generic style.

Suppression: append ``# repro: noqa REP00x`` (comma-separate several
IDs, or omit the IDs to silence every rule) to the offending line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\s+(?P<ids>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*))?")

#: Sentinel meaning "every rule is suppressed on this line".
_ALL_RULES = frozenset({"*"})


def parse_noqa(source: str) -> Dict[int, FrozenSet[str]]:
    """Map 1-indexed line number -> suppressed rule IDs for a source file."""
    suppressed: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        ids = match.group("ids")
        if ids is None:
            suppressed[lineno] = _ALL_RULES
        else:
            suppressed[lineno] = frozenset(part.strip() for part in ids.split(","))
    return suppressed


@dataclass
class SourceFile:
    """A parsed module handed to every rule: path, AST, noqa map."""

    path: str
    tree: ast.Module
    source: str
    noqa: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    @staticmethod
    def parse(path: str) -> "SourceFile":
        source = Path(path).read_text()
        tree = ast.parse(source, filename=path)
        return SourceFile(path=path, tree=tree, source=source, noqa=parse_noqa(source))

    def suppressed(self, rule_id: str, line: int) -> bool:
        ids = self.noqa.get(line)
        return ids is not None and (ids is _ALL_RULES or "*" in ids or rule_id in ids)


class Rule:
    """Base class: subclasses set ``rule_id``/``title``/``hint`` and
    implement :meth:`check` yielding :class:`Finding` objects.

    ``check`` should *not* filter noqa suppression — the
    :class:`Linter` applies it uniformly afterwards.
    """

    rule_id: str = "REP000"
    title: str = ""
    hint: str = ""

    def check(self, module: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: SourceFile, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 0),
            rule_id=self.rule_id,
            message=message,
            hint=self.hint,
        )


def _dotted_name(node: ast.AST) -> str:
    """Best-effort dotted name of an expression (``np.random.seed``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class GlobalNumpyRandomRule(Rule):
    """REP001 — no global ``np.random.*`` calls.

    The legacy ``np.random`` module draws from hidden process-global
    state, which destroys reproducibility (a different import order
    reorders every simulated channel) and is not fork-safe across the
    ``repro.runtime`` process pool.  Every random draw must come from a
    ``numpy.random.Generator`` passed in by the caller.
    """

    rule_id = "REP001"
    title = "global np.random.* call (hidden process-wide RNG state)"
    hint = "accept a seeded numpy.random.Generator parameter and draw from it"

    _ALLOWED = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox"}

    def check(self, module: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted_name(node.func)
            if not name:
                continue
            parts = name.split(".")
            if len(parts) >= 3 and parts[0] in {"np", "numpy"} and parts[1] == "random":
                if parts[2] not in self._ALLOWED:
                    yield self.finding(
                        module, node, f"call to global RNG `{name}()`"
                    )


class BroadExceptRule(Rule):
    """REP002 — no bare/broad ``except`` that swallows the error.

    Catching ``Exception`` (or everything) is allowed only when the
    handler either re-raises or records a *typed* error-kind counter
    (the ``record_*`` metrics idiom), so failures stay observable and
    programming errors are never silently eaten.
    """

    rule_id = "REP002"
    title = "bare/broad except without re-raise or typed error accounting"
    hint = "narrow the exception type, re-raise, or call metrics.record_error(kind=...)"

    _BROAD = {"Exception", "BaseException"}

    def _is_broad(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        types: Sequence[ast.expr]
        if isinstance(handler.type, ast.Tuple):
            types = handler.type.elts
        else:
            types = [handler.type]
        for item in types:
            name = _dotted_name(item)
            if name.split(".")[-1] in self._BROAD:
                return True
        return False

    def _is_accounted(self, handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                name = _dotted_name(node.func).split(".")[-1]
                if name.startswith("record_"):
                    return True
        return False

    def check(self, module: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if self._is_broad(node) and not self._is_accounted(node):
                what = "bare except" if node.type is None else "broad except"
                yield self.finding(
                    module,
                    node,
                    f"{what} neither re-raises nor records a typed error kind",
                )


class MutableDefaultRule(Rule):
    """REP003 — no mutable default arguments.

    A ``def f(x, acc=[])`` default is created once and shared across
    every call (and across every worker that unpickles the function),
    which turns per-call state into cross-call — and cross-process —
    aliasing bugs.
    """

    rule_id = "REP003"
    title = "mutable default argument"
    hint = "default to None and create the object inside the function body"

    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "Counter"}

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return _dotted_name(node.func).split(".")[-1] in self._MUTABLE_CALLS
        return False

    def check(self, module: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        module,
                        default,
                        f"mutable default argument in `{node.name}()`",
                    )


class WallClockRule(Rule):
    """REP004 — no wall-clock reads in numeric paths.

    ``repro.core`` and ``repro.channel`` are pure numeric code: results
    must be a function of their inputs alone.  Timing belongs to the
    tracer/metrics layer (``repro.obs``), which owns the clock; a
    ``time.time()`` buried in a numeric path makes outputs
    irreproducible and breaks the runtime's result-caching assumptions.
    """

    rule_id = "REP004"
    title = "wall-clock read inside a numeric path"
    hint = "time the enclosing stage via repro.obs.trace.Tracer / RuntimeMetrics instead"

    _CLOCKS = {
        "time.time",
        "time.monotonic",
        "time.perf_counter",
        "time.process_time",
        "time.time_ns",
        "time.monotonic_ns",
        "time.perf_counter_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
    }
    _SCOPED_TO = ("repro/core/", "repro/channel/", "repro\\core\\", "repro\\channel\\")

    def check(self, module: SourceFile) -> Iterator[Finding]:
        if not any(part in module.path for part in self._SCOPED_TO):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted_name(node.func)
            if name in self._CLOCKS:
                yield self.finding(module, node, f"wall-clock call `{name}()`")


class FloatEqualityRule(Rule):
    """REP005 — no ``==`` / ``!=`` against float literals in numeric code.

    Exact float comparison silently breaks under rounding: a sanitized
    phase that should be "zero" is ``1e-17``, and an ``x == 0.0`` branch
    flips.  Compare with a tolerance (``math.isclose`` /
    ``np.isclose``), or — for genuine exact-sentinel semantics — state
    the intent with a ``# repro: noqa REP005`` suppression.
    """

    rule_id = "REP005"
    title = "float-literal equality comparison"
    hint = "use math.isclose/np.isclose with an explicit tolerance"

    def _is_float_literal(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            return self._is_float_literal(node.operand)
        return False

    def check(self, module: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._is_float_literal(left) or self._is_float_literal(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        module, node, f"float literal compared with `{symbol}`"
                    )


class UnpicklableTaskRule(Rule):
    """REP006 — no unpicklable task arguments to executor fan-out calls.

    ``ParallelExecutor.map_ordered`` / ``pool.submit`` ship their task
    function to worker processes by pickling.  Lambdas, locally defined
    closures, and open file handles pickle by *reference* and fail (or
    worse, capture parent-process state that is stale in the worker).
    Task functions must be module-level callables.
    """

    rule_id = "REP006"
    title = "unpicklable task argument handed to a process pool"
    hint = "hoist the task to a module-level function (see estimator.estimate_packet_task)"

    _FANOUT_METHODS = {"map_ordered", "submit", "apply_async", "imap", "imap_unordered"}

    def check(self, module: SourceFile) -> Iterator[Finding]:
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            local_defs = {
                child.name
                for stmt in func.body
                for child in ast.walk(stmt)
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            lambda_names = {
                stmt.targets[0].id
                for stmt in func.body
                if isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Lambda)
            }
            for node in ast.walk(ast.Module(body=func.body, type_ignores=[])):
                if not isinstance(node, ast.Call):
                    continue
                if not isinstance(node.func, ast.Attribute):
                    continue
                if node.func.attr not in self._FANOUT_METHODS:
                    continue
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    problem = self._unpicklable(arg, local_defs, lambda_names)
                    if problem:
                        yield self.finding(
                            module,
                            arg,
                            f"{problem} passed to `{node.func.attr}()`",
                        )

    def _unpicklable(
        self, arg: ast.expr, local_defs: Set[str], lambda_names: Set[str]
    ) -> str:
        if isinstance(arg, ast.Lambda):
            return "lambda"
        if isinstance(arg, ast.Name):
            if arg.id in local_defs:
                return f"locally defined closure `{arg.id}`"
            if arg.id in lambda_names:
                return f"lambda-valued local `{arg.id}`"
        if isinstance(arg, ast.Call) and _dotted_name(arg.func) == "open":
            return "open file handle"
        return ""


class DunderAllRule(Rule):
    """REP007 — ``__all__`` must match the public surface of each
    ``repro.*`` ``__init__``.

    The API-surface tests, the docs generator, and ``from repro.x
    import *`` all read ``__all__``; a name imported into a package
    ``__init__`` but missing from ``__all__`` (or listed but no longer
    imported) is silent API drift.
    """

    rule_id = "REP007"
    title = "__all__ out of sync with public names"
    hint = "add/remove the listed names so __all__ matches the imports/defs"

    def check(self, module: SourceFile) -> Iterator[Finding]:
        if not module.path.replace("\\", "/").endswith("__init__.py"):
            return
        public: Set[str] = set()
        private: Set[str] = set()
        declared: Optional[Set[str]] = None
        fully_literal = True
        all_node: ast.AST = module.tree
        for stmt in module.tree.body:
            if isinstance(stmt, ast.ImportFrom):
                if stmt.module == "__future__":
                    continue
                for alias in stmt.names:
                    name = alias.asname or alias.name
                    if not name.startswith("_") and name != "*":
                        public.add(name)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if not stmt.name.startswith("_"):
                    public.add(stmt.name)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                for target in targets:
                    if isinstance(target, ast.Name):
                        if target.id == "__all__":
                            declared, fully_literal = self._literal_names(stmt)
                            all_node = stmt
                        elif not target.id.startswith("_"):
                            public.add(target.id)
                        else:
                            private.add(target.id)
        if declared is None:
            yield self.finding(module, module.tree, "package __init__ has no __all__")
            return
        missing = sorted(public - declared)
        # Underscore-prefixed assignments (e.g. __version__) may be
        # exported deliberately; they are just never *required*.
        stale = sorted(declared - public - private)
        if missing:
            yield self.finding(
                module, all_node, f"public names missing from __all__: {', '.join(missing)}"
            )
        # A partially dynamic __all__ (e.g. ``[...] + list(LAZY)``) may
        # export names the AST cannot see, so only a fully literal list
        # can be accused of listing undefined names.
        if stale and fully_literal:
            yield self.finding(
                module, all_node, f"__all__ lists undefined names: {', '.join(stale)}"
            )

    def _literal_names(self, stmt: ast.stmt) -> Tuple[Set[str], bool]:
        """(string constants in the __all__ expression, fully-literal?)."""
        value = stmt.value if isinstance(stmt, (ast.Assign, ast.AnnAssign)) else None
        names: Set[str] = set()
        fully_literal = isinstance(value, (ast.List, ast.Tuple))
        for node in ast.walk(value) if value is not None else ():
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                names.add(node.value)
        return names, fully_literal


class NonCanonicalStageRule(Rule):
    """REP010 — tracer span names must come from the stage registry.

    Dashboards, the SLO tracker and the cross-process trace collector
    key on span names; a typo'd ``tracer.span("sanitise")`` silently
    creates a stage no alert or rollup will ever see.  Every string
    literal handed to a ``*.tracer.span(...)`` call must therefore be
    one of :data:`repro.obs.stages.CANONICAL_STAGES` (or match a
    registered pattern like ``ap[3]``).  Dynamic names (f-strings,
    variables) are the caller's responsibility and are not flagged.
    """

    rule_id = "REP010"
    title = "tracer span opened with a non-canonical stage name"
    hint = "use a name from repro.obs.stages.CANONICAL_STAGES or register the new stage there"

    def check(self, module: SourceFile) -> Iterator[Finding]:
        # Local import: keeps repro.analysis importable without pulling
        # the obs package in at module-import time for non-lint users.
        from repro.obs.stages import is_canonical_stage

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr != "span":
                continue
            receiver = _dotted_name(func.value).split(".")[-1]
            if not receiver.lower().endswith("tracer"):
                continue
            if not node.args:
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                continue
            if not is_canonical_stage(first.value):
                yield self.finding(
                    module,
                    first,
                    f"span name {first.value!r} is not in the canonical stage registry",
                )


#: Every AST lint rule, in ID order.  The contract cross-check pass adds
#: REP008/REP009 (see :mod:`repro.analysis.contracts_static`).
DEFAULT_RULES: Tuple[Rule, ...] = (
    GlobalNumpyRandomRule(),
    BroadExceptRule(),
    MutableDefaultRule(),
    WallClockRule(),
    FloatEqualityRule(),
    UnpicklableTaskRule(),
    DunderAllRule(),
    NonCanonicalStageRule(),
)


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    seen: Set[str] = set()
    for raw in paths:
        p = Path(raw)
        candidates = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for candidate in candidates:
            key = str(candidate)
            if key not in seen:
                seen.add(key)
                yield key


class Linter:
    """Runs a rule set over source files, applying noqa suppression."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        self.rules: Tuple[Rule, ...] = tuple(rules) if rules is not None else DEFAULT_RULES

    def lint_file(self, path: str) -> List[Finding]:
        try:
            module = SourceFile.parse(path)
        except SyntaxError as exc:
            return [
                Finding(
                    path=path,
                    line=exc.lineno or 0,
                    rule_id="REP000",
                    message=f"syntax error: {exc.msg}",
                )
            ]
        findings: List[Finding] = []
        for rule in self.rules:
            for finding in rule.check(module):
                if not module.suppressed(finding.rule_id, finding.line):
                    findings.append(finding)
        return findings

    def lint_paths(self, paths: Iterable[str]) -> List[Finding]:
        findings: List[Finding] = []
        for path in iter_python_files(paths):
            findings.extend(self.lint_file(path))
        return sorted(findings)
