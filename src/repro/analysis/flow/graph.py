"""Module import graph and conservative AST call graph.

The graph is built purely from source text — nothing is imported.  Call
resolution is deliberately conservative:

* ``f(x)`` resolves through the module's ``from m import f`` symbol
  table or to a function defined in the same module.
* ``m.f(x)`` resolves through ``import m`` / ``import pkg.m as m``
  aliases.
* ``self.meth(...)`` resolves to the enclosing class's method.
* ``obj.meth(...)`` with an unknown receiver resolves to *every* known
  method named ``meth`` — capped at
  :attr:`SeamManifest.max_attr_candidates` candidates, beyond which the
  name is considered too ambiguous and no edge is added.
* Registry / pool indirection is handled by the seam manifest: the
  first argument of ``executor.map_ordered(task_fn, items)`` and the
  ``target=`` of ``Process(...)`` become worker entry points, and the
  call site is recorded as a pickling boundary for REP013.

Over-approximation (extra edges) costs a suppression comment;
under-approximation (missed edges) silently hides real findings — so
every heuristic here errs toward adding the edge.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.flow.seams import SeamManifest
from repro.analysis.rules import SourceFile, _dotted_name, iter_python_files

#: Receivers that are obviously third-party / stdlib: attribute calls on
#: these never resolve to repo methods by bare-name matching.
_FOREIGN_RECEIVERS = frozenset(
    {"np", "numpy", "scipy", "os", "sys", "time", "math", "json", "re",
     "ast", "socket", "struct", "logging", "itertools", "collections"}
)

#: Method names shared with builtin containers/strings/files: an
#: unqualified ``x.update()`` is overwhelmingly a dict update, so
#: bare-name matching to same-named repo methods would flood the graph
#: with spurious edges (e.g. every dict.update pulling in a Kalman
#: filter's ``update``).  Explicit resolution (``self.meth``, imported
#: symbols) still reaches these names.
_COLLECTION_METHODS = frozenset(
    {"update", "get", "pop", "clear", "copy", "keys", "values", "items",
     "add", "append", "extend", "insert", "remove", "discard", "sort",
     "reverse", "count", "index", "join", "split", "strip", "read",
     "write", "close", "flush", "send", "recv", "put", "setdefault"}
)


def module_name_for_path(path: str) -> str:
    """Dotted module name, walking up while ``__init__.py`` exists.

    ``src/repro/core/music.py`` -> ``repro.core.music``;  a loose file in
    a directory without ``__init__.py`` is just its stem.
    """
    p = Path(path).resolve()
    parts: List[str] = []
    stem = p.stem
    if stem != "__init__":
        parts.append(stem)
    current = p.parent
    while (current / "__init__.py").exists():
        parts.append(current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    return ".".join(reversed(parts))


@dataclass
class FunctionInfo:
    """One graph node: a module-level function or a class method."""

    qualname: str
    module: str
    simple_name: str
    class_name: Optional[str]
    path: str
    lineno: int
    node: ast.AST  # FunctionDef | AsyncFunctionDef

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass
class ModuleInfo:
    """A parsed module plus its import/symbol tables."""

    name: str
    path: str
    source: SourceFile
    #: local alias -> imported module dotted path (``np`` -> ``numpy``).
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: local name -> ``module.symbol`` for ``from m import symbol``.
    symbol_imports: Dict[str, str] = field(default_factory=dict)
    #: class name -> method simple names defined in this module.
    classes: Dict[str, Set[str]] = field(default_factory=dict)
    #: module-level names bound to mutable containers (REP016).
    module_mutables: Set[str] = field(default_factory=set)


@dataclass
class PicklingBoundary:
    """A call site that ships its arguments to another process."""

    caller: str  # qualname of the enclosing function
    path: str
    lineno: int
    call: ast.Call
    kind: str  # "task" (map_ordered/submit) or "process" (target=)
    task: Optional[str] = None  # resolved worker qualname, if known


@dataclass
class CodeGraph:
    """The whole-program view every flow rule consumes."""

    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    by_simple_name: Dict[str, List[str]] = field(default_factory=dict)
    #: caller qualname -> callee qualnames.
    edges: Dict[str, Set[str]] = field(default_factory=dict)
    #: (caller, callee) -> call-site line numbers.
    callsites: Dict[Tuple[str, str], List[int]] = field(default_factory=dict)
    #: import graph: module name -> imported repo module names.
    imports: Dict[str, Set[str]] = field(default_factory=dict)
    #: worker entry points discovered at fan-out seams.
    worker_entries: Set[str] = field(default_factory=set)
    pickling_boundaries: List[PicklingBoundary] = field(default_factory=list)
    #: modules that failed to parse: path -> SyntaxError message.
    broken: Dict[str, str] = field(default_factory=dict)

    def module_of(self, qualname: str) -> Optional[ModuleInfo]:
        info = self.functions.get(qualname)
        return self.modules.get(info.module) if info else None

    def source_for_path(self, path: str) -> Optional[SourceFile]:
        for module in self.modules.values():
            if module.path == path:
                return module.source
        return None


_MUTABLE_FACTORY_NAMES = frozenset(
    {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
)


def _collect_module_tables(info: ModuleInfo) -> None:
    """Fill import aliases, class method maps, and module mutables."""
    tree = info.source.tree
    for stmt in tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                info.module_aliases[local] = target
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.module is None and stmt.level == 0:
                continue
            base = _resolve_import_base(info.name, stmt)
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.symbol_imports[local] = f"{base}.{alias.name}" if base else alias.name
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            value = stmt.value
            if value is None or not _is_mutable_literal(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    info.module_mutables.add(target.id)
        elif isinstance(stmt, ast.ClassDef):
            methods = {
                child.name
                for child in stmt.body
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            info.classes[stmt.name] = methods


def _resolve_import_base(module_name: str, stmt: ast.ImportFrom) -> str:
    """Absolute dotted base for a (possibly relative) ``from X import``."""
    if stmt.level == 0:
        return stmt.module or ""
    package_parts = module_name.split(".")
    # level 1 = current package: strip the module's own leaf name.
    parts = package_parts[: len(package_parts) - stmt.level]
    if stmt.module:
        parts.append(stmt.module)
    return ".".join(parts)


def _is_mutable_literal(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        return _dotted_name(value.func).split(".")[-1] in _MUTABLE_FACTORY_NAMES
    return False


def _collect_functions(graph: CodeGraph, info: ModuleInfo) -> None:
    for stmt in info.source.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _register_function(graph, info, stmt, class_name=None)
        elif isinstance(stmt, ast.ClassDef):
            for child in stmt.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    _register_function(graph, info, child, class_name=stmt.name)


def _register_function(
    graph: CodeGraph,
    info: ModuleInfo,
    node: ast.AST,
    class_name: Optional[str],
) -> None:
    name = node.name  # type: ignore[attr-defined]
    qualname = (
        f"{info.name}.{class_name}.{name}" if class_name else f"{info.name}.{name}"
    )
    graph.functions[qualname] = FunctionInfo(
        qualname=qualname,
        module=info.name,
        simple_name=name,
        class_name=class_name,
        path=info.path,
        lineno=node.lineno,  # type: ignore[attr-defined]
        node=node,
    )
    graph.by_simple_name.setdefault(name, []).append(qualname)


class _CallResolver:
    """Resolves call expressions in one function to callee qualnames."""

    def __init__(
        self, graph: CodeGraph, info: ModuleInfo, fn: FunctionInfo, manifest: SeamManifest
    ) -> None:
        self.graph = graph
        self.info = info
        self.fn = fn
        self.manifest = manifest

    def resolve(self, call: ast.Call) -> Set[str]:
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_symbol(func.id)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(func)
        return set()

    def resolve_reference(self, node: ast.expr) -> Set[str]:
        """Resolve a *function reference* (not a call): task args, target=."""
        if isinstance(node, ast.Name):
            return self._resolve_symbol(node.id)
        if isinstance(node, ast.Attribute):
            return self._resolve_attribute(node)
        return set()

    # -- helpers -------------------------------------------------------
    def _resolve_symbol(self, name: str) -> Set[str]:
        imported = self.info.symbol_imports.get(name)
        if imported is not None:
            return self._as_functions(imported)
        local = f"{self.info.name}.{name}"
        if local in self.graph.functions:
            return {local}
        if name in self.info.classes:
            init = f"{self.info.name}.{name}.__init__"
            return {init} if init in self.graph.functions else set()
        return set()

    def _as_functions(self, dotted: str) -> Set[str]:
        """A dotted target that may be a function or a class."""
        if dotted in self.graph.functions:
            return {dotted}
        init = f"{dotted}.__init__"
        if init in self.graph.functions:
            return {init}
        return set()

    def _resolve_attribute(self, func: ast.Attribute) -> Set[str]:
        dotted = _dotted_name(func)
        if dotted:
            head, rest = dotted.split(".", 1) if "." in dotted else (dotted, "")
            if head == "self" and self.fn.class_name is not None:
                if "." not in rest and rest:
                    own = f"{self.info.name}.{self.fn.class_name}.{rest}"
                    if own in self.graph.functions:
                        return {own}
                # ``self.executor.map_ordered`` falls through to
                # bare-name matching below.
            elif head in self.info.module_aliases:
                target = self.info.module_aliases[head]
                if target.split(".")[0] in _FOREIGN_RECEIVERS or not any(
                    m.startswith(target.split(".")[0]) for m in self.graph.modules
                ):
                    return set()
                return self._as_functions(f"{target}.{rest}") if rest else set()
            elif head in self.info.symbol_imports:
                # ``from repro.dist import protocol; protocol.recv_message``
                target = self.info.symbol_imports[head]
                if rest:
                    return self._as_functions(f"{target}.{rest}")
                return set()
            elif head in _FOREIGN_RECEIVERS:
                return set()
        # Unknown receiver: match every known method with this name.
        attr = func.attr
        if attr in _COLLECTION_METHODS:
            return set()
        candidates = [
            q
            for q in self.graph.by_simple_name.get(attr, ())
            if self.graph.functions[q].is_method
        ]
        # Import-visibility refinement: if any candidate lives in the
        # caller's module or a module the caller imports, the receiver
        # almost certainly is one of those; candidates from unrelated
        # modules (same method name by coincidence) are dropped.
        visible = {self.info.name} | self.graph.imports.get(self.info.name, set())
        visible_candidates = [
            q for q in candidates if self.graph.functions[q].module in visible
        ]
        if visible_candidates:
            candidates = visible_candidates
        if 0 < len(candidates) <= self.manifest.max_attr_candidates:
            return set(candidates)
        return set()


def _iter_calls(node: ast.AST) -> Iterable[ast.Call]:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


def _build_edges(graph: CodeGraph, manifest: SeamManifest) -> None:
    for fn in graph.functions.values():
        info = graph.modules[fn.module]
        resolver = _CallResolver(graph, info, fn, manifest)
        edges = graph.edges.setdefault(fn.qualname, set())
        for call in _iter_calls(fn.node):
            for callee in resolver.resolve(call):
                edges.add(callee)
                graph.callsites.setdefault((fn.qualname, callee), []).append(call.lineno)
            _record_seams(graph, resolver, fn, call, manifest)


def _record_seams(
    graph: CodeGraph,
    resolver: _CallResolver,
    fn: FunctionInfo,
    call: ast.Call,
    manifest: SeamManifest,
) -> None:
    func = call.func
    # executor fan-out: map_ordered(task_fn, items, ...) / submit(...)
    if isinstance(func, ast.Attribute) and func.attr in manifest.task_methods and call.args:
        boundary = PicklingBoundary(
            caller=fn.qualname, path=fn.path, lineno=call.lineno, call=call, kind="task"
        )
        for task in resolver.resolve_reference(call.args[0]):
            boundary.task = task
            graph.worker_entries.add(task)
            graph.edges.setdefault(fn.qualname, set()).add(task)
            graph.callsites.setdefault((fn.qualname, task), []).append(call.lineno)
        graph.pickling_boundaries.append(boundary)
        return
    # Process(target=worker, ...) / Thread(target=...)
    callee_name = _dotted_name(func).split(".")[-1] if not isinstance(func, ast.Name) else func.id
    if callee_name in manifest.process_classes:
        for kw in call.keywords:
            if kw.arg == "target":
                boundary = PicklingBoundary(
                    caller=fn.qualname,
                    path=fn.path,
                    lineno=call.lineno,
                    call=call,
                    kind="process",
                )
                for task in resolver.resolve_reference(kw.value):
                    boundary.task = task
                    graph.worker_entries.add(task)
                    graph.edges.setdefault(fn.qualname, set()).add(task)
                    graph.callsites.setdefault((fn.qualname, task), []).append(
                        call.lineno
                    )
                graph.pickling_boundaries.append(boundary)


def _build_import_graph(graph: CodeGraph) -> None:
    known = set(graph.modules)
    for name, info in graph.modules.items():
        targets: Set[str] = set()
        for dotted in info.module_aliases.values():
            if dotted in known:
                targets.add(dotted)
        for dotted in info.symbol_imports.values():
            base = dotted.rsplit(".", 1)[0]
            if dotted in known:
                targets.add(dotted)
            elif base in known:
                targets.add(base)
        graph.imports[name] = targets


def build_graph(paths: Iterable[str], manifest: SeamManifest) -> CodeGraph:
    """Parse every ``.py`` under ``paths`` into a :class:`CodeGraph`."""
    graph = CodeGraph()
    for path in iter_python_files(paths):
        try:
            source = SourceFile.parse(path)
        except SyntaxError as exc:
            graph.broken[path] = str(exc.msg)
            continue
        name = module_name_for_path(path)
        info = ModuleInfo(name=name, path=path, source=source)
        _collect_module_tables(info)
        graph.modules[name] = info
    for info in graph.modules.values():
        _collect_functions(graph, info)
    # Imports first: edge resolution uses them for visibility filtering.
    _build_import_graph(graph)
    _build_edges(graph, manifest)
    return graph
