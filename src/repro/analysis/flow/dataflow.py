"""Forward dataflow over the call graph: taints and contract facts.

Three whole-program taints are propagated breadth-first along call
edges from the roots declared in the seam manifest:

* **hot** — runs once per packet/per fix (seeded by ``SpotFi.locate``,
  ``estimate_ap`` implementations, pool task functions, shard
  handlers).  Propagation stops at declared cache boundaries.
* **worker** — executes inside a pool worker process (seeded by the
  manifest plus every task function discovered at a fan-out seam).
* **dist** — reachable from router/shard code (seeded by the dist
  package), where blocking calls need deadlines.

On top of that, a per-function *local* analysis tracks which names are
bound to complex-valued arrays (``@contract`` dtype facts, the
manifest's ``csi`` attributes) and which names hold the result of a
contracted call — the latter extends REP009 from literal ``g(f(x))``
nesting to the ubiquitous ``y = f(x); g(y)`` form.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.contracts_static import (
    RULE_SPEC_MISMATCH,
    ContractedFunction,
    _specs_conflict,
    collect_contracts,
)
from repro.analysis.findings import Finding
from repro.analysis.flow.graph import CodeGraph, FunctionInfo
from repro.analysis.flow.seams import SeamManifest
from repro.analysis.rules import _dotted_name


@dataclass
class Taints:
    """Qualname sets produced by the whole-program propagation."""

    hot: Set[str] = field(default_factory=set)
    worker: Set[str] = field(default_factory=set)
    dist: Set[str] = field(default_factory=set)

    def labels_for(self, qualname: str) -> List[str]:
        labels = []
        if qualname in self.hot:
            labels.append("hot")
        if qualname in self.worker:
            labels.append("worker")
        if qualname in self.dist:
            labels.append("dist")
        return labels


def _reachable(
    graph: CodeGraph, seeds: Set[str], blocked: Optional[Set[str]] = None
) -> Set[str]:
    """BFS closure over call edges; ``blocked`` nodes keep their taint
    but do not propagate it onward (cache boundaries)."""
    seen = set(seeds)
    queue = deque(seeds)
    while queue:
        current = queue.popleft()
        if blocked and current in blocked:
            continue
        for callee in graph.edges.get(current, ()):
            if callee not in seen:
                seen.add(callee)
                queue.append(callee)
    return seen


def propagate_taints(graph: CodeGraph, manifest: SeamManifest) -> Taints:
    """Seed taints from the manifest and close them over call edges."""
    hot_seeds = {q for q in graph.functions if manifest.is_hot_root(q)}
    hot_seeds |= graph.worker_entries  # task fns run once per item
    worker_seeds = {q for q in graph.functions if manifest.is_worker_root(q)}
    worker_seeds |= graph.worker_entries
    dist_seeds = {q for q in graph.functions if manifest.is_dist_root(q)}
    blocked = {q for q in graph.functions if manifest.is_cache_boundary(q)}
    return Taints(
        hot=_reachable(graph, hot_seeds, blocked=blocked),
        worker=_reachable(graph, worker_seeds),
        dist=_reachable(graph, dist_seeds),
    )


# ---------------------------------------------------------------------------
# Contract facts
# ---------------------------------------------------------------------------

def collect_contract_table(graph: CodeGraph) -> Dict[str, ContractedFunction]:
    """``qualname -> ContractedFunction`` for every ``@contract`` def.

    :func:`collect_contracts` discovers contracts per module keyed by
    simple name; matching on (path, line) attaches each one to its graph
    node, which disambiguates same-named methods across classes.
    """
    by_location: Dict[Tuple[str, int], str] = {
        (fn.path, fn.lineno): qualname for qualname, fn in graph.functions.items()
    }
    table: Dict[str, ContractedFunction] = {}
    for info in graph.modules.values():
        contracted, _bad = collect_contracts(info.source)
        for fn in contracted:
            qualname = by_location.get((fn.path, fn.line))
            if qualname is not None:
                table[qualname] = fn
    return table


def _is_complex_dtype(dtype: Optional[str]) -> bool:
    return dtype is not None and "complex" in dtype


class LocalFacts:
    """Per-function name facts: complex-valued and contract-valued locals."""

    def __init__(self) -> None:
        #: names known to hold complex arrays -> line of first binding.
        self.complex_names: Dict[str, int] = {}
        #: names holding the result of exactly one contracted call.
        self.contract_values: Dict[str, ContractedFunction] = {}
        #: names assigned more than once (dropped from tracking).
        self.ambiguous: Set[str] = set()


def _resolve_called_contract(
    call: ast.Call,
    fn: FunctionInfo,
    graph: CodeGraph,
    contracts: Dict[str, ContractedFunction],
) -> Optional[ContractedFunction]:
    from repro.analysis.flow.graph import _CallResolver

    info = graph.modules.get(fn.module)
    if info is None:
        return None
    manifest = SeamManifest()  # resolution only; seams irrelevant here
    resolver = _CallResolver(graph, info, fn, manifest)
    resolved = {q for q in resolver.resolve(call) if q in contracts}
    if len(resolved) == 1:
        return contracts[next(iter(resolved))]
    return None


def compute_local_facts(
    fn: FunctionInfo,
    graph: CodeGraph,
    manifest: SeamManifest,
    contracts: Dict[str, ContractedFunction],
) -> LocalFacts:
    """Single forward sweep binding names to complex/contract facts."""
    facts = LocalFacts()
    contract = contracts.get(fn.qualname)
    if contract is not None:
        for param, spec in contract.param_specs.items():
            if _is_complex_dtype(spec.dtype):
                facts.complex_names[param] = fn.lineno
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                _bind_name(
                    facts, target.id, node.value, fn, graph, manifest, contracts,
                    lineno=node.lineno,
                )
            elif isinstance(target, ast.Tuple):
                # csi, index = task  — over-approximate: if the value is
                # complex-tainted, every unpacked name is.
                if _expr_is_complex(facts, node.value, manifest):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            facts.complex_names.setdefault(elt.id, node.lineno)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if node.value is not None:
                _bind_name(
                    facts, node.target.id, node.value, fn, graph, manifest, contracts,
                    lineno=node.lineno,
                )
        elif isinstance(node, ast.Call):
            # tasks.append((estimator, frame.csi, i)) taints `tasks`
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in {"append", "extend", "insert"}
                and isinstance(func.value, ast.Name)
                and any(_expr_is_complex(facts, arg, manifest) for arg in node.args)
            ):
                facts.complex_names.setdefault(func.value.id, node.lineno)
    return facts


def _bind_name(
    facts: LocalFacts,
    name: str,
    value: ast.expr,
    fn: FunctionInfo,
    graph: CodeGraph,
    manifest: SeamManifest,
    contracts: Dict[str, ContractedFunction],
    lineno: int,
) -> None:
    rebound = name in facts.contract_values or name in facts.complex_names
    if rebound:
        facts.ambiguous.add(name)
        facts.contract_values.pop(name, None)
    if isinstance(value, ast.Call):
        produced = _resolve_called_contract(value, fn, graph, contracts)
        if produced is not None and name not in facts.ambiguous:
            facts.contract_values[name] = produced
            if produced.returns is not None and _is_complex_dtype(produced.returns.dtype):
                facts.complex_names[name] = lineno
            return
    if _expr_is_complex(facts, value, manifest):
        facts.complex_names[name] = lineno


def _expr_is_complex(facts: LocalFacts, expr: ast.expr, manifest: SeamManifest) -> bool:
    """Conservative: does this expression carry a complex array?"""
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and node.attr in manifest.complex_attrs:
            return True
        if isinstance(node, ast.Name) and node.id in facts.complex_names:
            return True
        if isinstance(node, ast.Name) and node.id in manifest.complex_attrs:
            return True
    return False


# ---------------------------------------------------------------------------
# Interprocedural REP009: y = f(x); g(y)
# ---------------------------------------------------------------------------

_HINT_MISMATCH = "align the producer's returns spec with the consumer's parameter spec"


def check_contract_flow(
    graph: CodeGraph,
    manifest: SeamManifest,
    contracts: Dict[str, ContractedFunction],
) -> Iterator[Finding]:
    """Extend REP009 to variable-mediated call chains.

    The per-file pass (:mod:`repro.analysis.contracts_static`) only sees
    literal nesting ``g(f(x))``.  Here, a name bound to a contracted
    call's result and later passed to another contracted function is
    checked the same way — across the whole program, using the call
    graph's resolution (imports, methods) instead of bare names.
    """
    for qualname, fn in sorted(graph.functions.items()):
        facts = compute_local_facts(fn, graph, manifest, contracts)
        if not facts.contract_values:
            continue
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            consumed_by = _resolve_called_contract(node, fn, graph, contracts)
            if consumed_by is None:
                continue
            for position, arg in enumerate(node.args):
                if not isinstance(arg, ast.Name):
                    continue
                producer = facts.contract_values.get(arg.id)
                if producer is None or producer.returns is None:
                    continue
                if arg.id in facts.ambiguous:
                    continue
                offset = 1 if _is_method_call(node, consumed_by) else 0
                index = position + offset
                if index >= len(consumed_by.param_order):
                    continue
                param = consumed_by.param_order[index]
                consumed = consumed_by.param_specs.get(param)
                if consumed is None:
                    continue
                conflict = _specs_conflict(producer.returns, consumed)
                if conflict:
                    yield Finding(
                        path=fn.path,
                        line=node.lineno,
                        rule_id=RULE_SPEC_MISMATCH,
                        message=(
                            f"`{arg.id} = {producer.name}(...)` flows into "
                            f"`{consumed_by.name}({param}=...)`: {conflict}"
                        ),
                        hint=_HINT_MISMATCH,
                    )


def _is_method_call(call: ast.Call, consumed_by: ContractedFunction) -> bool:
    """True when the callee is invoked as ``obj.meth(...)`` and its
    contract's first parameter is ``self`` (bound, so positions shift)."""
    if not isinstance(call.func, ast.Attribute):
        return False
    receiver = _dotted_name(call.func.value).split(".")[0]
    if receiver and receiver[0].isupper():
        return False  # Class.method(...) — unbound, no shift
    return bool(consumed_by.param_order) and consumed_by.param_order[0] == "self"
