"""PROTO rule family: wire-protocol and telemetry-name integrity.

* **REP017** — message-type exhaustiveness.  Every ``MessageType``
  member must be *produced* somewhere (encoded/sent/returned) and
  *dispatched* somewhere (compared or used as a dispatch key) in the
  dist layer; a one-sided member is either dead wire surface or an
  unhandled message that the v1-tolerant decode path will silently
  drop.  When the protocol module declares a ``REQUEST_REPLY`` pairing
  map, every member must additionally be accounted for as a request, a
  reply, or an explicitly ``UNPAIRED_MESSAGES`` entry.
* **REP018** — counter-name drift.  Every literal handed to
  ``metrics.increment`` / ``record_*`` must come from the canonical
  registry :mod:`repro.obs.counters` (mirroring what REP010 does for
  span names): a typo'd counter silently splits the series and zeroes
  every dashboard built on the canonical name.
"""

from __future__ import annotations

import ast
import re
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.flow.engine_types import FlowContext, FlowRule
from repro.analysis.flow.graph import ModuleInfo
from repro.analysis.rules import _dotted_name

_RECORD_STAGE_METHODS = {
    "record_submit",
    "record_complete",
    "record_error",
    "record_retry",
    "record_timeout",
}


class MessageExhaustivenessRule(FlowRule):
    """REP017 — wire message types must be produced AND dispatched."""

    rule_id = "REP017"
    title = "wire message type without paired produce/dispatch handling"
    hint = "handle the type in the shard dispatch and produce it via encode_message, or remove it"

    def check(self, ctx: FlowContext) -> Iterator[Finding]:
        proto = self._protocol_module(ctx)
        if proto is None:
            return
        members = self._enum_members(proto, ctx.manifest.message_enum)
        if not members:
            return
        produced: Set[str] = set()
        dispatched: Set[str] = set()
        for info in self._scope_modules(ctx, proto):
            file_produced, file_dispatched = self._classify_refs(
                info, ctx.manifest.message_enum
            )
            produced |= file_produced
            dispatched |= file_dispatched
        for name, lineno in sorted(members.items()):
            if name not in produced:
                yield self.finding(
                    proto.path,
                    lineno,
                    f"message type `{ctx.manifest.message_enum}.{name}` is "
                    f"never produced (encoded/sent) anywhere in the dist layer",
                )
            if name not in dispatched:
                yield self.finding(
                    proto.path,
                    lineno,
                    f"message type `{ctx.manifest.message_enum}.{name}` is "
                    f"never dispatched on (compared/matched) anywhere in the dist layer",
                )
        yield from self._check_pairing(ctx, proto, members)

    # -- discovery -----------------------------------------------------
    def _protocol_module(self, ctx: FlowContext) -> Optional[ModuleInfo]:
        for name, info in sorted(ctx.graph.modules.items()):
            if name.endswith(ctx.manifest.protocol_module_suffix):
                if ctx.manifest.message_enum in info.classes:
                    return info
        return None

    def _scope_modules(
        self, ctx: FlowContext, proto: ModuleInfo
    ) -> List[ModuleInfo]:
        package = proto.name.rsplit(".", 1)[0] if "." in proto.name else ""
        modules = []
        for name, info in sorted(ctx.graph.modules.items()):
            if package and (name == package or name.startswith(package + ".")):
                modules.append(info)
            elif not package:
                modules.append(info)
        return modules

    @staticmethod
    def _enum_members(proto: ModuleInfo, enum_name: str) -> Dict[str, int]:
        members: Dict[str, int] = {}
        for stmt in proto.source.tree.body:
            if isinstance(stmt, ast.ClassDef) and stmt.name == enum_name:
                for child in stmt.body:
                    if (
                        isinstance(child, ast.Assign)
                        and len(child.targets) == 1
                        and isinstance(child.targets[0], ast.Name)
                    ):
                        members[child.targets[0].id] = child.lineno
        return members

    # -- reference classification --------------------------------------
    def _classify_refs(
        self, info: ModuleInfo, enum_name: str
    ) -> Tuple[Set[str], Set[str]]:
        """(produced, dispatched) member names referenced in a module.

        A reference inside a comparison, a dict key, or a ``match`` case
        counts as *dispatch*; any other reference (call argument, tuple
        element, return value) counts as *produce*.
        """
        produced: Set[str] = set()
        dispatched: Set[str] = set()
        dispatch_nodes: Set[int] = set()
        for node in ast.walk(info.source.tree):
            if isinstance(node, ast.Compare):
                for sub in ast.walk(node):
                    dispatch_nodes.add(id(sub))
            elif isinstance(node, ast.Dict):
                for key in node.keys:
                    if key is not None:
                        for sub in ast.walk(key):
                            dispatch_nodes.add(id(sub))
            elif node.__class__.__name__ == "Match":  # py>=3.10 only
                for case in node.cases:  # type: ignore[attr-defined]
                    for sub in ast.walk(case.pattern):
                        dispatch_nodes.add(id(sub))
        for node in ast.walk(info.source.tree):
            member = self._enum_ref(node, info, enum_name)
            if member is None:
                continue
            if id(node) in dispatch_nodes:
                dispatched.add(member)
            else:
                produced.add(member)
        return produced, dispatched

    @staticmethod
    def _enum_ref(node: ast.AST, info: ModuleInfo, enum_name: str) -> Optional[str]:
        if not isinstance(node, ast.Attribute):
            return None
        dotted = _dotted_name(node)
        parts = dotted.split(".")
        if len(parts) >= 2 and parts[-2] == enum_name:
            return parts[-1]
        return None

    # -- pairing map ----------------------------------------------------
    def _check_pairing(
        self, ctx: FlowContext, proto: ModuleInfo, members: Dict[str, int]
    ) -> Iterator[Finding]:
        pairing = self._module_dict(proto, ctx.manifest.request_reply_name)
        if pairing is None:
            return
        unpaired = self._module_set(proto, ctx.manifest.unpaired_name) or set()
        accounted: Set[str] = set(unpaired)
        for request, reply in pairing:
            accounted.add(request)
            accounted.add(reply)
        for name in sorted(set(pairing_member for pair in pairing for pairing_member in pair) | unpaired):
            if name not in members:
                yield self.finding(
                    proto.path,
                    members.get(name, 0),
                    f"`{ctx.manifest.request_reply_name}`/"
                    f"`{ctx.manifest.unpaired_name}` names unknown message "
                    f"type `{name}`",
                )
        for name, lineno in sorted(members.items()):
            if name not in accounted:
                yield self.finding(
                    proto.path,
                    lineno,
                    f"message type `{ctx.manifest.message_enum}.{name}` is "
                    f"missing from `{ctx.manifest.request_reply_name}` "
                    f"(declare its reply or list it in "
                    f"`{ctx.manifest.unpaired_name}`)",
                )

    def _module_dict(
        self, proto: ModuleInfo, name: str
    ) -> Optional[List[Tuple[str, str]]]:
        node = self._module_assign(proto, name)
        if node is None or not isinstance(node, ast.Dict):
            return None
        pairs: List[Tuple[str, str]] = []
        for key, value in zip(node.keys, node.values):
            key_name = self._member_name(key)
            value_name = self._member_name(value)
            if key_name and value_name:
                pairs.append((key_name, value_name))
        return pairs

    def _module_set(self, proto: ModuleInfo, name: str) -> Optional[Set[str]]:
        node = self._module_assign(proto, name)
        if node is None:
            return None
        names: Set[str] = set()
        for sub in ast.walk(node):
            member = self._member_name(sub)
            if member:
                names.add(member)
        return names

    @staticmethod
    def _module_assign(proto: ModuleInfo, name: str) -> Optional[ast.expr]:
        for stmt in proto.source.tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        value = stmt.value
                        # unwrap frozenset({...}) / dict(...) wrappers
                        if isinstance(value, ast.Call) and value.args:
                            return value.args[0]
                        return value
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name) and stmt.target.id == name:
                    value = stmt.value
                    if isinstance(value, ast.Call) and value.args:
                        return value.args[0]
                    return value
        return None

    @staticmethod
    def _member_name(node: Optional[ast.AST]) -> str:
        if isinstance(node, ast.Attribute):
            return node.attr
        return ""


class CounterDriftRule(FlowRule):
    """REP018 — metric counter literals must come from the registry."""

    rule_id = "REP018"
    title = "metric counter emitted with a non-canonical name"
    hint = "use a name from repro.obs.counters.CANONICAL_COUNTERS or register the new counter there"

    def check(self, ctx: FlowContext) -> Iterator[Finding]:
        # Local import mirrors REP010: analysis stays importable without
        # the obs package at module-import time.
        from repro.obs.counters import (
            CANONICAL_COUNTERS,
            COUNTER_PATTERNS,
            is_canonical_counter,
            is_canonical_counter_prefix,
            is_canonical_stage_counter,
        )
        from repro.obs.counters import CANONICAL_STAGE_COUNTERS, STAGE_COUNTER_PATTERNS

        del CANONICAL_COUNTERS, COUNTER_PATTERNS  # prefix helper covers them

        for name, info in sorted(ctx.graph.modules.items()):
            for node in ast.walk(info.source.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                receiver = _dotted_name(func.value).split(".")[-1]
                if func.attr == "increment" and receiver.endswith("metrics"):
                    yield from self._check_name(
                        info, node, is_canonical_counter, is_canonical_counter_prefix,
                        what="counter",
                    )
                elif func.attr == "record_drop" and receiver.endswith("metrics"):
                    yield from self._check_name(
                        info,
                        node,
                        lambda reason: is_canonical_counter(f"drop.{reason}"),
                        lambda prefix: is_canonical_counter_prefix(f"drop.{prefix}"),
                        what="drop reason",
                    )
                elif func.attr in _RECORD_STAGE_METHODS and receiver.endswith(
                    "metrics"
                ):
                    yield from self._check_name(
                        info,
                        node,
                        is_canonical_stage_counter,
                        lambda prefix: self._stage_prefix_ok(
                            prefix, CANONICAL_STAGE_COUNTERS, STAGE_COUNTER_PATTERNS
                        ),
                        what="stage",
                    )
                elif func.attr in ctx.manifest.task_methods:
                    yield from self._check_stage_kwarg(
                        info, node, is_canonical_stage_counter
                    )

    def _check_name(
        self,
        info: ModuleInfo,
        call: ast.Call,
        ok: Callable[[str], bool],
        prefix_ok: Callable[[str], bool],
        what: str,
    ) -> Iterator[Finding]:
        if not call.args:
            return
        first = call.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            if not ok(first.value):
                yield self.finding(
                    info.path,
                    first.lineno,
                    f"{what} {first.value!r} is not in the canonical counter registry",
                )
        elif isinstance(first, ast.JoinedStr):
            prefix = self._literal_prefix(first)
            if prefix and not prefix_ok(prefix):
                yield self.finding(
                    info.path,
                    first.lineno,
                    f"{what} f-string prefix {prefix!r} matches no canonical "
                    f"counter family",
                )

    def _check_stage_kwarg(
        self, info: ModuleInfo, call: ast.Call, ok: Callable[[str], bool]
    ) -> Iterator[Finding]:
        for kw in call.keywords:
            if kw.arg != "stage":
                continue
            if isinstance(kw.value, ast.Constant) and isinstance(kw.value.value, str):
                if not ok(kw.value.value):
                    yield self.finding(
                        info.path,
                        kw.value.lineno,
                        f"stage {kw.value.value!r} is not a canonical stage counter",
                    )

    @staticmethod
    def _literal_prefix(joined: ast.JoinedStr) -> str:
        prefix = ""
        for value in joined.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                prefix += value.value
            else:
                break
        return prefix

    @staticmethod
    def _stage_prefix_ok(
        prefix: str,
        canonical: FrozenSet[str],
        patterns: Tuple["re.Pattern[str]", ...],
    ) -> bool:
        if any(stage.startswith(prefix) for stage in canonical):
            return True
        return any(
            pattern.pattern.startswith(re.escape(prefix))
            or re.match(pattern.pattern, prefix) is not None
            for pattern in patterns
        )
