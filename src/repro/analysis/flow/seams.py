"""Seam manifest: the declared indirection points of the codebase.

A conservative AST call graph cannot see through runtime indirection —
process-pool fan-out (``executor.map_ordered(task_fn, items)``),
``multiprocessing.Process(target=...)``, the estimator registry, or the
shard message dispatch.  Rather than guessing, the flow engine reads a
small *seam manifest* that names those seams explicitly:

* **hot roots** — qualname patterns whose bodies (and everything they
  reach) run once per packet / per fix: the SpotFi hot path.
* **worker roots** — functions that execute inside pool worker
  processes (task functions are also discovered automatically at
  ``map_ordered``/``submit``/``Process(target=...)`` call sites).
* **dist roots** — functions reachable from router/shard code, where
  every blocking call needs a deadline (REP014).
* **cache boundaries** — functions whose *callees* are amortized behind
  a cache (``SteeringCache.grids_for``): hot taint stops there, so
  REP011 does not flag grid construction that happens once per config.
* **pickling seams** — the method names that ship arguments to another
  process by pickling (REP013), and the allowlisted raw-bytes encoders
  that are the approved way to move complex128 across a boundary.

The default manifest below describes *this* repository.  Tests build
custom manifests for synthetic fixture trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import FrozenSet, Iterable, Tuple


def _matches(qualname: str, patterns: Iterable[str]) -> bool:
    return any(fnmatchcase(qualname, pattern) for pattern in patterns)


@dataclass(frozen=True)
class SeamManifest:
    """Declared roots and indirection seams for the flow analysis."""

    #: Qualname patterns (fnmatch) seeding the hot-path taint.
    hot_roots: Tuple[str, ...] = ()
    #: Qualname patterns seeding the worker-context taint (functions that
    #: run inside pool worker processes).
    worker_roots: Tuple[str, ...] = ()
    #: Qualname patterns seeding the dist-reachable taint (router/shard
    #: code where blocking calls need deadlines).
    dist_roots: Tuple[str, ...] = ()
    #: Qualname patterns whose callees are cache-amortized: hot taint is
    #: not propagated through their outgoing edges.
    cache_boundaries: Tuple[str, ...] = ()
    #: Method names that pickle their non-callable arguments into
    #: another process (executor fan-out).
    task_methods: FrozenSet[str] = frozenset({"map_ordered", "submit", "apply_async"})
    #: Class names whose ``target=`` keyword is a worker entry point and
    #: whose instances need exception-path cleanup (REP015).
    process_classes: FrozenSet[str] = frozenset(
        {"Process", "Thread", "ShardProcess", "Popen"}
    )
    #: Attribute names whose values carry complex128 CSI arrays.
    complex_attrs: FrozenSet[str] = frozenset({"csi"})
    #: Qualname patterns allowed to move complex arrays across a
    #: pickling/wire boundary (the raw-bytes encoders).
    raw_bytes_ok: Tuple[str, ...] = ()
    #: Module suffix holding the wire protocol (REP017).
    protocol_module_suffix: str = ".protocol"
    #: Enum class naming the wire message types.
    message_enum: str = "MessageType"
    #: Optional module-level dict pairing request -> reply types.
    request_reply_name: str = "REQUEST_REPLY"
    #: Optional module-level set of deliberately unpaired types.
    unpaired_name: str = "UNPAIRED_MESSAGES"
    #: Extra fnmatch patterns for modules the PROTO rules scan; empty
    #: means "the protocol module's package".
    protocol_scope: Tuple[str, ...] = ()
    #: Cap on how many same-named methods an unqualified ``x.meth()``
    #: call may resolve to before the edge is considered too ambiguous.
    max_attr_candidates: int = 8

    def is_hot_root(self, qualname: str) -> bool:
        return _matches(qualname, self.hot_roots)

    def is_worker_root(self, qualname: str) -> bool:
        return _matches(qualname, self.worker_roots)

    def is_dist_root(self, qualname: str) -> bool:
        return _matches(qualname, self.dist_roots)

    def is_cache_boundary(self, qualname: str) -> bool:
        return _matches(qualname, self.cache_boundaries)

    def is_raw_bytes_ok(self, qualname: str) -> bool:
        return _matches(qualname, self.raw_bytes_ok)


#: The seam manifest for this repository.  Updated alongside any new
#: fan-out seam, estimator entry point, or shard handler family.
DEFAULT_MANIFEST = SeamManifest(
    hot_roots=(
        # one fix attempt: the per-packet/per-AP estimation pipeline
        "repro.core.pipeline.SpotFi.locate",
        "repro.core.pipeline.locate_from_reports",
        # pool task functions (also found via the map_ordered seam)
        "repro.core.estimator.estimate_packet_task",
        "repro.core.estimator.estimate_packet_safe",
        # every registered estimator's per-AP entry point (registry
        # indirection: resolved by name, not through the registry)
        "*.estimate_ap",
        # shard-side request handlers run once per wire message
        "repro.dist.shard.*._handle_*",
    ),
    worker_roots=(
        "repro.runtime.executor._ChunkRunner.__call__",
        "repro.core.estimator.estimate_packet_task",
        "repro.core.estimator.estimate_packet_safe",
    ),
    dist_roots=(
        # the whole dist layer talks over sockets / child processes
        "repro.dist.*",
    ),
    cache_boundaries=(
        # steering/grid construction is amortized behind the process-
        # local SteeringCache; its callees do not run per packet
        "repro.runtime.cache.SteeringCache.grids_for",
        # lru_cached index/identity/grid helpers allocate on miss only
        "repro.core.indexcache.*",
    ),
    raw_bytes_ok=(
        # encode_frames/decode_frames ship complex128 as raw bytes —
        # the approved wire path for CSI
        "repro.dist.protocol.*",
    ),
)
