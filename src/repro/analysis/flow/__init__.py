"""Whole-program flow analysis over ``src/repro`` (REP011–REP018).

Layers:

* :mod:`repro.analysis.flow.graph` — module import graph + conservative
  AST call graph (imports, ``self.method``, bare-attribute matching,
  seam-declared indirections).
* :mod:`repro.analysis.flow.seams` — the seam manifest declaring hot /
  worker / dist roots, cache boundaries, and pickling seams.
* :mod:`repro.analysis.flow.dataflow` — taint propagation and the
  interprocedural ``@contract`` extension of REP009.
* :mod:`repro.analysis.flow.rules_perf` / ``rules_con`` /
  ``rules_proto`` — the PERF (REP011–REP013), CON (REP014–REP016), and
  PROTO (REP017–REP018) rule families.
* :mod:`repro.analysis.flow.engine` — orchestration, suppression, DOT
  export; the ``spotfi-analysis --flow`` entry point.
"""

from repro.analysis.flow.dataflow import Taints, propagate_taints
from repro.analysis.flow.engine import (
    FLOW_RULES,
    FlowReport,
    analyze_flow,
    graph_to_dot,
    select_flow_rules,
)
from repro.analysis.flow.engine_types import FlowContext, FlowRule
from repro.analysis.flow.graph import CodeGraph, FunctionInfo, ModuleInfo, build_graph
from repro.analysis.flow.seams import DEFAULT_MANIFEST, SeamManifest

__all__ = [
    "CodeGraph",
    "FunctionInfo",
    "ModuleInfo",
    "build_graph",
    "SeamManifest",
    "DEFAULT_MANIFEST",
    "Taints",
    "propagate_taints",
    "FlowContext",
    "FlowRule",
    "FLOW_RULES",
    "FlowReport",
    "analyze_flow",
    "graph_to_dot",
    "select_flow_rules",
]
