"""CON rule family: concurrency discipline in router/shard code.

The dist layer streams CSI through real sockets and child processes;
the chaos suite (PR 8) proved the failure modes are reachable.  These
rules make the defensive idioms mandatory:

* **REP014** — blocking calls (``recv``/``accept``/``connect``/
  ``join``) reachable from router/shard code with no visible deadline:
  no timeout argument, no ``settimeout`` in the enclosing function, no
  timeout-carrying parameter, no selector gate.
* **REP015** — a ``Process``/``Thread``/``Popen`` created, started,
  and neither owned by anything that outlives the function nor cleaned
  up on an exception path: a crash between ``start()`` and ``join()``
  leaks a live child.
* **REP016** — worker-context-tainted functions mutating module-level
  state: the mutation happens in the worker's copy and silently
  diverges from the parent (and from every other worker).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analysis.findings import Finding
from repro.analysis.flow.engine_types import FlowContext, FlowRule
from repro.analysis.flow.graph import FunctionInfo
from repro.analysis.rules import _dotted_name

_BLOCKING_ATTRS = {"recv", "recv_into", "recvfrom", "accept", "connect", "join"}
_CLEANUP_ATTRS = {"terminate", "kill", "join", "close", "shutdown", "stop"}
_MUTATING_ATTRS = {
    "append", "extend", "add", "update", "insert", "clear", "pop", "popitem",
    "setdefault", "remove", "discard",
}


def _has_deadline_escape(fn_node: ast.AST, call: ast.Call) -> bool:
    """Any statically visible deadline covering this blocking call?"""
    # 1. an explicit timeout-ish keyword on the call itself
    for kw in call.keywords:
        if kw.arg and ("timeout" in kw.arg or "deadline" in kw.arg):
            return True
    # 2. join(5.0) — a positional arg on join IS the timeout
    if isinstance(call.func, ast.Attribute) and call.func.attr == "join" and call.args:
        return True
    # 3. the enclosing function receives a timeout/deadline parameter
    args = getattr(fn_node, "args", None)
    if args is not None:
        for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if "timeout" in a.arg or "deadline" in a.arg:
                return True
    # 4. the function arms a timeout or polls a selector itself
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in {"settimeout", "setdefaulttimeout"}:
                return True
            if node.func.attr == "select" and (node.args or node.keywords):
                return True
    return False


class NoDeadlineRule(FlowRule):
    """REP014 — blocking call without a deadline in dist-reachable code.

    A shard that stops answering must degrade into a timeout the router
    can count (``dist.request.timeouts``) — never into a hung thread.
    Every ``recv``/``accept``/``connect``/``join`` reachable from the
    dist layer needs a statically visible deadline: a timeout argument,
    a ``settimeout`` in the same function, a timeout parameter it
    forwards, or a selector gate.
    """

    rule_id = "REP014"
    title = "blocking socket/process call with no deadline in dist-reachable code"
    hint = "pass a timeout, call settimeout, or gate the call behind a selector with a timeout"

    def check(self, ctx: FlowContext) -> Iterator[Finding]:
        for qualname in sorted(ctx.taints.dist):
            fn = ctx.graph.functions[qualname]
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr not in _BLOCKING_ATTRS:
                    continue
                # str.join / path.join are not blocking calls
                receiver = _dotted_name(func.value).split(".")[-1]
                if func.attr == "join" and receiver in {"os", "path", "sep", ""}:
                    continue
                if _has_deadline_escape(fn.node, node):
                    continue
                yield self.finding(
                    fn.path,
                    node.lineno,
                    f"`.{func.attr}()` can block forever in dist-reachable "
                    f"`{fn.simple_name}`",
                )


class OrphanProcessRule(FlowRule):
    """REP015 — process/thread started without exception-path cleanup.

    If the function that starts a child neither hands it to an owner
    that outlives the call nor terminates/joins it in an ``except`` /
    ``finally`` path, any exception after ``start()`` leaks a live
    child process — the exact leak the chaos crash-restart scenario
    exists to catch at runtime.
    """

    rule_id = "REP015"
    title = "process/thread creation without terminate/join on an exception path"
    hint = "wrap start/use in try/finally (or except) that terminates or joins the child"

    def check(self, ctx: FlowContext) -> Iterator[Finding]:
        for qualname, fn in sorted(ctx.graph.functions.items()):
            yield from self._check_function(ctx, fn)

    def _check_function(self, ctx: FlowContext, fn: FunctionInfo) -> Iterator[Finding]:
        created: List[ast.Assign] = []
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                cls = _dotted_name(node.value.func).split(".")[-1]
                if cls in ctx.manifest.process_classes:
                    created.append(node)
        for assign in created:
            name = assign.targets[0].id  # type: ignore[union-attr]
            if not self._is_started(fn.node, name):
                continue
            if self._escapes(fn.node, name, assign):
                continue
            if self._cleaned_up(fn.node, name):
                continue
            cls = _dotted_name(assign.value.func).split(".")[-1]  # type: ignore[union-attr]
            yield self.finding(
                fn.path,
                assign.lineno,
                f"`{name} = {cls}(...)` is started in `{fn.simple_name}` "
                f"but never terminated/joined on an exception path",
            )

    @staticmethod
    def _is_started(fn_node: ast.AST, name: str) -> bool:
        for node in ast.walk(fn_node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "start"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
            ):
                return True
        return False

    @staticmethod
    def _escapes(fn_node: ast.AST, name: str, assign: ast.Assign) -> bool:
        """Returned, yielded, stored on an object, or handed to a call."""
        for node in ast.walk(fn_node):
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = getattr(node, "value", None)
                if value is not None and _references(value, name):
                    return True
            elif isinstance(node, ast.Assign) and node is not assign:
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        if _references(node.value, name):
                            return True
            elif isinstance(node, ast.Call):
                func = node.func
                # method calls *on* the object itself are not escapes
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == name
                ):
                    continue
                for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                    if _references(arg, name):
                        return True
        return False

    @staticmethod
    def _cleaned_up(fn_node: ast.AST, name: str) -> bool:
        """terminate/kill/join/close on the object inside except/finally."""
        for node in ast.walk(fn_node):
            if not isinstance(node, ast.Try):
                continue
            cleanup_bodies = list(node.finalbody)
            for handler in node.handlers:
                cleanup_bodies.extend(handler.body)
            for stmt in cleanup_bodies:
                for child in ast.walk(stmt):
                    if (
                        isinstance(child, ast.Call)
                        and isinstance(child.func, ast.Attribute)
                        and child.func.attr in _CLEANUP_ATTRS
                        and isinstance(child.func.value, ast.Name)
                        and child.func.value.id == name
                    ):
                        return True
        return False


def _references(expr: ast.AST, name: str) -> bool:
    return any(
        isinstance(node, ast.Name) and node.id == name for node in ast.walk(expr)
    )


class WorkerGlobalMutationRule(FlowRule):
    """REP016 — module-level state mutated from worker-context code.

    Pool workers run in forked/spawned processes: a mutation of a
    module-level dict/list from a task function changes the *worker's*
    copy only.  The parent never sees it, each worker diverges
    independently, and the bug reproduces only under multiprocessing.
    Process-local caches are legitimate — suppress with a comment
    saying so.
    """

    rule_id = "REP016"
    title = "module-level state mutated from a worker-context function"
    hint = "return results instead of mutating globals, or document the cache as process-local"

    def check(self, ctx: FlowContext) -> Iterator[Finding]:
        for qualname in sorted(ctx.taints.worker):
            fn = ctx.graph.functions[qualname]
            info = ctx.graph.modules.get(fn.module)
            if info is None:
                continue
            globals_declared: Set[str] = set()
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Global):
                    globals_declared.update(node.names)
            mutables = info.module_mutables | globals_declared
            for node in ast.walk(fn.node):
                # rebinding a `global NAME` is a mutation of module state
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name) and target.id in globals_declared:
                            yield self.finding(
                                fn.path,
                                node.lineno,
                                f"worker-context `{fn.simple_name}` rebinds "
                                f"module-level `{target.id}`",
                            )
                name = self._mutated_name(node)
                if name is not None and name in mutables:
                    yield self.finding(
                        fn.path,
                        node.lineno,
                        f"worker-context `{fn.simple_name}` mutates "
                        f"module-level `{name}`",
                    )

    @staticmethod
    def _mutated_name(node: ast.AST) -> Optional[str]:
        # NAME[...] = ... / NAME[...] += ...
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    return target.value.id
                if isinstance(target, ast.Name) and isinstance(node, ast.AugAssign):
                    return target.id
        # NAME.append(...) etc.
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATING_ATTRS
            and isinstance(node.func.value, ast.Name)
        ):
            return node.func.value.id
        return None
