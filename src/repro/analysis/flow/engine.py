"""Flow engine: build graph, propagate taints, run REP011–REP018.

Entry point is :func:`analyze_flow`; the runner and the CLI call it
with the repo paths and (optionally) a rule-ID filter.  Suppression is
uniform: a ``# repro: noqa REP01x`` comment on the finding's line wins,
exactly as for the per-file lint rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding, sort_findings
from repro.analysis.flow.dataflow import (
    Taints,
    check_contract_flow,
    collect_contract_table,
    propagate_taints,
)
from repro.analysis.flow.engine_types import FlowContext, FlowRule
from repro.analysis.flow.graph import CodeGraph, build_graph
from repro.analysis.flow.rules_con import (
    NoDeadlineRule,
    OrphanProcessRule,
    WorkerGlobalMutationRule,
)
from repro.analysis.flow.rules_perf import (
    ComplexDowncastRule,
    PerPacketAllocationRule,
    PickledComplexRule,
)
from repro.analysis.flow.rules_proto import CounterDriftRule, MessageExhaustivenessRule
from repro.analysis.flow.seams import DEFAULT_MANIFEST, SeamManifest

#: Every flow rule, in ID order.
FLOW_RULES: Tuple[FlowRule, ...] = (
    PerPacketAllocationRule(),
    ComplexDowncastRule(),
    PickledComplexRule(),
    NoDeadlineRule(),
    OrphanProcessRule(),
    WorkerGlobalMutationRule(),
    MessageExhaustivenessRule(),
    CounterDriftRule(),
)

#: ID of the interprocedural contract extension (shares REP009).
CONTRACT_FLOW_RULE = "REP009"


@dataclass
class FlowReport:
    """Result of one whole-program analysis run."""

    findings: List[Finding] = field(default_factory=list)
    graph: Optional[CodeGraph] = None
    taints: Taints = field(default_factory=Taints)

    @property
    def ok(self) -> bool:
        return not self.findings

    def stats(self) -> Dict[str, int]:
        graph = self.graph
        return {
            "modules": len(graph.modules) if graph else 0,
            "functions": len(graph.functions) if graph else 0,
            "edges": sum(len(v) for v in graph.edges.values()) if graph else 0,
            "hot": len(self.taints.hot),
            "worker": len(self.taints.worker),
            "dist": len(self.taints.dist),
            "findings": len(self.findings),
        }


def select_flow_rules(rule_ids: Optional[Sequence[str]]) -> List[FlowRule]:
    """The flow rule set, optionally filtered to specific rule IDs."""
    if not rule_ids:
        return list(FLOW_RULES)
    wanted = {rule_id.strip().upper() for rule_id in rule_ids}
    return [rule for rule in FLOW_RULES if rule.rule_id in wanted]


def analyze_flow(
    paths: Sequence[str],
    manifest: Optional[SeamManifest] = None,
    rule_ids: Optional[Sequence[str]] = None,
) -> FlowReport:
    """Run the whole-program pass over ``paths``."""
    manifest = manifest if manifest is not None else DEFAULT_MANIFEST
    graph = build_graph(paths, manifest)
    taints = propagate_taints(graph, manifest)
    contracts = collect_contract_table(graph)
    ctx = FlowContext(graph=graph, manifest=manifest, taints=taints, contracts=contracts)
    findings: List[Finding] = []
    for rule in select_flow_rules(rule_ids):
        findings.extend(rule.check(ctx))
    if rule_ids is None or CONTRACT_FLOW_RULE in {
        rule_id.strip().upper() for rule_id in rule_ids
    }:
        findings.extend(check_contract_flow(graph, manifest, contracts))
    findings = [f for f in findings if not _suppressed(graph, f)]
    return FlowReport(findings=sort_findings(set(findings)), graph=graph, taints=taints)


def _suppressed(graph: CodeGraph, finding: Finding) -> bool:
    source = graph.source_for_path(finding.path)
    return source is not None and source.suppressed(finding.rule_id, finding.line)


def graph_to_dot(graph: CodeGraph, taints: Optional[Taints] = None) -> str:
    """Graphviz DOT rendering of the call graph with taint coloring.

    Hot nodes are red, worker nodes dashed, dist nodes blue; a node that
    is both hot and dist keeps the hot fill and gains the dist border.
    """
    taints = taints or Taints()
    lines = [
        "digraph callgraph {",
        "  rankdir=LR;",
        '  node [shape=box, fontsize=9, fontname="monospace"];',
    ]
    for qualname in sorted(graph.functions):
        attrs = []
        if qualname in taints.hot:
            attrs.append('fillcolor="#ffdddd", style=filled')
        if qualname in taints.worker:
            attrs.append("style=dashed" if qualname not in taints.hot else "peripheries=2")
        if qualname in taints.dist:
            attrs.append('color="#3355bb"')
        label = qualname.replace('"', "'")
        attr_text = (", " + ", ".join(attrs)) if attrs else ""
        lines.append(f'  "{label}" [label="{label}"{attr_text}];')
    for caller in sorted(graph.edges):
        for callee in sorted(graph.edges[caller]):
            lines.append(f'  "{caller}" -> "{callee}";')
    lines.append("}")
    return "\n".join(lines)
