"""PERF rule family: hot-path allocation and copy discipline.

SpotFi's serving cost is per-packet 2-D MUSIC; ROADMAP items 1–2 hinge
on the hot path staying allocation- and copy-clean.  These rules flag
the regressions that erode it:

* **REP011** — per-packet allocation reachable from a hot root: numpy
  allocators inside loops, index/identity arrays (``np.arange`` /
  ``np.eye``) rebuilt on every call, and ``np.concatenate``-of-
  comprehension list building.
* **REP012** — implicit complex→real downcasts (``.real``,
  ``astype(float)``) on complex-tainted values, and avoidable
  ``np.copy`` / ``.copy()`` of complex arrays in hot code.
* **REP013** — complex128 arrays crossing a pickling boundary
  (executor ``map_ordered``/``submit``, ``Process(target=...)``)
  without a shared-memory or raw-bytes path: each CSI matrix is
  serialized element-wise per task, which is exactly the copy ROADMAP
  item 2 exists to remove.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.analysis.findings import Finding
from repro.analysis.flow.dataflow import LocalFacts, compute_local_facts
from repro.analysis.flow.engine_types import FlowContext, FlowRule
from repro.analysis.flow.graph import FunctionInfo, PicklingBoundary
from repro.analysis.rules import _dotted_name

_NUMPY_MODULES = {"np", "numpy"}
_LOOP_ALLOCATORS = {
    "zeros", "empty", "ones", "full", "arange", "eye", "identity", "linspace",
}
_REBUILT_EVERY_CALL = {"arange", "eye", "identity"}
_LIST_BUILDERS = {"concatenate", "stack", "vstack", "hstack", "column_stack"}
_FLOAT_DTYPES = {
    "float", "float32", "float64", "f4", "f8", "<f4", "<f8", "double", "single",
}


def _numpy_call_name(call: ast.Call) -> str:
    """``zeros`` for ``np.zeros(...)`` / ``numpy.zeros(...)``, else ''."""
    dotted = _dotted_name(call.func)
    parts = dotted.split(".")
    if len(parts) == 2 and parts[0] in _NUMPY_MODULES:
        return parts[1]
    return ""


def _loops_containing(fn_node: ast.AST) -> List[ast.AST]:
    return [n for n in ast.walk(fn_node) if isinstance(n, (ast.For, ast.While))]


def _nodes_in(loop: ast.AST) -> Set[int]:
    return {id(n) for n in ast.walk(loop)}


class PerPacketAllocationRule(FlowRule):
    """REP011 — per-packet allocation in hot-path-reachable code.

    An allocation inside a function reachable from ``SpotFi.locate`` /
    ``estimate_ap`` / a pool task runs once per packet (or worse, once
    per loop iteration per packet).  Index vectors and identity
    matrices are loop-invariant by construction — rebuild them once and
    cache them.  Allocation behind the declared cache boundaries
    (``SteeringCache.grids_for``) is amortized and not flagged.
    """

    rule_id = "REP011"
    title = "per-packet allocation reachable from the hot path"
    hint = "hoist the allocation out of the hot path or cache it (see repro.runtime.cache)"

    def check(self, ctx: FlowContext) -> Iterator[Finding]:
        for qualname in sorted(ctx.taints.hot):
            if ctx.manifest.is_cache_boundary(qualname):
                continue  # allocation here happens only on cache miss
            fn = ctx.graph.functions[qualname]
            loop_nodes: Set[int] = set()
            for loop in _loops_containing(fn.node):
                loop_nodes |= _nodes_in(loop) - {id(loop)}
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                name = _numpy_call_name(node)
                if not name:
                    continue
                if name in _LOOP_ALLOCATORS and id(node) in loop_nodes:
                    yield self.finding(
                        fn.path,
                        node.lineno,
                        f"`np.{name}` allocates inside a loop in hot "
                        f"function `{fn.simple_name}`",
                    )
                elif name in _REBUILT_EVERY_CALL:
                    yield self.finding(
                        fn.path,
                        node.lineno,
                        f"`np.{name}` rebuilds a loop-invariant array on "
                        f"every call of hot function `{fn.simple_name}`",
                    )
                elif name in _LIST_BUILDERS and any(
                    isinstance(arg, (ast.ListComp, ast.GeneratorExp))
                    for arg in node.args
                ):
                    yield self.finding(
                        fn.path,
                        node.lineno,
                        f"`np.{name}` over a comprehension builds a "
                        f"per-call list of arrays in hot function "
                        f"`{fn.simple_name}`",
                    )


class ComplexDowncastRule(FlowRule):
    """REP012 — implicit complex→real downcast or avoidable copy.

    ``.real`` and ``astype(float)`` on a complex-tainted value silently
    discard the imaginary half of the CSI (NumPy emits at most a
    ComplexWarning); phase information *is* the signal in SpotFi, so a
    downcast is a correctness bug until proven intentional.  Copies of
    complex arrays on the hot path double the largest allocations in
    the pipeline.
    """

    rule_id = "REP012"
    title = "complex→real downcast or avoidable complex copy"
    hint = "keep complex128 end-to-end; take np.abs/np.angle explicitly, avoid .copy() on the hot path"

    def check(self, ctx: FlowContext) -> Iterator[Finding]:
        for qualname, fn in sorted(ctx.graph.functions.items()):
            facts = compute_local_facts(fn, ctx.graph, ctx.manifest, ctx.contracts)
            hot = qualname in ctx.taints.hot
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Attribute) and node.attr == "real":
                    if self._tainted(facts, node.value, ctx):
                        yield self.finding(
                            fn.path,
                            node.lineno,
                            f"`.real` discards the imaginary part of a "
                            f"complex value in `{fn.simple_name}`",
                        )
                elif isinstance(node, ast.Call):
                    yield from self._check_call(ctx, fn, facts, node, hot)

    def _check_call(
        self,
        ctx: FlowContext,
        fn: FunctionInfo,
        facts: LocalFacts,
        node: ast.Call,
        hot: bool,
    ) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "astype":
            if self._tainted(facts, func.value, ctx) and node.args:
                dtype = self._dtype_name(node.args[0])
                if dtype in _FLOAT_DTYPES:
                    yield self.finding(
                        fn.path,
                        node.lineno,
                        f"`astype({dtype})` downcasts a complex value to "
                        f"real in `{fn.simple_name}`",
                    )
        if not hot:
            return
        if isinstance(func, ast.Attribute) and func.attr == "copy" and not node.args:
            if self._tainted(facts, func.value, ctx):
                yield self.finding(
                    fn.path,
                    node.lineno,
                    f"`.copy()` duplicates a complex array in hot "
                    f"function `{fn.simple_name}`",
                )
        elif _numpy_call_name(node) == "copy" and node.args:
            if self._tainted(facts, node.args[0], ctx):
                yield self.finding(
                    fn.path,
                    node.lineno,
                    f"`np.copy` duplicates a complex array in hot "
                    f"function `{fn.simple_name}`",
                )
        if isinstance(func, ast.Attribute) and func.attr == "astype":
            keywords = {kw.arg: kw.value for kw in node.keywords}
            copy_kw = keywords.get("copy")
            if (
                isinstance(copy_kw, ast.Constant)
                and copy_kw.value is True
                and self._tainted(facts, func.value, ctx)
            ):
                yield self.finding(
                    fn.path,
                    node.lineno,
                    f"`astype(..., copy=True)` duplicates a complex array "
                    f"in hot function `{fn.simple_name}`",
                )

    @staticmethod
    def _dtype_name(arg: ast.expr) -> str:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        dotted = _dotted_name(arg)
        return dotted.split(".")[-1] if dotted else ""

    @staticmethod
    def _tainted(facts: LocalFacts, expr: ast.expr, ctx: FlowContext) -> bool:
        from repro.analysis.flow.dataflow import _expr_is_complex

        return _expr_is_complex(facts, expr, ctx.manifest)


class PickledComplexRule(FlowRule):
    """REP013 — complex128 arrays crossing a pickling boundary.

    ``map_ordered``/``submit``/``Process(target=...)`` pickle their
    arguments into the worker process.  A complex128 CSI matrix pickled
    per task is serialized, copied, and deserialized on every packet —
    the dominant distribution overhead measured in BENCH_dist.json.
    Approved crossings are the raw-bytes wire encoders
    (``repro.dist.protocol``) and, once ROADMAP item 2 lands, shared
    memory; anything else needs an explicit suppression.
    """

    rule_id = "REP013"
    title = "complex array pickled across a process boundary"
    hint = "ship raw bytes (repro.dist.protocol) or shared memory instead of pickling complex arrays"

    def check(self, ctx: FlowContext) -> Iterator[Finding]:
        for boundary in ctx.graph.pickling_boundaries:
            caller = ctx.graph.functions.get(boundary.caller)
            if caller is None or ctx.manifest.is_raw_bytes_ok(boundary.caller):
                continue
            facts = compute_local_facts(caller, ctx.graph, ctx.manifest, ctx.contracts)
            payload_args: List[ast.expr] = []
            if boundary.kind == "task":
                payload_args = list(boundary.call.args[1:])
            else:  # Process(target=..., args=(...))
                payload_args = [
                    kw.value for kw in boundary.call.keywords if kw.arg == "args"
                ]
            for arg in payload_args:
                if ComplexDowncastRule._tainted(facts, arg, ctx):
                    yield self.finding(
                        boundary.path,
                        boundary.lineno,
                        f"complex-tainted argument pickled through "
                        f"`{self._seam_name(boundary)}` in "
                        f"`{caller.simple_name}`",
                    )
                    break

    @staticmethod
    def _seam_name(boundary: PicklingBoundary) -> str:
        func = boundary.call.func
        if isinstance(func, ast.Attribute):
            return func.attr
        return _dotted_name(func) or "fan-out"
