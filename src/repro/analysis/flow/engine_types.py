"""Shared types for flow rules: the context handed to every rule and
the rule base class.  Kept separate from :mod:`engine` so rule modules
and the engine can import them without a cycle."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator

from repro.analysis.contracts_static import ContractedFunction
from repro.analysis.findings import Finding
from repro.analysis.flow.dataflow import Taints
from repro.analysis.flow.graph import CodeGraph
from repro.analysis.flow.seams import SeamManifest


@dataclass
class FlowContext:
    """Everything a flow rule may consult: graph, taints, seams, facts."""

    graph: CodeGraph
    manifest: SeamManifest
    taints: Taints
    contracts: Dict[str, ContractedFunction] = field(default_factory=dict)


class FlowRule:
    """Base class for whole-program rules (REP011–REP018).

    Unlike per-file :class:`repro.analysis.rules.Rule`, a flow rule
    checks the :class:`FlowContext` once; findings may land in any file
    the graph covers.  ``check`` should *not* apply noqa suppression —
    the engine does that uniformly from the parsed sources.
    """

    rule_id: str = "REP000"
    title: str = ""
    hint: str = ""

    def check(self, ctx: FlowContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, path: str, line: int, message: str) -> Finding:
        return Finding(
            path=path, line=line, rule_id=self.rule_id, message=message, hint=self.hint
        )
