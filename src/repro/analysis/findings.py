"""Finding records shared by every analysis pass.

A :class:`Finding` is one diagnostic: a stable rule ID, a location, a
message, and an optional autofix hint.  All three passes (lint,
contract cross-check, typing gate) report through this type so the
runner can format, count, and gate them uniformly.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterable, List


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic produced by an analysis pass.

    Attributes
    ----------
    path:
        File the finding is anchored to (repo-relative when possible).
    line:
        1-indexed source line; 0 for file-level findings.
    rule_id:
        Stable identifier (``REP001`` ... / ``TYP001`` ...).  Suppression
        comments and the baseline file key off this.
    message:
        Human-readable description of the violation.
    hint:
        Short autofix suggestion ("pass a numpy Generator instead").
    """

    path: str
    line: int
    rule_id: str
    message: str
    hint: str = ""

    def format(self) -> str:
        """``path:line: REP00x message (hint: ...)`` — editor-clickable."""
        text = f"{self.path}:{self.line}: {self.rule_id} {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def baseline_key(self) -> str:
        """Line-number-free identity used by the typing-gate baseline.

        Omitting the line keeps baseline entries stable across unrelated
        edits above the violation.
        """
        return f"{self.path}::{self.rule_id}::{self.message}"


def render_text(findings: Iterable[Finding]) -> str:
    """All findings, one per line, sorted by location then rule."""
    return "\n".join(f.format() for f in sorted(findings))


def render_json(findings: Iterable[Finding]) -> str:
    """Findings as a JSON array (for editor/CI integration)."""
    return json.dumps([asdict(f) for f in sorted(findings)], indent=2)


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Deterministic ordering: path, then line, then rule ID."""
    return sorted(findings)
