"""Minimal 2-D point/vector type.

A tiny immutable value type rather than bare tuples, so geometric code
reads as geometry (``a.distance_to(b)``) and mistakes like adding a point
to a scalar fail loudly.  Interops with tuples everywhere: every public
API accepts ``(x, y)`` pairs and normalizes through :func:`as_point`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple, Union

PointLike = Union["Point", Tuple[float, float]]


@dataclass(frozen=True)
class Point:
    """An immutable 2-D point / vector."""

    x: float
    y: float

    def __iter__(self):
        yield self.x
        yield self.y

    def __getitem__(self, index: int) -> float:
        return (self.x, self.y)[index]

    def __len__(self) -> int:
        return 2

    def __add__(self, other: PointLike) -> "Point":
        ox, oy = other
        return Point(self.x + ox, self.y + oy)

    def __sub__(self, other: PointLike) -> "Point":
        ox, oy = other
        return Point(self.x - ox, self.y - oy)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Point":
        return Point(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    def dot(self, other: PointLike) -> float:
        ox, oy = other
        return self.x * ox + self.y * oy

    def cross(self, other: PointLike) -> float:
        """2-D cross product (z component)."""
        ox, oy = other
        return self.x * oy - self.y * ox

    def norm(self) -> float:
        return math.hypot(self.x, self.y)

    def normalized(self) -> "Point":
        n = self.norm()
        if n == 0.0:  # repro: noqa REP005 -- exact zero-vector sentinel
            raise ZeroDivisionError("cannot normalize the zero vector")
        return Point(self.x / n, self.y / n)

    def distance_to(self, other: PointLike) -> float:
        ox, oy = other
        return math.hypot(self.x - ox, self.y - oy)

    def bearing_to_deg(self, other: PointLike) -> float:
        """Bearing (deg, CCW from +x) of ``other`` as seen from this point."""
        ox, oy = other
        return math.degrees(math.atan2(oy - self.y, ox - self.x))

    def rotated_deg(self, angle_deg: float) -> "Point":
        """This vector rotated CCW by ``angle_deg`` about the origin."""
        a = math.radians(angle_deg)
        c, s = math.cos(a), math.sin(a)
        return Point(c * self.x - s * self.y, s * self.x + c * self.y)

    def as_tuple(self) -> Tuple[float, float]:
        return (self.x, self.y)


def as_point(value: PointLike) -> Point:
    """Coerce a Point or (x, y) pair to a :class:`Point`."""
    if isinstance(value, Point):
        return value
    x, y = value
    return Point(float(x), float(y))


def midpoint(a: PointLike, b: PointLike) -> Point:
    """Midpoint of the segment a-b."""
    pa, pb = as_point(a), as_point(b)
    return Point((pa.x + pb.x) / 2.0, (pa.y + pb.y) / 2.0)


def wrap_deg(angle_deg: float) -> float:
    """Wrap an angle to [-180, 180) degrees."""
    return (angle_deg + 180.0) % 360.0 - 180.0


def angle_diff_deg(a_deg: float, b_deg: float) -> float:
    """Smallest signed difference a - b in degrees, in [-180, 180)."""
    return wrap_deg(a_deg - b_deg)
