"""2-D geometry substrate: points, wall segments, floorplans, and the
image-method ray tracing the channel simulator is built on."""

from repro.geom.floorplan import Floorplan
from repro.geom.points import Point
from repro.geom.rays import RayTracer, TracedPath
from repro.geom.segments import Segment

__all__ = ["Floorplan", "Point", "RayTracer", "Segment", "TracedPath"]
