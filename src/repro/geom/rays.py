"""Image-method ray tracing over a floorplan.

Produces the geometric multipath profile between a transmitter and a
receiver: the direct path, specular wall reflections up to a configurable
order, and scatterer bounces.  Each traced path records its polyline, the
walls it reflected off, and the walls it penetrated, from which the channel
model derives ToF, AoA, and complex gain.

The image method: to find the specular reflection off wall W from T to R,
mirror T across W's supporting line to get image T'; the straight segment
T'->R crosses W at the reflection point; the physical path is
T -> hit -> R with the same total length as |T'R|.  Second-order
reflections iterate the mirroring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GeometryError
from repro.geom.floorplan import Floorplan, Scatterer
from repro.geom.points import Point, PointLike, as_point
from repro.geom.segments import Segment

#: Path kinds, in the order the channel model distinguishes them.
KIND_DIRECT = "direct"
KIND_REFLECTION = "reflection"
KIND_SCATTER = "scatter"
KIND_DIFFRACTION = "diffraction"


@dataclass(frozen=True)
class TracedPath:
    """One geometric propagation path from transmitter to receiver.

    Attributes
    ----------
    vertices:
        Polyline from transmitter to receiver, including both endpoints.
    kind:
        One of ``direct``, ``reflection``, ``scatter``.
    reflecting_walls:
        Walls the path specularly reflected off, in order.
    penetrated_walls:
        Walls crossed (through-wall transmission), any order.
    scatterer:
        The scatterer bounced off, for ``scatter`` paths.
    diffraction_angle_rad:
        For ``diffraction`` paths: the bend angle at the edge (0 = the
        path barely grazes the edge, larger = deeper shadow).
    """

    vertices: Tuple[Point, ...]
    kind: str
    reflecting_walls: Tuple[Segment, ...] = ()
    penetrated_walls: Tuple[Segment, ...] = ()
    scatterer: Optional[Scatterer] = None
    diffraction_angle_rad: float = 0.0

    def __post_init__(self) -> None:
        if len(self.vertices) < 2:
            raise GeometryError("a path needs at least 2 vertices")

    @property
    def length_m(self) -> float:
        """Total geometric path length (m)."""
        total = 0.0
        for a, b in zip(self.vertices, self.vertices[1:]):
            total += a.distance_to(b)
        return total

    @property
    def order(self) -> int:
        """Number of interactions (reflections/scatters) along the path."""
        if self.kind == KIND_SCATTER:
            return 1
        return len(self.reflecting_walls)

    def arrival_bearing_deg(self) -> float:
        """World bearing (deg) of the direction the signal *arrives from*.

        This is the bearing from the receiver back toward the last path
        vertex before it, which is what an antenna array at the receiver
        measures.
        """
        rx = self.vertices[-1]
        prev = self.vertices[-2]
        return rx.bearing_to_deg(prev)

    def departure_bearing_deg(self) -> float:
        """World bearing (deg) of the direction the signal departs toward."""
        tx = self.vertices[0]
        nxt = self.vertices[1]
        return tx.bearing_to_deg(nxt)


@dataclass
class RayTracer:
    """Enumerate propagation paths between points of a :class:`Floorplan`.

    Attributes
    ----------
    floorplan:
        The environment to trace.
    max_reflection_order:
        Highest specular reflection order to enumerate (2 covers the
        dominant indoor paths; 6-8 *significant* reflectors per the paper
        come from first/second order plus scatterers).
    include_scatterers:
        Whether to trace single-bounce scatterer paths.
    include_diffraction:
        Whether to trace knife-edge diffraction around wall endpoints
        when the direct line is obstructed.  Diffraction is what carries
        signal around door frames and corridor corners.
    allow_through_wall:
        If False, any path crossing a wall (other than at reflection
        points) is dropped instead of attenuated.
    """

    floorplan: Floorplan
    max_reflection_order: int = 2
    include_scatterers: bool = True
    include_diffraction: bool = False
    allow_through_wall: bool = True

    def trace(self, tx: PointLike, rx: PointLike) -> List[TracedPath]:
        """All propagation paths from ``tx`` to ``rx``, direct path first."""
        tx_p, rx_p = as_point(tx), as_point(rx)
        if tx_p.distance_to(rx_p) < 1e-9:
            raise GeometryError("transmitter and receiver coincide")
        paths: List[TracedPath] = []
        direct = self._trace_direct(tx_p, rx_p)
        if direct is not None:
            paths.append(direct)
        if self.max_reflection_order >= 1:
            paths.extend(self._trace_reflections(tx_p, rx_p))
        if self.include_scatterers:
            paths.extend(self._trace_scatterers(tx_p, rx_p))
        if self.include_diffraction:
            paths.extend(self._trace_diffraction(tx_p, rx_p))
        return paths

    # ------------------------------------------------------------------
    # Direct path
    # ------------------------------------------------------------------
    def _trace_direct(self, tx: Point, rx: Point) -> Optional[TracedPath]:
        crossed = self.floorplan.walls_crossed(tx, rx)
        if crossed and not self.allow_through_wall:
            return None
        return TracedPath(
            vertices=(tx, rx),
            kind=KIND_DIRECT,
            penetrated_walls=tuple(crossed),
        )

    # ------------------------------------------------------------------
    # Specular reflections (image method)
    # ------------------------------------------------------------------
    def _trace_reflections(self, tx: Point, rx: Point) -> List[TracedPath]:
        paths: List[TracedPath] = []
        for wall_seq in self._wall_sequences():
            path = self._reflect_via(tx, rx, wall_seq)
            if path is not None:
                paths.append(path)
        return paths

    def _wall_sequences(self) -> List[Tuple[Segment, ...]]:
        """Ordered wall sequences for reflections up to the max order.

        Consecutive repeats are excluded (a ray cannot reflect off the same
        wall twice in a row).
        """
        walls = self.floorplan.walls
        sequences: List[Tuple[Segment, ...]] = [(w,) for w in walls]
        prev_level = sequences[:]
        for _ in range(1, self.max_reflection_order):
            level = []
            for seq in prev_level:
                for wall in walls:
                    if wall is seq[-1]:
                        continue
                    level.append(seq + (wall,))
            sequences.extend(level)
            prev_level = level
        return sequences

    def _reflect_via(
        self, tx: Point, rx: Point, walls: Tuple[Segment, ...]
    ) -> Optional[TracedPath]:
        """Trace the specular path reflecting off ``walls`` in order."""
        # Forward pass: successive images of the transmitter.
        images = [tx]
        for wall in walls:
            images.append(wall.mirror(images[-1]))
        # Backward pass: walk from the receiver toward the last image,
        # finding each reflection point on its wall.
        hits: List[Point] = []
        target = rx
        for wall, image in zip(reversed(walls), reversed(images[:-1])):
            # The segment image(after this wall) -> target must cross the wall.
            mirrored = wall.mirror(image)
            hit = wall.intersect(mirrored, target)
            if hit is None:
                return None
            _, hit_point = hit
            hits.append(hit_point)
            target = hit_point
        hits.reverse()
        vertices = (tx, *hits, rx)
        # Degenerate chains (a reflection point coinciding with an
        # endpoint or another hit, e.g. when the source sits on a wall's
        # line) carry no usable geometry.
        for a, b in zip(vertices, vertices[1:]):
            if a.distance_to(b) < 1e-6:
                return None
        # Validate visibility of every leg; accumulate penetrated walls.
        penetrated: List[Segment] = []
        leg_walls = [None, *walls, None]
        for i, (a, b) in enumerate(zip(vertices, vertices[1:])):
            ignore = [w for w in (leg_walls[i], leg_walls[i + 1]) if w is not None]
            crossed = self.floorplan.walls_crossed(a, b, ignore=ignore)
            if crossed and not self.allow_through_wall:
                return None
            penetrated.extend(crossed)
        return TracedPath(
            vertices=vertices,
            kind=KIND_REFLECTION,
            reflecting_walls=walls,
            penetrated_walls=tuple(penetrated),
        )

    # ------------------------------------------------------------------
    # Knife-edge diffraction
    # ------------------------------------------------------------------
    def _trace_diffraction(self, tx: Point, rx: Point) -> List[TracedPath]:
        """Single-edge diffraction paths around wall endpoints.

        Only traced when the direct line is obstructed (diffraction is
        negligible next to a clear LoS path); each candidate edge must
        have unobstructed legs to both endpoints, and the path must
        actually *bend around* the blocking geometry (bend angle > 0).
        """
        if self.floorplan.has_los(tx, rx):
            return []
        paths: List[TracedPath] = []
        seen: set = set()
        for wall in self.floorplan.walls:
            for edge in (wall.a, wall.b):
                key = (round(edge.x, 6), round(edge.y, 6))
                if key in seen:
                    continue
                seen.add(key)
                if edge.distance_to(tx) < 1e-6 or edge.distance_to(rx) < 1e-6:
                    continue
                # Only *free* edges diffract: an endpoint that touches
                # another wall is a junction/corner with no aperture.
                junction = any(
                    other is not wall and other.contains_point(edge)
                    for other in self.floorplan.walls
                )
                if junction:
                    continue
                if not self.floorplan.has_los(tx, edge):
                    continue
                if not self.floorplan.has_los(edge, rx):
                    continue
                # Bend angle: deviation from the straight tx->rx course.
                incoming = (edge - tx).normalized()
                outgoing = (rx - edge).normalized()
                cos_bend = max(-1.0, min(1.0, incoming.dot(outgoing)))
                bend = float(np.arccos(cos_bend)) if cos_bend < 1.0 else 0.0
                if bend < 1e-6:
                    continue  # straight-through: not a real edge path
                paths.append(
                    TracedPath(
                        vertices=(tx, edge, rx),
                        kind=KIND_DIFFRACTION,
                        diffraction_angle_rad=bend,
                    )
                )
        # Keep the few shallowest bends: deep-shadow edges are negligible.
        paths.sort(key=lambda p: p.diffraction_angle_rad)
        return paths[:4]

    # ------------------------------------------------------------------
    # Scatterers
    # ------------------------------------------------------------------
    def _trace_scatterers(self, tx: Point, rx: Point) -> List[TracedPath]:
        paths: List[TracedPath] = []
        for scatterer in self.floorplan.scatterers:
            s = scatterer.position
            if s.distance_to(tx) < 1e-9 or s.distance_to(rx) < 1e-9:
                continue
            penetrated: List[Segment] = []
            blocked = False
            for a, b in ((tx, s), (s, rx)):
                crossed = self.floorplan.walls_crossed(a, b)
                if crossed and not self.allow_through_wall:
                    blocked = True
                    break
                penetrated.extend(crossed)
            if blocked:
                continue
            paths.append(
                TracedPath(
                    vertices=(tx, s, rx),
                    kind=KIND_SCATTER,
                    penetrated_walls=tuple(penetrated),
                    scatterer=scatterer,
                )
            )
        return paths
