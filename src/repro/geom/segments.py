"""Line segments (walls) and the intersection predicates ray tracing needs."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import GeometryError
from repro.geom.points import Point, PointLike, as_point

#: Tolerance (m) for "point lies on segment" style predicates.
EPS = 1e-9


@dataclass(frozen=True)
class Segment:
    """A 2-D line segment with an optional material name (for walls).

    Attributes
    ----------
    a, b:
        Endpoints.
    material:
        Name of the wall material, resolved against a
        :class:`~repro.channel.materials.MaterialLibrary` by the channel
        simulator.  Empty string means "use the floorplan default".
    """

    a: Point
    b: Point
    material: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "a", as_point(self.a))
        object.__setattr__(self, "b", as_point(self.b))
        if self.a.distance_to(self.b) < EPS:
            raise GeometryError(f"degenerate (zero-length) segment at {self.a}")

    @property
    def length(self) -> float:
        return self.a.distance_to(self.b)

    @property
    def direction(self) -> Point:
        return (self.b - self.a).normalized()

    @property
    def normal(self) -> Point:
        """Unit normal (direction rotated +90 degrees)."""
        d = self.direction
        return Point(-d.y, d.x)

    def midpoint(self) -> Point:
        return Point((self.a.x + self.b.x) / 2.0, (self.a.y + self.b.y) / 2.0)

    def point_at(self, t: float) -> Point:
        """Point at parameter t in [0, 1] along the segment."""
        return Point(
            self.a.x + t * (self.b.x - self.a.x),
            self.a.y + t * (self.b.y - self.a.y),
        )

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def mirror(self, point: PointLike) -> Point:
        """Reflect ``point`` across this segment's supporting line.

        This is the "image" of the image method for specular reflections.
        """
        p = as_point(point)
        d = self.direction
        ap = p - self.a
        along = d * ap.dot(d)
        perp = ap - along
        return p - perp * 2.0

    def distance_to_point(self, point: PointLike) -> float:
        """Distance from ``point`` to the segment (not the infinite line)."""
        p = as_point(point)
        d = self.b - self.a
        t = (p - self.a).dot(d) / d.dot(d)
        t = max(0.0, min(1.0, t))
        return self.point_at(t).distance_to(p)

    def contains_point(self, point: PointLike, tol: float = 1e-6) -> bool:
        """True if ``point`` lies on the segment within ``tol`` meters."""
        return self.distance_to_point(point) <= tol

    def intersect(self, other_a: PointLike, other_b: PointLike) -> Optional[Tuple[float, Point]]:
        """Intersect this segment with the segment ``other_a -> other_b``.

        Returns ``(t, point)`` where ``t`` in [0, 1] is the parameter along
        *this* segment, or ``None`` if they do not properly intersect.
        Collinear overlap returns ``None`` (grazing along a wall is treated
        as no crossing — appropriate for occlusion tests on thin walls).
        """
        p = self.a
        r = self.b - self.a
        q = as_point(other_a)
        s = as_point(other_b) - q
        denom = r.cross(s)
        if abs(denom) < EPS:
            return None
        qp = q - p
        t = qp.cross(s) / denom
        u = qp.cross(r) / denom
        if -EPS <= t <= 1.0 + EPS and -EPS <= u <= 1.0 + EPS:
            t = max(0.0, min(1.0, t))
            return t, self.point_at(t)
        return None

    def crosses(
        self,
        path_a: PointLike,
        path_b: PointLike,
        exclude_endpoints: bool = True,
        endpoint_tol: float = 1e-6,
    ) -> bool:
        """True if the path ``path_a -> path_b`` crosses this wall.

        With ``exclude_endpoints`` (the default), crossings within
        ``endpoint_tol`` of either path endpoint are ignored — a reflection
        point *on* this wall should not count as the wall obstructing its
        own reflected ray.
        """
        hit = self.intersect(path_a, path_b)
        if hit is None:
            return False
        if not exclude_endpoints:
            return True
        _, point = hit
        pa, pb = as_point(path_a), as_point(path_b)
        if point.distance_to(pa) <= endpoint_tol or point.distance_to(pb) <= endpoint_tol:
            return False
        return True

    def incidence_cos(self, incoming_from: PointLike, hit_point: PointLike) -> float:
        """|cos| of the incidence angle of a ray arriving at ``hit_point``.

        1.0 is normal incidence, 0.0 is grazing.  Used by the material
        model: reflection is strongest at grazing incidence.
        """
        v = as_point(hit_point) - as_point(incoming_from)
        n = v.norm()
        if n < EPS:
            raise GeometryError("incidence ray has zero length")
        return abs((v / n).dot(self.normal))


def rectangle_walls(
    x0: float, y0: float, x1: float, y1: float, material: str = ""
) -> "list[Segment]":
    """The four walls of an axis-aligned rectangle, counter-clockwise."""
    if x1 <= x0 or y1 <= y0:
        raise GeometryError(f"empty rectangle ({x0},{y0})-({x1},{y1})")
    c = [Point(x0, y0), Point(x1, y0), Point(x1, y1), Point(x0, y1)]
    return [
        Segment(c[0], c[1], material),
        Segment(c[1], c[2], material),
        Segment(c[2], c[3], material),
        Segment(c[3], c[0], material),
    ]
