"""Floorplans: named collections of wall segments plus scattering objects.

A floorplan is the static environment the channel simulator ray-traces:
walls produce specular reflections and through-wall attenuation; point
scatterers model furniture/metallic objects that produce extra multipath
without occluding (the paper's "multipath rich" environments have 6-8
significant reflectors, Sec. 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import GeometryError
from repro.geom.points import Point, PointLike, as_point
from repro.geom.segments import Segment, rectangle_walls


@dataclass(frozen=True)
class Scatterer:
    """A point scatterer (furniture, metal cabinet, person...).

    Attributes
    ----------
    position:
        World (x, y).
    gain:
        Linear amplitude re-radiation efficiency in (0, 1]; multiplies the
        product of the two Friis legs (tx->scatterer, scatterer->rx).
    """

    position: Point
    gain: float = 0.3

    def __post_init__(self) -> None:
        object.__setattr__(self, "position", as_point(self.position))
        if not 0.0 < self.gain <= 1.0:
            raise GeometryError(f"scatterer gain must be in (0, 1], got {self.gain}")


@dataclass
class Floorplan:
    """Walls + scatterers + a default wall material.

    Attributes
    ----------
    walls:
        Wall segments.  Order is irrelevant.
    scatterers:
        Point scatterers adding diffuse multipath.
    default_material:
        Material name used for walls whose ``material`` is empty.
    name:
        Human-readable label used in reports.
    """

    walls: List[Segment] = field(default_factory=list)
    scatterers: List[Scatterer] = field(default_factory=list)
    default_material: str = "drywall"
    name: str = "floorplan"

    def add_wall(self, a: PointLike, b: PointLike, material: str = "") -> Segment:
        wall = Segment(as_point(a), as_point(b), material)
        self.walls.append(wall)
        return wall

    def add_rectangle(
        self, x0: float, y0: float, x1: float, y1: float, material: str = ""
    ) -> List[Segment]:
        walls = rectangle_walls(x0, y0, x1, y1, material)
        self.walls.extend(walls)
        return walls

    def add_scatterer(self, position: PointLike, gain: float = 0.3) -> Scatterer:
        scatterer = Scatterer(as_point(position), gain)
        self.scatterers.append(scatterer)
        return scatterer

    def wall_material(self, wall: Segment) -> str:
        """Resolve a wall's material name through the floorplan default."""
        return wall.material or self.default_material

    # ------------------------------------------------------------------
    # Occlusion queries
    # ------------------------------------------------------------------
    def walls_crossed(
        self,
        a: PointLike,
        b: PointLike,
        ignore: Sequence[Segment] = (),
    ) -> List[Segment]:
        """Walls the open segment ``a -> b`` crosses, excluding ``ignore``.

        Crossings at the path endpoints are excluded (a ray leaving a
        reflection point on a wall is not blocked by that wall).
        """
        ignore_ids = {id(w) for w in ignore}
        crossed = []
        for wall in self.walls:
            if id(wall) in ignore_ids:
                continue
            if wall.crosses(a, b):
                crossed.append(wall)
        return crossed

    def has_los(self, a: PointLike, b: PointLike) -> bool:
        """True if no wall obstructs the straight line between a and b."""
        return not self.walls_crossed(a, b)

    def bounds(self) -> Tuple[float, float, float, float]:
        """Axis-aligned bounding box (x0, y0, x1, y1) of all walls."""
        if not self.walls:
            raise GeometryError("floorplan has no walls")
        xs = [p.x for w in self.walls for p in (w.a, w.b)]
        ys = [p.y for w in self.walls for p in (w.a, w.b)]
        return min(xs), min(ys), max(xs), max(ys)

    def copy(self) -> "Floorplan":
        return Floorplan(
            walls=list(self.walls),
            scatterers=list(self.scatterers),
            default_material=self.default_material,
            name=self.name,
        )


def empty_room(
    width_m: float, height_m: float, material: str = "concrete", name: str = "room"
) -> Floorplan:
    """A rectangular room with four walls and nothing inside."""
    plan = Floorplan(name=name, default_material=material)
    plan.add_rectangle(0.0, 0.0, width_m, height_m, material)
    return plan
