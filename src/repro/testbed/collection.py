"""Packet collection simulation — the paper's measurement procedure.

Sec. 4.3.1: "The target then transmits 500 packets with 100 ms interval and
six of our AP nodes surrounding the client that can hear the client log the
packets as well as the CSI".  :func:`collect_location` mirrors that: every
AP whose received power clears a sensitivity threshold records a CSI trace
for the target's burst.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.channel.csi_model import ChannelSimulator
from repro.errors import ConfigurationError
from repro.geom.points import PointLike, as_point
from repro.wifi.arrays import UniformLinearArray
from repro.wifi.csi import CsiTrace

#: Receive sensitivity: APs hearing the target weaker than this drop it.
DEFAULT_SENSITIVITY_DBM = -82.0


@dataclass(frozen=True)
class ApTrace:
    """One AP's recording of a target's packet burst."""

    array: UniformLinearArray
    trace: CsiTrace
    rssi_dbm: float


def collect_location(
    simulator: ChannelSimulator,
    target: PointLike,
    aps: Sequence[UniformLinearArray],
    num_packets: int = 40,
    rng: Optional[np.random.Generator] = None,
    sensitivity_dbm: float = DEFAULT_SENSITIVITY_DBM,
    packet_interval_s: float = 0.1,
) -> List[ApTrace]:
    """Simulate one collection burst: traces from every AP that hears.

    Returns one :class:`ApTrace` per audible AP (possibly empty when the
    target is fully shielded from all APs).
    """
    if num_packets < 1:
        raise ConfigurationError(f"num_packets must be >= 1, got {num_packets}")
    rng = np.random.default_rng() if rng is None else rng
    target = as_point(target)
    recordings: List[ApTrace] = []
    for ap in aps:
        profile = simulator.profile(target, ap)
        if profile.num_paths == 0:
            continue
        rssi = profile.rssi_dbm(simulator.tx_power_dbm)
        if rssi < sensitivity_dbm:
            continue
        trace = simulator.generate_trace(
            target,
            ap,
            num_packets,
            rng=rng,
            packet_interval_s=packet_interval_s,
            profile=profile,
        )
        recordings.append(ApTrace(array=ap, trace=trace, rssi_dbm=rssi))
    return recordings


def as_ap_trace_pairs(
    recordings: Sequence[ApTrace],
) -> List[Tuple[UniformLinearArray, CsiTrace]]:
    """Convert recordings to the (array, trace) pairs the pipelines take."""
    return [(r.array, r.trace) for r in recordings]
