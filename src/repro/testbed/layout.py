"""The simulated building floor of the evaluation (paper Fig. 6).

The layout replicates the paper's testbed topology: a 16 m x 10 m office
region ("typical indoor office environment", the dashed red box), two long
corridors, and a far wing of smaller offices where targets see at most a
couple of APs in LoS.  55 target locations span the floor; wall-mounted
3-antenna APs cover the office region and the corridors.

Geometry is parametric but fixed: coordinates are chosen once so every
benchmark sees the same building.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.channel.csi_model import ChannelSimulator
from repro.channel.impairments import ImpairmentModel
from repro.geom.floorplan import Floorplan
from repro.geom.points import Point, as_point
from repro.wifi.arrays import UniformLinearArray
from repro.wifi.intel5300 import Intel5300

#: Zone labels for target locations.
ZONE_OFFICE = "office"
ZONE_CORRIDOR = "corridor"
ZONE_FAR_WING = "far_wing"


@dataclass(frozen=True)
class TargetSpot:
    """One evaluated target location."""

    position: Point
    zone: str
    label: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "position", as_point(self.position))


@dataclass
class Testbed:
    """A floorplan + AP deployment + target locations.

    Attributes
    ----------
    floorplan:
        The building geometry.
    aps:
        All deployed APs (uniform linear arrays).
    ap_labels:
        Parallel labels ("office-1", "corridor-A", ...).
    targets:
        The evaluated target locations.
    bounds:
        Localization search rectangle (the building bounding box).
    name:
        Testbed identifier for reports.
    """

    floorplan: Floorplan
    aps: List[UniformLinearArray]
    ap_labels: List[str]
    targets: List[TargetSpot]
    bounds: Tuple[float, float, float, float]
    name: str = "testbed"

    def __post_init__(self) -> None:
        if len(self.aps) != len(self.ap_labels):
            raise ValueError("aps and ap_labels must be parallel lists")

    def simulator(
        self,
        impairments: Optional[ImpairmentModel] = None,
        card: Optional[Intel5300] = None,
        **kwargs,
    ) -> ChannelSimulator:
        """Channel simulator for this testbed's floorplan and card model."""
        card = card or Intel5300()
        return ChannelSimulator(
            floorplan=self.floorplan,
            grid=card.grid(),
            impairments=impairments or ImpairmentModel(),
            **kwargs,
        )

    def office_aps(self) -> List[UniformLinearArray]:
        """APs covering the office region (labels starting ``office``)."""
        return [ap for ap, lbl in zip(self.aps, self.ap_labels) if lbl.startswith("office")]

    def corridor_aps(self) -> List[UniformLinearArray]:
        """APs mounted along the corridors."""
        return [
            ap for ap, lbl in zip(self.aps, self.ap_labels) if lbl.startswith("corridor")
        ]

    def los_ap_count(self, target, aps: Optional[List[UniformLinearArray]] = None) -> int:
        """How many APs have an unobstructed line of sight to ``target``."""
        aps = self.aps if aps is None else aps
        point = as_point(target)
        return sum(
            1 for ap in aps if self.floorplan.has_los(point, as_point(ap.position))
        )

    def targets_in_zone(self, zone: str) -> List[TargetSpot]:
        return [t for t in self.targets if t.zone == zone]


# ----------------------------------------------------------------------
# The Fig. 6-like building
# ----------------------------------------------------------------------
def _build_floorplan() -> Floorplan:
    plan = Floorplan(name="fig6-floor", default_material="drywall")
    # Building envelope (36 m x 14 m), concrete.
    plan.add_rectangle(0.0, 0.0, 36.0, 14.0, material="concrete")

    # Corridor A (horizontal, y in [12, 14]) south wall, with door gaps.
    for x0, x1 in ((0.0, 8.0), (10.0, 17.0), (20.0, 28.0), (30.0, 36.0)):
        plan.add_wall((x0, 12.0), (x1, 12.0), material="drywall")

    # Corridor B (vertical, x in [18, 20], y in [0, 12]) side walls.
    for y0, y1 in ((0.0, 5.0), (6.5, 12.0)):
        plan.add_wall((18.0, y0), (18.0, y1), material="drywall")
        plan.add_wall((20.0, y0), (20.0, y1), material="drywall")

    # Office region partial partitions (glass lab dividers).
    plan.add_wall((9.0, 0.0), (9.0, 4.0), material="glass")
    plan.add_wall((9.0, 8.5), (9.0, 12.0), material="glass")

    # Elevator shaft (metal) at the office region's north-west.
    plan.add_wall((4.0, 10.5), (6.0, 10.5), material="elevator")
    plan.add_wall((4.0, 10.5), (4.0, 12.0), material="elevator")
    plan.add_wall((6.0, 10.5), (6.0, 12.0), material="elevator")

    # Far wing (x in [20, 36]) smaller offices: brick cross walls.
    plan.add_wall((20.0, 7.0), (23.0, 7.0), material="brick")
    plan.add_wall((24.5, 7.0), (31.0, 7.0), material="brick")
    plan.add_wall((32.5, 7.0), (36.0, 7.0), material="brick")
    plan.add_wall((28.0, 0.0), (28.0, 5.5), material="brick")
    plan.add_wall((28.0, 7.0), (28.0, 10.5), material="brick")

    # Furniture / metallic scatterers.
    for pos, gain in (
        ((4.0, 4.0), 0.45),
        ((7.0, 9.0), 0.35),
        ((12.5, 4.5), 0.45),
        ((15.0, 9.5), 0.35),
        ((10.5, 7.0), 0.30),
        ((5.5, 7.5), 0.30),
        ((16.5, 6.0), 0.35),
        ((19.0, 8.0), 0.25),
        ((24.0, 3.5), 0.40),
        ((33.0, 4.0), 0.35),
        ((25.5, 10.0), 0.35),
        ((14.0, 13.0), 0.25),
        ((27.0, 13.0), 0.25),
    ):
        plan.add_scatterer(pos, gain)
    return plan


def _office_targets() -> List[TargetSpot]:
    spots: List[TargetSpot] = []
    xs = [3.4, 6.7, 10.1, 13.3, 16.4]
    ys = [3.1, 5.2, 7.1, 9.2, 10.7]
    rng = np.random.default_rng(42)  # fixed jitter so geometry is generic
    idx = 1
    for y in ys:
        for x in xs:
            jx = float(rng.uniform(-0.15, 0.15))
            jy = float(rng.uniform(-0.15, 0.15))
            spots.append(
                TargetSpot(Point(x + jx, y + jy), ZONE_OFFICE, f"office-{idx:02d}")
            )
            idx += 1
    return spots


def _corridor_targets() -> List[TargetSpot]:
    spots: List[TargetSpot] = []
    for i, x in enumerate(np.linspace(1.5, 34.5, 14), start=1):
        spots.append(TargetSpot(Point(float(x), 13.0), ZONE_CORRIDOR, f"corrA-{i:02d}"))
    for i, y in enumerate([1.5, 3.5, 5.7, 7.6, 9.5, 11.2], start=1):
        spots.append(TargetSpot(Point(19.0, float(y)), ZONE_CORRIDOR, f"corrB-{i:02d}"))
    return spots


def _far_wing_targets() -> List[TargetSpot]:
    coords = [
        (22.0, 3.0),
        (25.0, 3.2),
        (30.5, 2.8),
        (34.0, 3.1),
        (22.3, 10.0),
        (25.2, 9.8),
        (30.6, 10.2),
        (34.1, 9.9),
        (26.0, 5.0),
        (32.0, 5.5),
    ]
    return [
        TargetSpot(Point(x, y), ZONE_FAR_WING, f"wing-{i:02d}")
        for i, (x, y) in enumerate(coords, start=1)
    ]


def office_testbed() -> Testbed:
    """The full Fig. 6-like testbed: 55 targets, 9 APs, 36 m x 14 m floor."""
    plan = _build_floorplan()
    aps = [
        UniformLinearArray(3, position=(2.6, 2.6), normal_deg=45.0),
        UniformLinearArray(3, position=(17.4, 2.6), normal_deg=135.0),
        UniformLinearArray(3, position=(2.6, 11.4), normal_deg=-45.0),
        UniformLinearArray(3, position=(16.8, 11.4), normal_deg=-135.0),
        UniformLinearArray(3, position=(9.6, 0.6), normal_deg=90.0),
        UniformLinearArray(3, position=(13.0, 11.4), normal_deg=-90.0),
        UniformLinearArray(3, position=(5.0, 13.7), normal_deg=-90.0),
        UniformLinearArray(3, position=(14.0, 13.7), normal_deg=-90.0),
        UniformLinearArray(3, position=(24.5, 13.7), normal_deg=-90.0),
        UniformLinearArray(3, position=(33.0, 13.7), normal_deg=-90.0),
        UniformLinearArray(3, position=(19.8, 3.0), normal_deg=180.0),
        UniformLinearArray(3, position=(19.8, 9.0), normal_deg=180.0),
    ]
    labels = [
        "office-1",
        "office-2",
        "office-3",
        "office-4",
        "office-5",
        "office-6",
        "corridor-A1",
        "corridor-A2",
        "corridor-A3",
        "corridor-A4",
        "corridor-B1",
        "corridor-B2",
    ]
    targets = _office_targets() + _corridor_targets() + _far_wing_targets()
    return Testbed(
        floorplan=plan,
        aps=aps,
        ap_labels=labels,
        targets=targets,
        bounds=(0.0, 0.0, 36.0, 14.0),
        name="fig6-floor",
    )


def home_testbed() -> Testbed:
    """An apartment floor — the paper's "phone lost somewhere in a home".

    10 m x 8 m, four rooms (living room, kitchen, two bedrooms) around a
    hallway, furniture scatterers, and three APs (a realistic home count:
    router + two mesh extenders).  Ten target spots cover every room.
    """
    plan = Floorplan(name="apartment", default_material="drywall")
    plan.add_rectangle(0.0, 0.0, 10.0, 8.0, material="brick")
    # Hallway spine: y in [3.4, 4.6].
    # Living room (left-bottom), kitchen (right-bottom), bedrooms on top.
    plan.add_wall((4.5, 0.0), (4.5, 2.2), material="drywall")  # living|kitchen
    plan.add_wall((4.5, 3.4), (10.0, 3.4), material="drywall")  # kitchen|hall
    plan.add_wall((0.0, 3.4), (3.3, 3.4), material="drywall")  # living|hall
    plan.add_wall((0.0, 4.6), (2.2, 4.6), material="drywall")  # hall|bed1
    plan.add_wall((3.4, 4.6), (6.8, 4.6), material="drywall")
    plan.add_wall((8.0, 4.6), (10.0, 4.6), material="drywall")  # hall|bed2
    plan.add_wall((5.4, 4.6), (5.4, 8.0), material="drywall")  # bed1|bed2
    # Bathroom block (tiled, modeled as concrete) in the kitchen corner.
    plan.add_wall((8.2, 0.0), (8.2, 2.0), material="concrete")
    plan.add_wall((8.2, 2.0), (10.0, 2.0), material="concrete")
    # Furniture.
    for pos, gain in (
        ((1.5, 1.5), 0.45),  # sofa
        ((3.0, 2.8), 0.30),  # tv cabinet
        ((6.5, 1.0), 0.50),  # fridge
        ((2.0, 6.5), 0.35),  # bed 1
        ((7.5, 6.8), 0.35),  # bed 2
        ((9.0, 5.5), 0.30),  # wardrobe
    ):
        plan.add_scatterer(pos, gain)

    aps = [
        UniformLinearArray(3, position=(0.4, 4.0), normal_deg=0.0),  # hall router
        UniformLinearArray(3, position=(9.6, 0.6), normal_deg=135.0),  # kitchen
        UniformLinearArray(3, position=(5.0, 7.6), normal_deg=-90.0),  # bedroom
    ]
    labels = ["office-router", "office-kitchen", "office-bedroom"]
    coords = [
        (2.0, 1.8, "living-1"),
        (3.8, 1.0, "living-2"),
        (6.0, 2.2, "kitchen-1"),
        (7.5, 2.8, "kitchen-2"),
        (5.0, 4.0, "hallway"),
        (1.5, 6.0, "bed1-1"),
        (3.8, 6.8, "bed1-2"),
        (6.5, 6.0, "bed2-1"),
        (8.8, 7.0, "bed2-2"),
        (9.2, 3.9, "hall-end"),
    ]
    targets = [TargetSpot(Point(x, y), ZONE_OFFICE, label) for x, y, label in coords]
    return Testbed(
        floorplan=plan,
        aps=aps,
        ap_labels=labels,
        targets=targets,
        bounds=(0.0, 0.0, 10.0, 8.0),
        name="apartment",
    )


def small_testbed() -> Testbed:
    """A small single-room testbed for fast unit/integration tests."""
    plan = Floorplan(name="small-room", default_material="concrete")
    plan.add_rectangle(0.0, 0.0, 12.0, 8.0, material="concrete")
    plan.add_scatterer((3.0, 6.0), 0.4)
    plan.add_scatterer((9.0, 2.5), 0.4)
    aps = [
        UniformLinearArray(3, position=(0.5, 4.0), normal_deg=0.0),
        UniformLinearArray(3, position=(11.5, 4.0), normal_deg=180.0),
        UniformLinearArray(3, position=(6.0, 0.5), normal_deg=90.0),
        UniformLinearArray(3, position=(6.0, 7.5), normal_deg=-90.0),
    ]
    labels = ["office-1", "office-2", "office-3", "office-4"]
    targets = [
        TargetSpot(Point(3.3, 2.7), ZONE_OFFICE, "t-01"),
        TargetSpot(Point(8.6, 5.4), ZONE_OFFICE, "t-02"),
        TargetSpot(Point(5.1, 6.1), ZONE_OFFICE, "t-03"),
        TargetSpot(Point(9.7, 2.2), ZONE_OFFICE, "t-04"),
    ]
    return Testbed(
        floorplan=plan,
        aps=aps,
        ap_labels=labels,
        targets=targets,
        bounds=(0.0, 0.0, 12.0, 8.0),
        name="small-room",
    )
