"""Experiment runner: drives whole-testbed localization sweeps.

This is the shared engine behind the Fig. 7/8/9 benchmarks: for each target
location it simulates a packet burst, runs SpotFi and the ArrayTrack
baseline on the *same* traces (as the paper's method section specifies),
and records errors plus per-AP AoA diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.arraytrack import ArrayTrack
from repro.baselines.music_aoa import MusicAoaEstimator
from repro.core.pipeline import SpotFi, SpotFiConfig
from repro.core.steering import SteeringModel
from repro.errors import EstimationError, LocalizationError
from repro.geom.points import angle_diff_deg, as_point
from repro.testbed.collection import ApTrace, as_ap_trace_pairs, collect_location
from repro.testbed.layout import TargetSpot, Testbed
from repro.wifi.arrays import UniformLinearArray
from repro.wifi.intel5300 import Intel5300


@dataclass(frozen=True)
class ApAoaDiagnostic:
    """Per-(AP, location) AoA estimation diagnostics for Fig. 8.

    Attributes
    ----------
    ap_index:
        Index of the AP in the runner's AP list.
    true_aoa_deg:
        Ground-truth direct-path AoA.
    los:
        True when the AP has unobstructed LoS to the target.
    spotfi_best_error_deg:
        |closest SpotFi estimate - truth| (Sec. 4.4.1's metric).
    music_best_error_deg:
        Same for the MUSIC-AoA baseline.
    spotfi_selected_error_deg:
        |SpotFi's *selected* direct-path AoA - truth| (Sec. 4.4.2).
    """

    ap_index: int
    true_aoa_deg: float
    los: bool
    spotfi_best_error_deg: float
    music_best_error_deg: float
    spotfi_selected_error_deg: float


@dataclass
class LocationOutcome:
    """Everything measured at one target location."""

    spot: TargetSpot
    num_aps_heard: int
    spotfi_error_m: float = float("nan")
    arraytrack_error_m: float = float("nan")
    aoa_diagnostics: List[ApAoaDiagnostic] = field(default_factory=list)


@dataclass
class ExperimentRunner:
    """Runs localization experiments over testbed locations.

    Attributes
    ----------
    testbed:
        The deployment to evaluate.
    config:
        SpotFi pipeline configuration.
    num_packets:
        Packets per burst (the evaluation groups 40 consecutive
        measurements, Sec. 4.3.1).
    seed:
        Base RNG seed; location i uses ``seed + i`` so runs are
        reproducible and locations independent.
    """

    testbed: Testbed
    config: SpotFiConfig = field(default_factory=SpotFiConfig)
    num_packets: int = 40
    seed: int = 0

    def __post_init__(self) -> None:
        self._card = Intel5300()
        self._grid = self._card.grid()

    # ------------------------------------------------------------------
    def run(
        self,
        locations: Sequence[TargetSpot],
        aps: Optional[Sequence[UniformLinearArray]] = None,
        run_arraytrack: bool = True,
        collect_aoa_diagnostics: bool = False,
    ) -> List[LocationOutcome]:
        """Localize every location with SpotFi (and optionally ArrayTrack).

        Failed fixes (too few audible APs, degenerate estimates) yield NaN
        errors rather than aborting the sweep — matching how a real
        evaluation reports outages.
        """
        aps = list(self.testbed.aps if aps is None else aps)
        sim = self.testbed.simulator()
        outcomes: List[LocationOutcome] = []
        for i, spot in enumerate(locations):
            rng = np.random.default_rng(self.seed + i)
            recordings = collect_location(
                sim, spot.position, aps, num_packets=self.num_packets, rng=rng
            )
            outcome = LocationOutcome(spot=spot, num_aps_heard=len(recordings))
            pairs = as_ap_trace_pairs(recordings)
            spotfi = self._spotfi(rng)
            try:
                fix = spotfi.locate(pairs)
                outcome.spotfi_error_m = fix.error_to(spot.position)
            except LocalizationError:
                pass
            if run_arraytrack:
                arraytrack = ArrayTrack(
                    self._grid,
                    self.testbed.bounds,
                    packets_per_fix=self.config.packets_per_fix,
                    grid_step_m=self.config.grid_step_m,
                )
                try:
                    result = arraytrack.locate(pairs)
                    outcome.arraytrack_error_m = result.error_to(spot.position)
                except LocalizationError:
                    pass
            if collect_aoa_diagnostics:
                outcome.aoa_diagnostics = self._aoa_diagnostics(
                    spot, recordings, aps, spotfi
                )
            outcomes.append(outcome)
        return outcomes

    # ------------------------------------------------------------------
    def _spotfi(self, rng: np.random.Generator) -> SpotFi:
        return SpotFi(self._grid, self.testbed.bounds, config=self.config, rng=rng)

    def _aoa_diagnostics(
        self,
        spot: TargetSpot,
        recordings: Sequence[ApTrace],
        aps: Sequence[UniformLinearArray],
        spotfi: SpotFi,
    ) -> List[ApAoaDiagnostic]:
        diagnostics = []
        ap_index = {id(ap): k for k, ap in enumerate(aps)}
        for recording in recordings:
            ap = recording.array
            truth = ap.aoa_to(spot.position)
            if abs(truth) > 90.0:
                continue  # behind the array: no ground-truth front AoA
            los = self.testbed.floorplan.has_los(
                spot.position, as_point(ap.position)
            )
            report = spotfi.process_ap(ap, recording.trace)
            if report.usable:
                all_aoas = [c.mean_aoa_deg for c in report.clusters]
                best = min(abs(angle_diff_deg(a, truth)) for a in all_aoas)
                selected = abs(angle_diff_deg(report.direct.aoa_deg, truth))
            else:
                best = float("nan")
                selected = float("nan")
            music = MusicAoaEstimator(
                model=SteeringModel.for_grid(
                    self._grid,
                    num_antennas=ap.num_antennas,
                    antenna_spacing_m=ap.spacing_m,
                )
            )
            try:
                music_aoas = music.estimate_trace_all(
                    recording.trace[: self.config.packets_per_fix]
                )
            except EstimationError:
                music_aoas = []
            music_best = (
                min(abs(angle_diff_deg(a, truth)) for a in music_aoas)
                if music_aoas
                else float("nan")
            )
            diagnostics.append(
                ApAoaDiagnostic(
                    ap_index=ap_index.get(id(ap), -1),
                    true_aoa_deg=truth,
                    los=los,
                    spotfi_best_error_deg=float(best),
                    music_best_error_deg=float(music_best),
                    spotfi_selected_error_deg=float(selected),
                )
            )
        return diagnostics


def errors_of(outcomes: Sequence[LocationOutcome], method: str) -> np.ndarray:
    """Finite error array for ``method`` ('spotfi' or 'arraytrack')."""
    attr = {"spotfi": "spotfi_error_m", "arraytrack": "arraytrack_error_m"}[method]
    values = np.array([getattr(o, attr) for o in outcomes], dtype=float)
    return values[np.isfinite(values)]
