"""Scenario subsets of the testbed — the paper's Secs. 4.3.1-4.3.3.

* **Office** (Sec. 4.3.1): targets inside the 16 x 10 office region,
  localized with the six office APs.
* **High NLoS** (Sec. 4.3.2): the locations "where only two or less number
  of APs have a decent direct path ... based on our ground truth" — we
  apply the same ground-truth predicate (<= 2 APs with LoS / strong direct
  path).
* **Corridors** (Sec. 4.3.3): targets in the two corridors.
"""

from __future__ import annotations

from typing import List, Optional

from repro.testbed.layout import (
    ZONE_CORRIDOR,
    ZONE_FAR_WING,
    ZONE_OFFICE,
    TargetSpot,
    Testbed,
)


def office_locations(testbed: Testbed) -> List[TargetSpot]:
    """Targets in the office region (the paper's dashed red box)."""
    return testbed.targets_in_zone(ZONE_OFFICE)


def corridor_locations(testbed: Testbed) -> List[TargetSpot]:
    """Targets along the two corridors."""
    return testbed.targets_in_zone(ZONE_CORRIDOR)


def high_nlos_locations(
    testbed: Testbed,
    max_los_aps: int = 2,
    candidates: Optional[List[TargetSpot]] = None,
) -> List[TargetSpot]:
    """Targets with at most ``max_los_aps`` APs in line of sight.

    Mirrors the paper's ground-truth-based selection of 23 stressful
    locations.  By default every target is a candidate (far-wing targets
    dominate, as intended).
    """
    candidates = testbed.targets if candidates is None else candidates
    return [
        spot
        for spot in candidates
        if testbed.los_ap_count(spot.position) <= max_los_aps
    ]


def scenario_locations(testbed: Testbed, scenario: str) -> List[TargetSpot]:
    """Dispatch by scenario name: ``office``, ``corridor`` or ``nlos``."""
    if scenario == "office":
        return office_locations(testbed)
    if scenario == "corridor":
        return corridor_locations(testbed)
    if scenario == "nlos":
        return high_nlos_locations(testbed)
    raise ValueError(f"unknown scenario {scenario!r}")
