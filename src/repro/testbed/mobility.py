"""Route planning and motion generation through floorplans.

Tracking experiments need *realistic* target motion: a walking person
follows corridors and doorways, not chords through concrete.  This module
plans collision-free routes with A* over an occupancy grid derived from
the floorplan, smooths them with line-of-sight shortcutting, and samples
them into timed waypoints for the tracker/simulator loop.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import GeometryError
from repro.geom.floorplan import Floorplan
from repro.geom.points import Point, PointLike, as_point

#: Named speed profiles (m/s) for motion synthesis: a strolling
#: pedestrian (~1.4 m/s, the paper's walking-speed regime) up through
#: vehicular speeds for parking-garage / drive-through deployments.
SPEED_PROFILES: Dict[str, float] = {
    "pedestrian": 1.4,
    "brisk": 2.5,
    "jog": 3.5,
    "bike": 6.0,
    "vehicular": 12.0,
    "vehicular-fast": 25.0,
}


def resolve_speed(profile: Union[str, float]) -> float:
    """Resolve a named speed profile (or a literal m/s value) to m/s.

    Raises :class:`~repro.errors.GeometryError` for unknown names or
    non-positive speeds, mirroring :func:`walk_route`'s validation.
    """
    if isinstance(profile, str):
        try:
            speed = SPEED_PROFILES[profile]
        except KeyError:
            raise GeometryError(
                f"unknown speed profile {profile!r}; "
                f"available: {sorted(SPEED_PROFILES)}"
            ) from None
    else:
        speed = float(profile)
    if speed <= 0:
        raise GeometryError(f"speed must be positive, got {speed}")
    return speed


@dataclass
class OccupancyGrid:
    """Walkable-space rasterization of a floorplan.

    Attributes
    ----------
    floorplan:
        Geometry source.
    cell_m:
        Grid resolution.
    clearance_m:
        Minimum distance to any wall for a cell to count as walkable
        (half a shoulder width, default 0.3 m).
    """

    floorplan: Floorplan
    cell_m: float = 0.5
    clearance_m: float = 0.3

    def __post_init__(self) -> None:
        if self.cell_m <= 0 or self.clearance_m < 0:
            raise GeometryError("cell size must be > 0 and clearance >= 0")
        x0, y0, x1, y1 = self.floorplan.bounds()
        self._origin = (x0, y0)
        self._cols = max(1, int(math.ceil((x1 - x0) / self.cell_m)))
        self._rows = max(1, int(math.ceil((y1 - y0) / self.cell_m)))
        self._walkable = np.ones((self._rows, self._cols), dtype=bool)
        for r in range(self._rows):
            for c in range(self._cols):
                center = self.cell_center((r, c))
                for wall in self.floorplan.walls:
                    if wall.distance_to_point(center) < self.clearance_m:
                        self._walkable[r, c] = False
                        break

    @property
    def shape(self) -> Tuple[int, int]:
        return (self._rows, self._cols)

    def cell_center(self, cell: Tuple[int, int]) -> Point:
        r, c = cell
        return Point(
            self._origin[0] + (c + 0.5) * self.cell_m,
            self._origin[1] + (r + 0.5) * self.cell_m,
        )

    def cell_of(self, point: PointLike) -> Tuple[int, int]:
        p = as_point(point)
        c = int((p.x - self._origin[0]) / self.cell_m)
        r = int((p.y - self._origin[1]) / self.cell_m)
        if not (0 <= r < self._rows and 0 <= c < self._cols):
            raise GeometryError(f"point {p} is outside the floorplan bounds")
        return (r, c)

    def is_walkable(self, cell: Tuple[int, int]) -> bool:
        r, c = cell
        return bool(self._walkable[r, c])

    def nearest_walkable(self, point: PointLike) -> Tuple[int, int]:
        """The walkable cell closest to ``point`` (BFS ring search)."""
        start = self.cell_of(point)
        if self.is_walkable(start):
            return start
        best: Optional[Tuple[int, int]] = None
        best_d = math.inf
        p = as_point(point)
        for radius in range(1, max(self._rows, self._cols)):
            found = False
            for r in range(start[0] - radius, start[0] + radius + 1):
                for c in range(start[1] - radius, start[1] + radius + 1):
                    if max(abs(r - start[0]), abs(c - start[1])) != radius:
                        continue
                    if not (0 <= r < self._rows and 0 <= c < self._cols):
                        continue
                    if not self._walkable[r, c]:
                        continue
                    d = self.cell_center((r, c)).distance_to(p)
                    if d < best_d:
                        best, best_d = (r, c), d
                    found = True
            if best is not None and found:
                return best
        raise GeometryError("no walkable cell in the floorplan")

    def clear_segment(self, a: PointLike, b: PointLike) -> bool:
        """True if the straight segment keeps the clearance everywhere."""
        pa, pb = as_point(a), as_point(b)
        length = pa.distance_to(pb)
        steps = max(2, int(length / (self.cell_m / 2)) + 1)
        for t in np.linspace(0.0, 1.0, steps):
            p = Point(pa.x + t * (pb.x - pa.x), pa.y + t * (pb.y - pa.y))
            for wall in self.floorplan.walls:
                if wall.distance_to_point(p) < self.clearance_m:
                    return False
        return True


def plan_route(
    floorplan: Floorplan,
    start: PointLike,
    goal: PointLike,
    cell_m: float = 0.5,
    clearance_m: float = 0.3,
    grid: Optional[OccupancyGrid] = None,
) -> List[Point]:
    """Collision-free route from ``start`` to ``goal`` (A* + shortcutting).

    Returns waypoints including both endpoints.  Raises
    :class:`GeometryError` when no route exists (e.g. a sealed room).
    Pass a prebuilt ``grid`` to amortize rasterization across many plans.

    Clearance guarantee: shortcut legs are verified continuously at the
    full ``clearance_m``; legs surviving from the raw grid path are only
    as clear as their cell centers, i.e. ``clearance_m - cell_m / 2`` in
    the worst case.  Shrink ``cell_m`` for a tighter guarantee.
    """
    grid = grid or OccupancyGrid(floorplan, cell_m=cell_m, clearance_m=clearance_m)
    start_p, goal_p = as_point(start), as_point(goal)
    start_cell = grid.nearest_walkable(start_p)
    goal_cell = grid.nearest_walkable(goal_p)

    def heuristic(cell: Tuple[int, int]) -> float:
        return math.hypot(cell[0] - goal_cell[0], cell[1] - goal_cell[1])

    open_heap: List[Tuple[float, Tuple[int, int]]] = [(heuristic(start_cell), start_cell)]
    g_score: Dict[Tuple[int, int], float] = {start_cell: 0.0}
    came_from: Dict[Tuple[int, int], Tuple[int, int]] = {}
    closed: set = set()
    rows, cols = grid.shape
    while open_heap:
        _, current = heapq.heappop(open_heap)
        if current in closed:
            continue
        if current == goal_cell:
            break
        closed.add(current)
        r, c = current
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                if dr == 0 and dc == 0:
                    continue
                nr, nc = r + dr, c + dc
                if not (0 <= nr < rows and 0 <= nc < cols):
                    continue
                if not grid.is_walkable((nr, nc)):
                    continue
                # No diagonal corner-cutting through blocked cells.
                if dr and dc:
                    if not (
                        grid.is_walkable((r, nc)) and grid.is_walkable((nr, c))
                    ):
                        continue
                step = math.hypot(dr, dc)
                tentative = g_score[current] + step
                if tentative < g_score.get((nr, nc), math.inf):
                    g_score[(nr, nc)] = tentative
                    came_from[(nr, nc)] = current
                    heapq.heappush(
                        open_heap, (tentative + heuristic((nr, nc)), (nr, nc))
                    )
    else:
        raise GeometryError("no route between start and goal")
    if goal_cell not in g_score:
        raise GeometryError("no route between start and goal")

    # Reconstruct and convert to points.
    cells = [goal_cell]
    while cells[-1] != start_cell:
        cells.append(came_from[cells[-1]])
    cells.reverse()
    waypoints = [start_p] + [grid.cell_center(c) for c in cells[1:-1]] + [goal_p]

    # Greedy line-of-sight shortcutting.
    smoothed = [waypoints[0]]
    index = 0
    while index < len(waypoints) - 1:
        best = index + 1
        for j in range(len(waypoints) - 1, index, -1):
            if grid.clear_segment(waypoints[index], waypoints[j]):
                best = j
                break
        smoothed.append(waypoints[best])
        index = best
    return smoothed


def route_length(route: List[Point]) -> float:
    """Total length (m) of a waypoint route."""
    return float(
        sum(a.distance_to(b) for a, b in zip(route, route[1:]))
    )


def walk_route(
    route: List[Point], speed_mps: float = 1.2, interval_s: float = 1.0
) -> List[Tuple[float, Point]]:
    """Sample timed positions along a route at constant walking speed.

    Returns ``(timestamp, position)`` pairs, including both endpoints.
    """
    if len(route) < 1:
        raise GeometryError("route is empty")
    if speed_mps <= 0 or interval_s <= 0:
        raise GeometryError("speed and interval must be positive")
    if len(route) == 1:
        return [(0.0, route[0])]
    total = route_length(route)
    duration = total / speed_mps
    samples: List[Tuple[float, Point]] = []
    t = 0.0
    while t < duration:
        samples.append((t, _point_at_distance(route, t * speed_mps)))
        t += interval_s
    samples.append((duration, route[-1]))
    return samples


def _point_at_distance(route: List[Point], distance: float) -> Point:
    remaining = distance
    for a, b in zip(route, route[1:]):
        leg = a.distance_to(b)
        if remaining <= leg:
            if leg == 0:
                return a
            frac = remaining / leg
            return Point(a.x + frac * (b.x - a.x), a.y + frac * (b.y - a.y))
        remaining -= leg
    return route[-1]
