"""Simulated testbed replicating the paper's Fig. 6 deployment: a building
floor with an office region, corridors and a far wing, 55 target locations
and wall-mounted 3-antenna APs, plus the experiment runner that drives the
evaluation benchmarks."""

from repro.testbed.collection import collect_location
from repro.testbed.mobility import (
    SPEED_PROFILES,
    OccupancyGrid,
    plan_route,
    resolve_speed,
    route_length,
    walk_route,
)
from repro.testbed.layout import (
    Testbed,
    TargetSpot,
    home_testbed,
    office_testbed,
    small_testbed,
)
from repro.testbed.runner import ExperimentRunner, LocationOutcome
from repro.testbed.scenarios import (
    corridor_locations,
    high_nlos_locations,
    office_locations,
)

__all__ = [
    "ExperimentRunner",
    "LocationOutcome",
    "OccupancyGrid",
    "SPEED_PROFILES",
    "plan_route",
    "resolve_speed",
    "route_length",
    "walk_route",
    "TargetSpot",
    "Testbed",
    "collect_location",
    "corridor_locations",
    "high_nlos_locations",
    "home_testbed",
    "office_locations",
    "office_testbed",
    "small_testbed",
]
