"""Fault injection harness: apply a fault mix to frames, traces, datasets.

:class:`FaultInjector` composes a list of :class:`~repro.faults.spec.
FaultSpec` into one corruption pass, usable two ways:

* **channel-impairment wrapper** — :meth:`corrupt_trace` corrupts a whole
  recorded burst offline (benchmarks, regression datasets).
* **chaos layer** — :meth:`corrupt_frame` sits inside
  :meth:`repro.server.SpotFiServer.ingest` and corrupts live traffic,
  so the full serving path (validation, quarantine, breakers, degraded
  fixes) is exercised end to end.

The injector owns a seeded :class:`numpy.random.Generator`; a given
(seed, spec list, traffic) triple replays the identical fault sequence,
which is what makes chaos scenarios assertable in CI.  Injection counts
land in a :class:`~repro.runtime.metrics.RuntimeMetrics` under
``faults.injected.<kind>`` so a chaos run reports exactly what it did.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.faults.spec import FaultSpec, raw_trace
from repro.runtime.metrics import RuntimeMetrics
from repro.wifi.arrays import UniformLinearArray
from repro.wifi.csi import CsiFrame, CsiTrace


class FaultInjector:
    """Applies a composable fault mix to CSI frames and traces.

    Parameters
    ----------
    specs:
        Fault specifications, applied in order (a frame dropped by an
        earlier spec never reaches a later one).
    rng:
        Randomness source; pass a seeded generator for reproducible runs.
    metrics:
        Sink for ``faults.injected.<kind>`` counters (optional).
    """

    def __init__(
        self,
        specs: Sequence[FaultSpec],
        rng: Optional[np.random.Generator] = None,
        metrics: Optional[RuntimeMetrics] = None,
    ) -> None:
        self.specs = list(specs)
        self.rng = rng or np.random.default_rng(0)
        self.metrics = metrics

    def _count(self, kind: str, n: int = 1) -> None:
        if self.metrics is not None and n:
            self.metrics.increment(f"faults.injected.{kind}", n)
            self.metrics.increment("faults.injected.total", n)

    # ------------------------------------------------------------------
    def corrupt_frame(
        self, ap_id: str, frame: CsiFrame
    ) -> List[CsiFrame]:
        """Run one live frame through the fault mix (ingest chaos path).

        Returns the surviving frames: usually ``[frame]`` (possibly
        corrupted), ``[]`` when dropped, or two entries for a duplicate.
        Stream-only specs (reordering) are skipped here.
        """
        survivors: List[CsiFrame] = [frame]
        for spec in self.specs:
            if spec.stream_only or not spec.targets(ap_id):
                continue
            next_survivors: List[CsiFrame] = []
            for f in survivors:
                if self.rng.random() < spec.probability:
                    produced = spec.apply_frame(f, self.rng)
                    if len(produced) != 1 or produced[0] is not f:
                        self._count(spec.kind)
                    next_survivors.extend(produced)
                else:
                    next_survivors.append(f)
            survivors = next_survivors
            if not survivors:
                break
        return survivors

    def corrupt_trace(self, trace: CsiTrace, ap_id: str = "") -> CsiTrace:
        """Corrupt a whole burst offline (channel-impairment wrapper).

        Stream-level specs (reordering, blackouts) see the full frame
        sequence.  The result is built with :func:`~repro.faults.spec.
        raw_trace`, so it may legitimately mix shapes or carry NaNs —
        validate before feeding it to the pipeline.
        """
        frames: List[CsiFrame] = list(trace)
        for spec in self.specs:
            if not spec.targets(ap_id):
                continue
            before = len(frames)
            produced = spec.apply_stream(frames, self.rng)
            changed = len(produced) != before or any(
                a is not b for a, b in zip(produced, frames)
            )
            if changed:
                self._count(spec.kind)
            frames = produced
            if not frames:
                break
        return raw_trace(frames)

    def corrupt_pairs(
        self,
        ap_traces: Sequence[Tuple[UniformLinearArray, CsiTrace]],
        ap_ids: Optional[Sequence[str]] = None,
    ) -> List[Tuple[UniformLinearArray, CsiTrace]]:
        """Corrupt a ``[(array, trace), ...]`` collection AP by AP."""
        out = []
        for index, (array, trace) in enumerate(ap_traces):
            ap_id = ap_ids[index] if ap_ids is not None else f"ap{index}"
            out.append((array, self.corrupt_trace(trace, ap_id)))
        return out
