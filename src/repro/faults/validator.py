"""Frame validation and quarantine: malformed CSI never reaches MUSIC.

Tadayon et al. show ToF estimation collapsing on malformed or partial
CSI; SpotFi's smoothing stage would happily propagate a NaN through the
whole covariance.  :class:`FrameValidator` is the admission check in
front of the pipeline: every ingested frame is screened for

* **shape** — 2-D, and matching the expected (antennas, subcarriers)
  when configured (catches truncated packets);
* **finiteness** — no NaN/Inf entries anywhere;
* **power floor** — frame mean power and per-antenna power above a noise
  floor (catches zeroed frames and dead chains);
* **timestamp monotonicity** — per (AP, source) stream, a frame may not
  predate the previous one by more than a tolerance (catches reordering).

Rejected frames are *quarantined*: counted per reason in
:class:`~repro.runtime.metrics.RuntimeMetrics` (``quarantine.<reason>``
and ``quarantine.total``, which flow into the Prometheus exposition) and
retained in a bounded ring for post-mortem inspection.  Policy
``raise_on_invalid`` switches from quarantine-and-drop to raising
:class:`~repro.errors.ValidationError` for callers that want hard
failures (tests, batch tools).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.runtime.metrics import RuntimeMetrics
from repro.wifi.csi import CsiFrame, CsiTrace


@dataclass(frozen=True)
class ValidationPolicy:
    """What :class:`FrameValidator` enforces.

    Attributes
    ----------
    expected_antennas, expected_subcarriers:
        Required CSI shape; None skips the respective dimension check
        (the 2-D requirement always holds).
    min_power_db:
        Floor on frame mean power, ``10 log10(mean |csi|^2)`` dB.  The
        simulator produces roughly -55..-70 dB at room scale, so the
        default -90 dB only rejects essentially-blank frames.  ``-inf``
        disables.
    min_antenna_power_db:
        Per-antenna floor (catches a single dead chain whose zeros would
        survive the frame-level mean).  ``-inf`` disables.
    require_finite:
        Reject frames containing NaN or Inf.
    max_timestamp_backstep_s:
        Per (AP, source) stream, reject a frame whose timestamp precedes
        the newest accepted one by more than this; negative disables the
        monotonicity check entirely.  Equal timestamps (duplicates) pass.
    raise_on_invalid:
        Raise :class:`~repro.errors.ValidationError` instead of
        quarantining silently.
    """

    expected_antennas: Optional[int] = None
    expected_subcarriers: Optional[int] = None
    min_power_db: float = -90.0
    min_antenna_power_db: float = -90.0
    require_finite: bool = True
    max_timestamp_backstep_s: float = 0.0
    raise_on_invalid: bool = False


class FrameValidator:
    """Admission screen for ingested CSI frames, with quarantine.

    Parameters
    ----------
    policy:
        The checks to run; defaults validate structure and finiteness
        with permissive power floors.
    metrics:
        Counter sink; quarantines increment ``quarantine.<reason>`` and
        ``quarantine.total``.
    quarantine_capacity:
        Most recent rejected frames retained for inspection.
    """

    def __init__(
        self,
        policy: Optional[ValidationPolicy] = None,
        metrics: Optional[RuntimeMetrics] = None,
        quarantine_capacity: int = 64,
    ) -> None:
        self.policy = policy or ValidationPolicy()
        self.metrics = metrics
        self._quarantine: Deque[Tuple[str, str, CsiFrame]] = deque(
            maxlen=quarantine_capacity
        )
        self._last_timestamp: Dict[Tuple[str, str], float] = {}
        self._counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def check(self, ap_id: str, frame: CsiFrame) -> Optional[str]:
        """The rejection reason for ``frame``, or None when it is clean.

        Pure inspection: no counters, no quarantine, no timestamp-state
        update.
        """
        policy = self.policy
        csi = np.asarray(frame.csi)
        if csi.ndim != 2:
            return "shape"
        if (
            policy.expected_antennas is not None
            and csi.shape[0] != policy.expected_antennas
        ):
            return "shape"
        if (
            policy.expected_subcarriers is not None
            and csi.shape[1] != policy.expected_subcarriers
        ):
            return "shape"
        if policy.require_finite and not np.all(np.isfinite(csi)):
            return "nonfinite"
        power = np.abs(csi) ** 2
        if np.isfinite(policy.min_power_db):
            mean_power = float(np.mean(power))
            if mean_power <= 0 or 10.0 * np.log10(mean_power) < policy.min_power_db:
                return "power_floor"
        if np.isfinite(policy.min_antenna_power_db):
            row_power = np.mean(power, axis=1)
            floor = 10.0 ** (policy.min_antenna_power_db / 10.0)
            if np.any(row_power < floor):
                return "antenna_power"
        if policy.max_timestamp_backstep_s >= 0:
            last = self._last_timestamp.get((ap_id, frame.source))
            if (
                last is not None
                and frame.timestamp_s < last - policy.max_timestamp_backstep_s
            ):
                return "timestamp_order"
        return None

    def admit(self, ap_id: str, frame: CsiFrame) -> bool:
        """Validate one frame, updating quarantine and timestamp state.

        Returns True when the frame is admissible.  A rejected frame is
        counted, quarantined, and — under ``raise_on_invalid`` — raises
        :class:`~repro.errors.ValidationError`.
        """
        reason = self.check(ap_id, frame)
        if reason is None:
            self._last_timestamp[(ap_id, frame.source)] = max(
                frame.timestamp_s,
                self._last_timestamp.get((ap_id, frame.source), float("-inf")),
            )
            return True
        self._quarantine.append((ap_id, reason, frame))
        self._counts[reason] = self._counts.get(reason, 0) + 1
        if self.metrics is not None:
            self.metrics.increment(f"quarantine.{reason}")
            self.metrics.increment("quarantine.total")
        if self.policy.raise_on_invalid:
            raise ValidationError(
                f"frame from AP {ap_id!r} quarantined: {reason} "
                f"(csi shape {np.asarray(frame.csi).shape})"
            )
        return False

    def filter_trace(self, trace: CsiTrace, ap_id: str = "") -> CsiTrace:
        """Admissible frames of ``trace``, in order (offline cleanup)."""
        return CsiTrace([f for f in trace if self.admit(ap_id, f)])

    # ------------------------------------------------------------------
    @property
    def quarantined(self) -> List[Tuple[str, str, CsiFrame]]:
        """Recent rejects as ``(ap_id, reason, frame)``, oldest first."""
        return list(self._quarantine)

    @property
    def total_quarantined(self) -> int:
        """Frames rejected over this validator's lifetime."""
        return sum(self._counts.values())

    def counts(self) -> Dict[str, int]:
        """Lifetime quarantine counts per reason."""
        return dict(self._counts)

    def reset(self) -> None:
        """Drop quarantine contents, counts, and timestamp state."""
        self._quarantine.clear()
        self._last_timestamp.clear()
        self._counts.clear()
