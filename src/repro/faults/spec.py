"""Composable fault specifications: the catalog of CSI corruptions.

Commodity CSI is not clean — Zubow et al. document per-boot phase jumps
and chain dropouts on 802.11ac hardware, and truncated or NaN-laden
reports show up whenever a driver races its own DMA.  Each
:class:`FaultSpec` here reproduces one such failure mode so the pipeline
can be tested against it deliberately:

===================  ====================================================
spec                 corruption
===================  ====================================================
:class:`DropFrame`        the packet's CSI report is lost entirely
:class:`DropAntenna`      one RF chain goes dead (its row reads zeros)
:class:`NanSubcarriers`   a burst of subcarriers reports NaN
:class:`ZeroSubcarriers`  a burst of subcarriers reports zero
:class:`TruncatePacket`   the report is cut short (fewer subcarriers)
:class:`PhaseGlitch`      one chain's phase jumps by a random offset
:class:`DuplicateFrame`   the same report is delivered twice
:class:`ReorderFrames`    adjacent reports swap (timestamps run backwards)
:class:`ApBlackout`       an AP stops reporting (optionally mid-run)
===================  ====================================================

Specs are frozen dataclasses — pure descriptions.  Randomness comes from
the :class:`~repro.faults.injector.FaultInjector`'s generator, so a seeded
injector replays the identical fault sequence.  Corrupted frames are
built with :func:`raw_frame`, which bypasses :class:`~repro.wifi.csi.
CsiFrame` validation exactly like bytes off the wire would: catching
these frames is the :class:`~repro.faults.validator.FrameValidator`'s
job, not the container's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.wifi.csi import CsiFrame, CsiTrace


def raw_frame(
    csi: np.ndarray,
    rssi_dbm: float = float("nan"),
    timestamp_s: float = 0.0,
    source: str = "",
) -> CsiFrame:
    """Build a :class:`CsiFrame` without validation, like wire data.

    ``CsiFrame.__post_init__`` rejects NaN/misshapen CSI, which is right
    for programmatic construction but wrong for modelling a corrupt
    report arriving from an AP — the server must receive it and decide.
    """
    frame = object.__new__(CsiFrame)
    object.__setattr__(frame, "csi", np.asarray(csi))
    object.__setattr__(frame, "rssi_dbm", float(rssi_dbm))
    object.__setattr__(frame, "timestamp_s", float(timestamp_s))
    object.__setattr__(frame, "source", source)
    return frame


def raw_trace(frames: Sequence[CsiFrame]) -> CsiTrace:
    """Build a :class:`CsiTrace` without the homogeneous-shape check.

    A corrupted stream can legitimately mix shapes (truncated packets);
    the validator filters them before the pipeline ever stacks the trace.
    """
    trace = CsiTrace.__new__(CsiTrace)
    trace.frames = list(frames)
    return trace


def _clone(frame: CsiFrame, csi: np.ndarray) -> CsiFrame:
    """A raw copy of ``frame`` carrying corrupted CSI."""
    return raw_frame(
        csi,
        rssi_dbm=frame.rssi_dbm,
        timestamp_s=frame.timestamp_s,
        source=frame.source,
    )


@dataclass(frozen=True)
class FaultSpec:
    """Base fault: when and where it strikes.

    Attributes
    ----------
    probability:
        Per-frame chance the fault fires (stream-level specs interpret it
        per opportunity, e.g. per adjacent pair for reordering).
    ap_id:
        Restrict the fault to one AP id; None hits every AP.
    """

    probability: float = 1.0
    ap_id: Optional[str] = None

    #: Stream-only specs need the whole burst (e.g. reordering) and are
    #: skipped by the per-frame ingest chaos path.
    stream_only = False
    kind = "noop"

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {self.probability}"
            )

    def targets(self, ap_id: str) -> bool:
        """Whether this spec applies to frames from ``ap_id``."""
        return self.ap_id is None or self.ap_id == ap_id

    def apply_frame(
        self, frame: CsiFrame, rng: np.random.Generator
    ) -> List[CsiFrame]:
        """Corrupt one frame: returns the frames that survive (0, 1 or 2)."""
        return [frame]

    def apply_stream(
        self, frames: Sequence[CsiFrame], rng: np.random.Generator
    ) -> List[CsiFrame]:
        """Corrupt a whole burst; default maps :meth:`apply_frame`."""
        out: List[CsiFrame] = []
        for frame in frames:
            if rng.random() < self.probability:
                out.extend(self.apply_frame(frame, rng))
            else:
                out.append(frame)
        return out


@dataclass(frozen=True)
class DropFrame(FaultSpec):
    """The CSI report for a packet is lost in transit."""

    kind = "drop_frame"

    def apply_frame(
        self, frame: CsiFrame, rng: np.random.Generator
    ) -> List[CsiFrame]:
        return []


@dataclass(frozen=True)
class DropAntenna(FaultSpec):
    """One RF chain goes dead: its CSI row reads all zeros.

    Attributes
    ----------
    antenna:
        Row to kill; None picks one at random per affected frame.
    """

    antenna: Optional[int] = None
    kind = "drop_antenna"

    def apply_frame(
        self, frame: CsiFrame, rng: np.random.Generator
    ) -> List[CsiFrame]:
        csi = np.array(frame.csi, copy=True)
        row = (
            self.antenna
            if self.antenna is not None
            else int(rng.integers(csi.shape[0]))
        )
        csi[row % csi.shape[0], :] = 0.0
        return [_clone(frame, csi)]


@dataclass(frozen=True)
class NanSubcarriers(FaultSpec):
    """A burst of subcarriers reports NaN (driver/DMA race)."""

    count: int = 3
    kind = "nan_subcarriers"

    def apply_frame(
        self, frame: CsiFrame, rng: np.random.Generator
    ) -> List[CsiFrame]:
        csi = np.array(frame.csi, copy=True)
        cols = rng.choice(
            csi.shape[1], size=min(self.count, csi.shape[1]), replace=False
        )
        csi[:, cols] = np.nan
        return [_clone(frame, csi)]


@dataclass(frozen=True)
class ZeroSubcarriers(FaultSpec):
    """A burst of subcarriers reports exactly zero."""

    count: int = 3
    kind = "zero_subcarriers"

    def apply_frame(
        self, frame: CsiFrame, rng: np.random.Generator
    ) -> List[CsiFrame]:
        csi = np.array(frame.csi, copy=True)
        cols = rng.choice(
            csi.shape[1], size=min(self.count, csi.shape[1]), replace=False
        )
        csi[:, cols] = 0.0
        return [_clone(frame, csi)]


@dataclass(frozen=True)
class TruncatePacket(FaultSpec):
    """The CSI report is cut short: only the first subcarriers arrive."""

    keep_subcarriers: int = 20
    kind = "truncate_packet"

    def apply_frame(
        self, frame: CsiFrame, rng: np.random.Generator
    ) -> List[CsiFrame]:
        keep = max(1, min(self.keep_subcarriers, frame.csi.shape[1]))
        return [_clone(frame, np.array(frame.csi[:, :keep], copy=True))]


@dataclass(frozen=True)
class PhaseGlitch(FaultSpec):
    """One chain's phase jumps by a random offset (Zubow et al.).

    Unlike the structural faults, a phase glitch passes validation — it
    is indistinguishable from a real (corrupt) measurement — so it tests
    graceful *degradation* (clustering + likelihood weighting) rather
    than quarantine.
    """

    max_jump_rad: float = float(np.pi)
    kind = "phase_glitch"

    def apply_frame(
        self, frame: CsiFrame, rng: np.random.Generator
    ) -> List[CsiFrame]:
        csi = np.array(frame.csi, copy=True)
        row = int(rng.integers(csi.shape[0]))
        jump = rng.uniform(-self.max_jump_rad, self.max_jump_rad)
        csi[row, :] = csi[row, :] * np.exp(1j * jump)
        return [_clone(frame, csi)]


@dataclass(frozen=True)
class DuplicateFrame(FaultSpec):
    """The same report is delivered twice (retransmit glitch)."""

    kind = "duplicate_frame"

    def apply_frame(
        self, frame: CsiFrame, rng: np.random.Generator
    ) -> List[CsiFrame]:
        return [frame, frame]


@dataclass(frozen=True)
class ReorderFrames(FaultSpec):
    """Adjacent reports swap, so timestamps run backwards.

    Stream-only: reordering needs at least a pair in hand, so the
    per-frame ingest chaos path skips it; use
    :meth:`~repro.faults.injector.FaultInjector.corrupt_trace`.
    """

    kind = "reorder_frames"
    stream_only = True

    def apply_stream(
        self, frames: Sequence[CsiFrame], rng: np.random.Generator
    ) -> List[CsiFrame]:
        out = list(frames)
        i = 0
        while i + 1 < len(out):
            if rng.random() < self.probability:
                out[i], out[i + 1] = out[i + 1], out[i]
                i += 2
            else:
                i += 1
        return out


@dataclass(frozen=True)
class ApBlackout(FaultSpec):
    """An AP stops reporting entirely, optionally mid-run.

    Attributes
    ----------
    start_s:
        Packet timestamps at or after this instant are dropped; 0 blacks
        out the AP from the first packet.
    """

    start_s: float = 0.0
    kind = "ap_blackout"

    def apply_frame(
        self, frame: CsiFrame, rng: np.random.Generator
    ) -> List[CsiFrame]:
        if frame.timestamp_s >= self.start_s:
            return []
        return [frame]
