"""Chaos scenarios: deterministic end-to-end fault drills for the server.

A chaos run streams simulated bursts through a fully armed
:class:`~repro.server.SpotFiServer` — fault injector corrupting live
traffic, frame validator quarantining the structural damage, per-AP
circuit breakers shedding flapping APs — and reports what survived:
fix success rate, localization error, quarantine/injection counts and
final breaker states.  Everything is seeded, so a given
``(scenario, seed)`` pair replays the identical run; that is what lets
CI assert "the pipeline still fixes >= 90% of bursts under the mixed
fault load" (``repro chaos --scenario mixed --seed 7``).

Scenarios
---------
``clean``
    No faults — the control run (and the overhead baseline).
``nan``
    NaN subcarrier bursts plus occasional dead antennas: everything the
    validator must quarantine before MUSIC.
``truncate``
    Short CSI reports and lost packets: shape faults and burst gaps.
``blackout``
    One AP goes dark halfway through the run; fixes must degrade to the
    surviving quorum.
``mixed``
    A moderate blend of all failure modes, including phase glitches that
    *pass* validation and must be absorbed by clustering + likelihood
    weighting.
``shard-kill``
    Distributed drill (delegated to
    :func:`repro.dist.chaos.run_shard_kill`): real shard subprocesses
    behind a :class:`~repro.dist.router.ShardRouter`, one of which is
    SIGKILLed mid-stream; failover must keep fixes flowing.
``downgrade``
    QoS drill: an AP's circuit breaker is forced open mid-stream on a
    server configured with ``downgrade_tier="coarse"``.  Instead of
    shedding the AP, every subsequent fix must keep serving on the
    coarse estimator tier (counted as ``downgraded_fixes``) until the
    breaker recovers — degradation in precision, not availability.
``reset-storm`` / ``slow-link`` / ``corrupt-bytes`` / ``crash-restart``
    The transport chaos matrix (delegated to
    :func:`repro.dist.chaos.run_network_chaos`): seeded wire faults from
    :mod:`repro.faults.network` on the router↔shard sockets — or a
    SIGKILL for ``crash-restart`` — with a
    :class:`~repro.dist.supervisor.ShardSupervisor` restarting and
    re-admitting casualties; at-least-once replay plus shard-side dedup
    must keep fix counts exact and every source routable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.pipeline import SpotFi, SpotFiConfig
from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.spec import (
    ApBlackout,
    DropAntenna,
    DropFrame,
    DuplicateFrame,
    FaultSpec,
    NanSubcarriers,
    PhaseGlitch,
    TruncatePacket,
)
from repro.faults.validator import FrameValidator, ValidationPolicy
from repro.runtime.metrics import RuntimeMetrics
from repro.server import SpotFiServer
from repro.testbed.layout import home_testbed, office_testbed, small_testbed
from repro.wifi.csi import CsiFrame

_TESTBEDS = {"office": office_testbed, "small": small_testbed, "home": home_testbed}

#: Packet spacing of the simulated streams (matches the simulator default).
PACKET_INTERVAL_S = 0.1


def scenario_specs(
    name: str,
    packets_per_fix: int = 8,
    bursts: int = 4,
    blackout_ap: str = "ap3",
) -> Tuple[FaultSpec, ...]:
    """The fault mix for a named scenario.

    ``blackout`` computes its onset from the run length so the AP dies
    halfway through; the other scenarios are timing-independent.
    """
    if (
        name in ("clean", "shard-kill", "moving-target", "downgrade")
        or name in NETWORK_SCENARIOS
    ):
        # shard-kill and moving-target inject a process death, downgrade
        # a forced breaker trip, and the network matrix transport faults
        # — none corrupts CSI; those faults are orchestrated by
        # run_shard_kill / run_moving_target / run_network_chaos /
        # run_chaos directly.
        return ()
    if name == "nan":
        return (
            NanSubcarriers(probability=0.3, count=4),
            DropAntenna(probability=0.1),
        )
    if name == "truncate":
        return (
            TruncatePacket(probability=0.3, keep_subcarriers=20),
            DropFrame(probability=0.1),
        )
    if name == "blackout":
        midpoint = 0.5 * bursts * packets_per_fix * PACKET_INTERVAL_S
        return (ApBlackout(ap_id=blackout_ap, start_s=midpoint),)
    if name == "mixed":
        return (
            NanSubcarriers(probability=0.12, count=4),
            TruncatePacket(probability=0.08, keep_subcarriers=20),
            PhaseGlitch(probability=0.10),
            DuplicateFrame(probability=0.05),
            DropFrame(probability=0.05),
        )
    raise ConfigurationError(
        f"unknown chaos scenario {name!r}; available: {sorted(SCENARIOS)}"
    )


#: Transport chaos matrix names (delegated to
#: :func:`repro.dist.chaos.run_network_chaos`); kept as a literal so
#: this module needs no eager dist import.
NETWORK_SCENARIOS = (
    "corrupt-bytes",
    "crash-restart",
    "reset-storm",
    "slow-link",
)

#: Scenario names accepted by :func:`run_chaos` and ``repro chaos``.
SCENARIOS = (
    "blackout",
    "clean",
    "downgrade",
    "mixed",
    "moving-target",
    "nan",
    "shard-kill",
    "truncate",
) + NETWORK_SCENARIOS


@dataclass(frozen=True)
class ChaosReport:
    """Outcome of one chaos run (plain data; see :meth:`to_dict`).

    Attributes
    ----------
    scenario, testbed, seed, bursts:
        The run's identity — enough to replay it exactly.
    fixes_attempted:
        Bursts streamed (each ends in a flush, so each is one fix
        opportunity).
    fixes_ok:
        Bursts that produced a successful fix.
    degraded_fixes:
        Successful fixes that lost at least one AP to isolation.
    downgraded_fixes:
        Successful fixes served on the breaker downgrade tier instead
        of the requested estimator (``downgrade`` scenario).
    median_error_m:
        Median localization error over successful fixes (NaN if none).
    quarantined:
        Validator rejections per reason.
    injected:
        Faults actually injected per kind.
    breakers:
        Final per-AP breaker states (only APs whose breaker was
        instantiated appear).
    clean_median_error_m:
        Median error of the matching ``clean`` control run, when one was
        performed (blackout scenario); NaN otherwise.
    """

    scenario: str
    testbed: str
    seed: int
    bursts: int
    fixes_attempted: int
    fixes_ok: int
    degraded_fixes: int
    median_error_m: float
    downgraded_fixes: int = 0
    quarantined: Dict[str, int] = field(default_factory=dict)
    injected: Dict[str, int] = field(default_factory=dict)
    breakers: Dict[str, str] = field(default_factory=dict)
    clean_median_error_m: float = float("nan")

    @property
    def success_rate(self) -> float:
        """Fraction of attempted fixes that succeeded (0..1)."""
        if not self.fixes_attempted:
            return 0.0
        return self.fixes_ok / self.fixes_attempted

    @property
    def error_delta_m(self) -> float:
        """Accuracy cost vs the clean control run (NaN when no control)."""
        return self.median_error_m - self.clean_median_error_m

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable view of the report."""
        return {
            "scenario": self.scenario,
            "testbed": self.testbed,
            "seed": self.seed,
            "bursts": self.bursts,
            "fixes_attempted": self.fixes_attempted,
            "fixes_ok": self.fixes_ok,
            "success_rate": self.success_rate,
            "degraded_fixes": self.degraded_fixes,
            "downgraded_fixes": self.downgraded_fixes,
            "median_error_m": self.median_error_m,
            "clean_median_error_m": self.clean_median_error_m,
            "quarantined": dict(self.quarantined),
            "injected": dict(self.injected),
            "breakers": dict(self.breakers),
        }


def _counters_with_prefix(metrics: RuntimeMetrics, prefix: str) -> Dict[str, int]:
    counters = metrics.snapshot()["counters"]
    return {
        name[len(prefix) :]: value
        for name, value in counters.items()
        if name.startswith(prefix) and not name.endswith(".total")
    }


def run_chaos(
    scenario: str = "mixed",
    testbed: str = "small",
    seed: int = 7,
    packets_per_fix: int = 8,
    bursts: int = 4,
    min_aps: int = 2,
    oversample: float = 1.75,
    with_baseline: Optional[bool] = None,
    probe: Optional[Callable[[Dict[str, object]], None]] = None,
) -> ChaosReport:
    """Stream ``bursts`` simulated bursts through an armed server.

    Each burst targets the next testbed location (cycling), with its own
    source id; packets interleave across APs exactly as a live central
    server would see them, and a flush closes every burst so stragglers
    (dropped frames, blacked-out APs) cannot stall a fix forever.

    ``oversample`` streams ``packets_per_fix * oversample`` packets per
    burst: lossy scenarios quarantine or drop a fraction of the traffic,
    and — as in a live deployment — the sender keeps transmitting until
    the server has collected a full burst.

    ``with_baseline`` additionally runs the ``clean`` scenario with the
    same seeds and reports its median error (defaults to True for the
    blackout scenario, which exists to measure degradation cost).

    ``probe``, when given, turns the run into a live-telemetry drill:
    the server's HTTP endpoint is started on an ephemeral port and the
    callback is invoked after every burst with the ``/healthz`` payload
    scraped over real HTTP — mid-scenario, while breakers and buffers
    reflect the injected faults.  For ``shard-kill`` the probe fires
    against the cluster endpoint instead (see
    :func:`repro.dist.chaos.run_shard_kill`).
    """
    if scenario == "shard-kill":
        # Distributed scenario: the fault is an ungraceful shard death,
        # drilled end to end through repro.dist (real subprocesses, real
        # sockets).  Late import keeps faults free of the dist package
        # for single-process users.
        from repro.dist.chaos import run_shard_kill

        return run_shard_kill(
            testbed=testbed,
            seed=seed,
            packets_per_fix=packets_per_fix,
            bursts=bursts,
            min_aps=min_aps,
            oversample=max(oversample, 2.5),
            probe=probe,
        )
    if scenario == "moving-target":
        # Distributed mobility scenario: targets in motion, tracking
        # shards, and a SIGKILL mid-track — the gate asserts the dead
        # shard's tracks resume on the ring successors instead of
        # restarting cold.  Same late-import rationale as shard-kill.
        from repro.dist.chaos import run_moving_target

        return run_moving_target(
            testbed=testbed,
            seed=seed,
            packets_per_fix=packets_per_fix,
            bursts=max(bursts, 6),
            min_aps=min_aps,
            probe=probe,
        )
    if scenario in NETWORK_SCENARIOS:
        # Transport chaos matrix: wire faults between router and real
        # shard subprocesses, with a supervisor restarting casualties.
        # Same late-import rationale as shard-kill.
        from repro.dist.chaos import run_network_chaos

        return run_network_chaos(
            scenario,
            testbed=testbed,
            seed=seed,
            packets_per_fix=packets_per_fix,
            bursts=bursts,
            min_aps=min_aps,
            oversample=max(oversample, 4.0),
            probe=probe,
        )
    if testbed not in _TESTBEDS:
        raise ConfigurationError(
            f"unknown testbed {testbed!r}; available: {sorted(_TESTBEDS)}"
        )
    if oversample < 1.0:
        raise ConfigurationError("oversample must be >= 1.0")
    tb = _TESTBEDS[testbed]()
    sim = tb.simulator()
    stream_packets = max(packets_per_fix, int(round(packets_per_fix * oversample)))
    specs = scenario_specs(
        scenario, packets_per_fix=stream_packets, bursts=bursts
    )
    metrics = RuntimeMetrics()
    spotfi = SpotFi(
        sim.grid,
        bounds=tb.bounds,
        config=SpotFiConfig(packets_per_fix=packets_per_fix, min_aps=min_aps),
        rng=np.random.default_rng(seed),
    )
    injector = (
        FaultInjector(specs, rng=np.random.default_rng(seed), metrics=metrics)
        if specs
        else None
    )
    validator = FrameValidator(
        ValidationPolicy(
            expected_antennas=tb.aps[0].num_antennas,
            expected_subcarriers=sim.grid.num_subcarriers,
        ),
        metrics=metrics,
    )
    burst_span_s = stream_packets * PACKET_INTERVAL_S
    downgrading = scenario == "downgrade"
    server = SpotFiServer(
        spotfi=spotfi,
        aps={f"ap{i}": ap for i, ap in enumerate(tb.aps)},
        packets_per_fix=packets_per_fix,
        min_aps=min_aps,
        max_burst_age_s=2.0 * burst_span_s,
        metrics=metrics,
        validator=validator,
        fault_injector=injector,
        breaker_threshold=2,
        # The downgrade drill keeps the breaker open for the rest of the
        # run so every post-trip fix exercises the coarse tier.
        breaker_recovery_s=(bursts + 1) * burst_span_s
        if downgrading
        else burst_span_s,
        downgrade_tier="coarse" if downgrading else "",
    )
    telemetry = None
    if probe is not None:
        # Real HTTP on an ephemeral port: the probe sees exactly what a
        # load balancer polling /healthz would see mid-scenario.
        from repro.obs.http import fetch_json

        telemetry = server.start_telemetry(port=0)
    data_rng = np.random.default_rng(seed + 1)
    errors: List[float] = []
    fixes_ok = 0
    degraded_fixes = 0
    downgraded_fixes = 0
    try:
        for burst in range(bursts):
            spot = tb.targets[burst % len(tb.targets)]
            source = f"chaos-{burst:02d}"
            t0 = burst * burst_span_s
            if downgrading and burst == bursts // 2:
                server.trip_breaker("ap1", t0)
            traces = [
                sim.generate_trace(
                    spot.position, ap, stream_packets, rng=data_rng, source=source
                )
                for ap in tb.aps
            ]
            events = []
            for k in range(stream_packets):
                stamp = t0 + k * PACKET_INTERVAL_S
                for i, trace in enumerate(traces):
                    frame = trace[k]
                    frame = CsiFrame(
                        csi=frame.csi,
                        rssi_dbm=frame.rssi_dbm,
                        timestamp_s=stamp,
                        source=source,
                    )
                    event = server.ingest(f"ap{i}", frame)
                    if event is not None:
                        events.append(event)
            event = server.flush(source, t0 + burst_span_s)
            if event is not None:
                events.append(event)
            ok = [e for e in events if e.ok]
            if ok:
                fixes_ok += 1
                last = ok[-1]
                errors.append(last.fix.error_to(spot.position))
                if last.fix.degraded:
                    degraded_fixes += 1
                if last.downgraded:
                    downgraded_fixes += 1
            if telemetry is not None and probe is not None:
                probe(fetch_json(f"{telemetry.url}/healthz"))
    finally:
        if telemetry is not None:
            telemetry.stop()
    clean_median = float("nan")
    if with_baseline is None:
        with_baseline = scenario == "blackout"
    if with_baseline and scenario != "clean":
        clean_median = run_chaos(
            scenario="clean",
            testbed=testbed,
            seed=seed,
            packets_per_fix=packets_per_fix,
            bursts=bursts,
            min_aps=min_aps,
            oversample=oversample,
            with_baseline=False,
        ).median_error_m
    return ChaosReport(
        scenario=scenario,
        testbed=testbed,
        seed=seed,
        bursts=bursts,
        fixes_attempted=bursts,
        fixes_ok=fixes_ok,
        degraded_fixes=degraded_fixes,
        downgraded_fixes=downgraded_fixes,
        median_error_m=float(np.median(errors)) if errors else float("nan"),
        quarantined=validator.counts(),
        injected=_counters_with_prefix(metrics, "faults.injected."),
        breakers=server.breaker_states(),
        clean_median_error_m=clean_median,
    )


def format_report(report: ChaosReport) -> str:
    """Human-readable multi-line summary of a chaos run."""
    lines = [
        f"chaos scenario {report.scenario!r} on testbed {report.testbed!r} "
        f"(seed {report.seed})",
        f"  fixes: {report.fixes_ok}/{report.fixes_attempted} ok "
        f"({100.0 * report.success_rate:.0f}%), "
        f"{report.degraded_fixes} degraded",
    ]
    if report.downgraded_fixes:
        lines.append(
            f"  downgraded: {report.downgraded_fixes} fixes served on the "
            f"downgrade tier"
        )
    if not math.isnan(report.median_error_m):
        lines.append(f"  median error: {report.median_error_m:.3f} m")
    if not math.isnan(report.clean_median_error_m):
        lines.append(
            f"  clean baseline: {report.clean_median_error_m:.3f} m "
            f"(delta {report.error_delta_m:+.3f} m)"
        )
    if report.injected:
        mix = ", ".join(f"{k}={v}" for k, v in sorted(report.injected.items()))
        lines.append(f"  injected: {mix}")
    if report.quarantined:
        mix = ", ".join(f"{k}={v}" for k, v in sorted(report.quarantined.items()))
        lines.append(f"  quarantined: {mix}")
    if report.breakers:
        mix = ", ".join(f"{k}={v}" for k, v in sorted(report.breakers.items()))
        lines.append(f"  breakers: {mix}")
    return "\n".join(lines)
