"""Retry policy: bounded retries, exponential backoff with jitter, deadlines.

Per-packet MUSIC on a worker pool can fail transiently — a worker OOM-kill,
a flaky NFS read of a trace, a pool respawn — and a single such failure
should not abort a whole fix.  :class:`RetryPolicy` describes how the
executors (see :mod:`repro.runtime.executor`) respond: how many attempts a
work chunk gets, how long to back off between attempts (exponential with
decorrelating jitter, so a thundering herd of retries spreads out), which
exception types count as transient, and the per-chunk deadline after which
a hung worker is abandoned.

The policy is pure data plus two pure helpers (:meth:`delay_for`,
:meth:`is_transient`), so it is trivially picklable and testable; the
sleeping and resubmitting live in the executors.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Tuple, Type

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """How an executor treats failing or hung work items.

    Attributes
    ----------
    max_attempts:
        Total tries per chunk (1 = no retries, the historical behaviour).
    base_delay_s:
        Backoff before the first retry; attempt ``k`` (1-based retry
        count) waits ``base_delay_s * backoff_factor**(k-1)`` scaled by
        jitter, capped at ``max_delay_s``.
    max_delay_s:
        Upper bound on any single backoff sleep.
    backoff_factor:
        Exponential growth factor between consecutive retries.
    jitter:
        Fraction of the computed delay randomized away (0 = deterministic
        backoff, 0.5 = delay drawn uniformly from [0.5d, d]).  Jitter
        decorrelates retries from many callers hitting one failure.
    timeout_s:
        Per-chunk deadline in seconds; 0 disables.  Only the parallel
        executor can enforce it (a serial executor cannot interrupt its
        own thread); missing the deadline on the final attempt raises
        :class:`~repro.errors.DeadlineExceededError`.
    retry_on:
        Exception types considered transient and worth retrying.  Anything
        else propagates immediately (a shape error will not fix itself).
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    backoff_factor: float = 2.0
    jitter: float = 0.5
    timeout_s: float = 0.0
    retry_on: Tuple[Type[BaseException], ...] = field(
        default=(OSError, RuntimeError, TimeoutError)
    )

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.timeout_s < 0:
            raise ConfigurationError(f"timeout_s must be >= 0, got {self.timeout_s}")

    def is_transient(self, exc: BaseException) -> bool:
        """Whether ``exc`` is worth retrying under this policy."""
        return isinstance(exc, self.retry_on)

    def delay_for(self, retry_number: int, rng: random.Random) -> float:
        """Backoff sleep before retry ``retry_number`` (1-based), jittered."""
        delay = min(
            self.base_delay_s * self.backoff_factor ** (retry_number - 1),
            self.max_delay_s,
        )
        if self.jitter > 0 and delay > 0:
            delay *= 1.0 - self.jitter * rng.random()
        return delay


#: No retries, no deadline — byte-identical to the pre-faults behaviour.
NO_RETRY = RetryPolicy(max_attempts=1, base_delay_s=0.0, jitter=0.0)
