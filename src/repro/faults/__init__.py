"""Fault injection, validation, and graceful degradation (``repro.faults``).

The robustness layer around the SpotFi pipeline:

* :mod:`~repro.faults.spec` — the catalog of composable CSI corruptions
  (:class:`FaultSpec` and friends) plus :func:`raw_frame`/:func:`raw_trace`
  for building wire-like, unvalidated frames.
* :mod:`~repro.faults.injector` — :class:`FaultInjector`, applying a fault
  mix to live frames (server chaos layer) or recorded traces (channel
  impairment wrapper).
* :mod:`~repro.faults.validator` — :class:`FrameValidator` +
  :class:`ValidationPolicy`, the admission screen that quarantines
  malformed CSI before it can reach smoothing or MUSIC.
* :mod:`~repro.faults.breaker` — :class:`CircuitBreaker`, the per-AP
  closed/open/half-open failure breaker the server uses to shed flapping
  APs.
* :mod:`~repro.faults.retry` — :class:`RetryPolicy`, bounded retries with
  jittered exponential backoff (used by the runtime executors).
* :mod:`~repro.faults.network` — transport fault specs
  (:class:`NetworkFaultSpec` and friends) and the :class:`FaultySocket`
  wrapper that applies them to live router/shard sockets.
* :mod:`~repro.faults.chaos` — seeded end-to-end chaos scenarios
  (:func:`run_chaos`, the ``repro chaos`` command).

The chaos symbols (:func:`run_chaos`, :class:`ChaosReport`,
:data:`SCENARIOS`, :func:`scenario_specs`, :func:`format_report`) load
lazily: :mod:`~repro.faults.chaos` pulls in the whole server stack, which
itself depends on this package's leaf modules, so an eager import here
would be circular.
"""

from repro.faults.breaker import BREAKER_STATES, CircuitBreaker
from repro.faults.injector import FaultInjector
from repro.faults.network import (
    BlackHole,
    ConnectionReset,
    CorruptBytes,
    FaultySocket,
    NetworkFaultInjector,
    NetworkFaultSpec,
    PartialWrite,
    ShortRead,
    SlowLink,
    WireEffect,
    flip_bytes,
)
from repro.faults.retry import NO_RETRY, RetryPolicy
from repro.faults.spec import (
    ApBlackout,
    DropAntenna,
    DropFrame,
    DuplicateFrame,
    FaultSpec,
    NanSubcarriers,
    PhaseGlitch,
    ReorderFrames,
    TruncatePacket,
    ZeroSubcarriers,
    raw_frame,
    raw_trace,
)
from repro.faults.validator import FrameValidator, ValidationPolicy

_CHAOS_EXPORTS = (
    "ChaosReport",
    "SCENARIOS",
    "format_report",
    "run_chaos",
    "scenario_specs",
)

__all__ = [
    "ApBlackout",
    "BREAKER_STATES",
    "BlackHole",
    "CircuitBreaker",
    "ConnectionReset",
    "CorruptBytes",
    "DropAntenna",
    "DropFrame",
    "DuplicateFrame",
    "FaultInjector",
    "FaultSpec",
    "FaultySocket",
    "FrameValidator",
    "NO_RETRY",
    "NanSubcarriers",
    "NetworkFaultInjector",
    "NetworkFaultSpec",
    "PartialWrite",
    "PhaseGlitch",
    "ReorderFrames",
    "RetryPolicy",
    "ShortRead",
    "SlowLink",
    "TruncatePacket",
    "ValidationPolicy",
    "WireEffect",
    "ZeroSubcarriers",
    "flip_bytes",
    "raw_frame",
    "raw_trace",
] + list(_CHAOS_EXPORTS)


def __getattr__(name: str) -> object:
    if name in _CHAOS_EXPORTS:
        from repro.faults import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
