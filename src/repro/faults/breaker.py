"""Per-AP circuit breaker: shed load from a flapping AP.

An AP whose CSI keeps failing estimation (dead antenna, firmware wedge,
interference burst) wastes a full MUSIC pass per fix attempt and drags
every fix toward the failure path.  :class:`CircuitBreaker` implements the
classic three-state machine:

* **closed** — healthy; calls flow, consecutive failures are counted.
* **open** — tripped after ``failure_threshold`` consecutive failures;
  calls are shed (:meth:`allow` returns False, :meth:`call` raises
  :class:`~repro.errors.CircuitOpenError`) until ``recovery_time_s`` of
  clock has passed.
* **half-open** — after the recovery window, up to
  ``half_open_max_trials`` probe calls are admitted; one success closes
  the breaker, one failure re-opens it.

Time is an explicit ``now_s`` argument rather than a wall-clock read, so
the server can drive breakers off packet timestamps — replayed traces
then exercise exactly the transitions a live deployment would see, and
tests are deterministic.  Every transition is reported through the
``on_transition`` callback (the server wires this to metrics counters and
trace spans).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import CircuitOpenError, ConfigurationError

#: Breaker state names, also used as Prometheus gauge values (index).
BREAKER_STATES = ("closed", "open", "half-open")


class CircuitBreaker:
    """Three-state (closed/open/half-open) failure breaker for one AP.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures in the closed state that trip the breaker.
    recovery_time_s:
        Clock seconds the breaker stays open before probing (half-open).
    half_open_max_trials:
        Probe calls admitted while half-open before further calls are
        shed again (pending the probes' outcomes).
    name:
        Diagnostic label (the AP id) carried into transition callbacks.
    on_transition:
        ``callback(name, old_state, new_state, now_s)`` invoked on every
        state change.
    """

    __slots__ = (
        "failure_threshold",
        "recovery_time_s",
        "half_open_max_trials",
        "name",
        "on_transition",
        "_state",
        "_consecutive_failures",
        "_opened_at_s",
        "_half_open_trials",
    )

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_time_s: float = 30.0,
        half_open_max_trials: int = 1,
        name: str = "",
        on_transition: Optional[Callable[[str, str, str, float], None]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if recovery_time_s < 0:
            raise ConfigurationError(
                f"recovery_time_s must be >= 0, got {recovery_time_s}"
            )
        if half_open_max_trials < 1:
            raise ConfigurationError(
                f"half_open_max_trials must be >= 1, got {half_open_max_trials}"
            )
        self.failure_threshold = int(failure_threshold)
        self.recovery_time_s = float(recovery_time_s)
        self.half_open_max_trials = int(half_open_max_trials)
        self.name = name
        self.on_transition = on_transition
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at_s = 0.0
        self._half_open_trials = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state name: ``closed``, ``open`` or ``half-open``."""
        return self._state

    def _transition(self, new_state: str, now_s: float) -> None:
        old = self._state
        if old == new_state:
            return
        self._state = new_state
        if self.on_transition is not None:
            self.on_transition(self.name, old, new_state, now_s)

    # ------------------------------------------------------------------
    def allow(self, now_s: float) -> bool:
        """Whether a call should be attempted at clock time ``now_s``.

        An open breaker whose recovery window has elapsed moves to
        half-open here; half-open admits up to ``half_open_max_trials``
        probes (each ``allow`` that returns True consumes one).
        """
        if self._state == "open":
            if now_s - self._opened_at_s >= self.recovery_time_s:
                self._half_open_trials = 0
                self._transition("half-open", now_s)
            else:
                return False
        if self._state == "half-open":
            if self._half_open_trials >= self.half_open_max_trials:
                return False
            self._half_open_trials += 1
            return True
        return True

    def record_success(self, now_s: float) -> None:
        """Note a successful call: closes a half-open breaker."""
        self._consecutive_failures = 0
        if self._state == "half-open":
            self._transition("closed", now_s)

    def record_failure(self, now_s: float) -> None:
        """Note a failed call: may trip (or re-trip) the breaker."""
        if self._state == "half-open":
            self._opened_at_s = now_s
            self._transition("open", now_s)
            return
        self._consecutive_failures += 1
        if self._state == "closed" and (
            self._consecutive_failures >= self.failure_threshold
        ):
            self._opened_at_s = now_s
            self._transition("open", now_s)

    # ------------------------------------------------------------------
    def call(self, fn: Callable[..., Any], now_s: float, *args: Any, **kwargs: Any) -> Any:
        """Run ``fn`` through the breaker.

        Raises :class:`~repro.errors.CircuitOpenError` when the breaker is
        shedding; otherwise runs ``fn`` and records success/failure (the
        exception, if any, propagates unchanged).
        """
        if not self.allow(now_s):
            raise CircuitOpenError(
                f"circuit breaker {self.name or '(unnamed)'} is {self._state}; "
                f"call shed"
            )
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record_failure(now_s)
            raise
        self.record_success(now_s)
        return result

    def reset(self) -> None:
        """Force the breaker back to closed with no failure history."""
        self._state = "closed"
        self._consecutive_failures = 0
        self._half_open_trials = 0
