"""Transport fault specifications: the catalog of network corruptions.

The CSI-level catalog (:mod:`repro.faults.spec`) corrupts what the
pipeline *computes on*; this module corrupts what the dist layer
*ships over* — the byte streams between the
:class:`~repro.dist.router.ShardRouter` and its shard workers.  Real
deployments see all of it: load balancers reset idle connections,
congested links stretch round trips past timeouts, middleboxes truncate
writes, and flaky NICs flip bits that the protocol framing must catch.

===========================  ===========================================
spec                         transport failure
===========================  ===========================================
:class:`ConnectionReset`     the peer resets: ``ECONNRESET`` mid-operation
:class:`ShortRead`           a read returns a prefix, then the stream dies
:class:`PartialWrite`        a write lands partially, then the stream dies
:class:`CorruptBytes`        random byte flips in transit (framing damage)
:class:`SlowLink`            injected latency on every struck operation
:class:`BlackHole`           the connection hangs; ops time out silently
===========================  ===========================================

Specs are frozen dataclasses — pure, picklable descriptions, mirroring
the :class:`~repro.faults.spec.FaultSpec` API (``probability``,
``targets``, a ``kind`` for counters).  Randomness comes from the
:class:`NetworkFaultInjector`'s seeded generator, so a given
``(seed, spec list, traffic)`` triple replays the identical fault
sequence.  Faults are applied by wrapping a connected socket in a
:class:`FaultySocket`; both the router (``socket_wrapper=``) and the
shard server (``ShardConfig(network_faults=)``) accept the wrapper, so
chaos can strike either side of the wire.  Injection counts land under
``faults.network.<kind>``.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.runtime.metrics import RuntimeMetrics


@dataclass(frozen=True)
class WireEffect:
    """What one injected fault does to one socket operation.

    Attributes
    ----------
    delay_s:
        Sleep this long before the operation proceeds.
    truncate_to:
        When >= 0, deliver only this many bytes (send: a partial write;
        recv: a short read).
    corrupt_flips:
        XOR this many randomly chosen bytes before delivery.
    drop:
        Send only: silently discard the bytes (they never hit the wire).
    raise_kind:
        ``"reset"`` or ``"timeout"``: raise after whatever was delivered.
    poison:
        Mark the socket so every *subsequent* operation raises this kind
        — a struck connection stays broken, as a real one would.
    """

    delay_s: float = 0.0
    truncate_to: int = -1
    corrupt_flips: int = 0
    drop: bool = False
    raise_kind: str = ""
    poison: str = ""


@dataclass(frozen=True)
class NetworkFaultSpec:
    """Base transport fault: when and where it strikes.

    Attributes
    ----------
    probability:
        Per-operation chance the fault fires (each ``sendall`` and each
        ``recv`` on a wrapped socket is one opportunity).
    shard_id:
        Restrict the fault to connections whose peer label matches;
        None strikes every connection.
    """

    probability: float = 1.0
    shard_id: Optional[str] = None

    #: Which socket operations this spec can strike.
    direction = "both"  # "send", "recv" or "both"
    kind = "noop"

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {self.probability}"
            )

    def targets(self, peer: str) -> bool:
        """Whether this spec applies to a connection labelled ``peer``."""
        return self.shard_id is None or self.shard_id == peer

    def fires_on(self, op: str) -> bool:
        """Whether this spec can strike the given operation."""
        return self.direction in (op, "both")

    def effect(self, op: str, rng: np.random.Generator) -> WireEffect:
        """The concrete effect of one strike on one operation."""
        return WireEffect()


@dataclass(frozen=True)
class ConnectionReset(NetworkFaultSpec):
    """The peer resets the connection: the operation dies with ECONNRESET."""

    kind = "reset"
    direction = "both"

    def effect(self, op: str, rng: np.random.Generator) -> WireEffect:
        return WireEffect(raise_kind="reset", poison="reset", drop=True)


@dataclass(frozen=True)
class ShortRead(NetworkFaultSpec):
    """A read returns only a prefix, then the stream is dead.

    The peer's message is cut mid-frame: the reader gets ``keep_bytes``
    of it and every later read raises ECONNRESET — exactly what a
    connection torn between TCP segments looks like.
    """

    keep_bytes: int = 8

    kind = "short_read"
    direction = "recv"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.keep_bytes < 1:
            raise ConfigurationError(
                f"keep_bytes must be >= 1, got {self.keep_bytes}"
            )

    def effect(self, op: str, rng: np.random.Generator) -> WireEffect:
        return WireEffect(truncate_to=self.keep_bytes, poison="reset")


@dataclass(frozen=True)
class PartialWrite(NetworkFaultSpec):
    """A write lands partially on the wire, then the stream is dead.

    The peer receives ``keep_bytes`` of the message and then sees the
    connection die mid-frame (its ``recv_exact`` raises
    :class:`~repro.errors.TraceFormatError`); the writer gets
    ECONNRESET immediately after the partial delivery.
    """

    keep_bytes: int = 32

    kind = "partial_write"
    direction = "send"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.keep_bytes < 1:
            raise ConfigurationError(
                f"keep_bytes must be >= 1, got {self.keep_bytes}"
            )

    def effect(self, op: str, rng: np.random.Generator) -> WireEffect:
        return WireEffect(
            truncate_to=self.keep_bytes, raise_kind="reset", poison="reset"
        )


@dataclass(frozen=True)
class CorruptBytes(NetworkFaultSpec):
    """Random byte flips in transit: framing damage the protocol must catch."""

    flips: int = 4

    kind = "corrupt"
    direction = "both"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.flips < 1:
            raise ConfigurationError(f"flips must be >= 1, got {self.flips}")

    def effect(self, op: str, rng: np.random.Generator) -> WireEffect:
        return WireEffect(corrupt_flips=self.flips)


@dataclass(frozen=True)
class SlowLink(NetworkFaultSpec):
    """Injected latency: every struck operation waits before proceeding."""

    delay_s: float = 0.02
    jitter_s: float = 0.0

    kind = "slow"
    direction = "both"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.delay_s < 0.0 or self.jitter_s < 0.0:
            raise ConfigurationError(
                f"delay_s/jitter_s must be >= 0, got "
                f"({self.delay_s}, {self.jitter_s})"
            )

    def effect(self, op: str, rng: np.random.Generator) -> WireEffect:
        jitter = float(rng.random()) * self.jitter_s if self.jitter_s else 0.0
        return WireEffect(delay_s=self.delay_s + jitter)


@dataclass(frozen=True)
class BlackHole(NetworkFaultSpec):
    """The connection hangs: bytes vanish, reads block until timeout.

    Modeled without real waiting — a struck send silently drops its
    bytes and a struck recv raises ``socket.timeout`` immediately, which
    is what the caller of a genuinely hung socket observes once its
    configured timeout elapses.
    """

    kind = "blackhole"
    direction = "both"

    def effect(self, op: str, rng: np.random.Generator) -> WireEffect:
        if op == "send":
            return WireEffect(drop=True, poison="timeout")
        return WireEffect(raise_kind="timeout", poison="timeout")


def flip_bytes(data: bytes, flips: int, rng: np.random.Generator) -> bytes:
    """XOR ``flips`` randomly chosen bytes with random non-zero masks."""
    if not data or flips <= 0:
        return data
    buf = bytearray(data)
    for _ in range(flips):
        index = int(rng.integers(0, len(buf)))
        buf[index] ^= int(rng.integers(1, 256))
    return bytes(buf)


class FaultySocket:
    """A socket proxy that injects transport faults into sendall/recv.

    Wraps a connected socket and runs every ``sendall``/``recv`` through
    the injector's fault mix; everything the dist protocol needs
    (``settimeout``, ``setblocking``, ``fileno`` for ``select``,
    ``close``, context management) delegates to the real socket.  Once a
    fault poisons the connection, every later operation raises the
    poisoned kind — a struck stream never heals.
    """

    def __init__(
        self,
        sock: socket.socket,
        injector: "NetworkFaultInjector",
        peer: str = "",
    ) -> None:
        self.sock = sock
        self.injector = injector
        self.peer = peer
        self._poison = ""

    # ------------------------------------------------------------------
    def _raise_kind(self, kind: str) -> None:
        if kind == "reset":
            raise ConnectionResetError(
                f"injected fault: connection to {self.peer or 'peer'} reset"
            )
        if kind == "timeout":
            raise socket.timeout(
                f"injected fault: connection to {self.peer or 'peer'} "
                f"black-holed"
            )

    def _check_poison(self) -> None:
        if self._poison:
            self._raise_kind(self._poison)

    # ------------------------------------------------------------------
    def sendall(self, data: bytes) -> None:
        """Send, subject to the fault mix (may truncate, drop, or raise)."""
        self._check_poison()
        effect = self.injector.strike("send", self.peer)
        if effect is None:
            self.sock.sendall(data)
            return
        if effect.delay_s > 0.0:
            time.sleep(effect.delay_s)
        if effect.poison:
            self._poison = effect.poison
        if effect.drop:
            self._raise_kind(effect.raise_kind)
            return
        out = bytes(data)
        if effect.truncate_to >= 0:
            out = out[: effect.truncate_to]
        if effect.corrupt_flips:
            out = flip_bytes(out, effect.corrupt_flips, self.injector.rng)
        if out:
            self.sock.sendall(out)
        self._raise_kind(effect.raise_kind)

    def recv(self, bufsize: int) -> bytes:
        """Receive, subject to the fault mix (may truncate, corrupt, raise)."""
        self._check_poison()
        effect = self.injector.strike("recv", self.peer)
        if effect is None:
            return self.sock.recv(bufsize)
        if effect.delay_s > 0.0:
            time.sleep(effect.delay_s)
        if effect.poison:
            self._poison = effect.poison
        if effect.raise_kind:
            self._raise_kind(effect.raise_kind)
        chunk = self.sock.recv(bufsize)
        if effect.truncate_to >= 0:
            chunk = chunk[: effect.truncate_to]
        if effect.corrupt_flips:
            chunk = flip_bytes(chunk, effect.corrupt_flips, self.injector.rng)
        return chunk

    # ------------------------------------------------------------------
    # Plain delegation: what the dist protocol + selector loops touch.
    # ------------------------------------------------------------------
    def settimeout(self, timeout: Optional[float]) -> None:
        """Delegate to the wrapped socket."""
        self.sock.settimeout(timeout)

    def setblocking(self, flag: bool) -> None:
        """Delegate to the wrapped socket."""
        self.sock.setblocking(flag)

    def fileno(self) -> int:
        """Delegate to the wrapped socket (``select``/selector support)."""
        return self.sock.fileno()

    def close(self) -> None:
        """Delegate to the wrapped socket."""
        self.sock.close()

    def __enter__(self) -> "FaultySocket":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class NetworkFaultInjector:
    """Applies a composable transport fault mix to socket traffic.

    The network counterpart of :class:`~repro.faults.injector.
    FaultInjector`: owns the seeded generator (reproducible strike
    sequences) and the ``faults.network.<kind>`` counters.  ``wrap``
    matches the :class:`~repro.dist.router.ShardRouter`
    ``socket_wrapper`` hook signature, so arming a router is::

        injector = NetworkFaultInjector(specs, rng=..., metrics=...)
        router = ShardRouter(shards, socket_wrapper=injector.wrap)
    """

    def __init__(
        self,
        specs: Sequence[NetworkFaultSpec],
        rng: Optional[np.random.Generator] = None,
        metrics: Optional[RuntimeMetrics] = None,
    ) -> None:
        self.specs: List[NetworkFaultSpec] = list(specs)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.metrics = metrics

    def _count(self, kind: str) -> None:
        if self.metrics is not None:
            self.metrics.increment(f"faults.network.{kind}")
            self.metrics.increment("faults.network.total")

    def strike(self, op: str, peer: str) -> Optional[WireEffect]:
        """Roll the fault mix for one socket operation.

        Returns the first firing spec's effect (specs are evaluated in
        order, one strike per operation), or None when nothing fires —
        the wrapped socket then behaves exactly like the real one.
        """
        for spec in self.specs:
            if not spec.fires_on(op) or not spec.targets(peer):
                continue
            if float(self.rng.random()) < spec.probability:
                self._count(spec.kind)
                return spec.effect(op, self.rng)
        return None

    def wrap(self, sock: Any, peer: str = "") -> FaultySocket:
        """Wrap a connected socket (the router ``socket_wrapper`` hook)."""
        return FaultySocket(sock, self, peer=peer)
