"""RF channel simulator: turns floorplan geometry into per-path
(AoA, ToF, complex gain) profiles and synthesizes the CSI an Intel 5300
would report for them, including the impairments SpotFi fights (STO, SFO,
packet-detection delay, AWGN, 8-bit quantization)."""

from repro.channel.chains import ChainOffsets
from repro.channel.csi_model import ChannelSimulator, synthesize_csi
from repro.channel.impairments import ImpairmentModel, ImpairmentState
from repro.channel.materials import Material, MaterialLibrary
from repro.channel.multipath import MultipathProfile, extract_profile
from repro.channel.pathloss import LogDistancePathLoss
from repro.channel.paths import PropagationPath

__all__ = [
    "ChainOffsets",
    "ChannelSimulator",
    "ImpairmentModel",
    "ImpairmentState",
    "LogDistancePathLoss",
    "Material",
    "MaterialLibrary",
    "MultipathProfile",
    "PropagationPath",
    "extract_profile",
    "synthesize_csi",
]
