"""CSI synthesis: from multipath profiles to the CSI matrices a NIC reports.

For each path k with AoA theta_k, ToF tau_k and complex gain gamma_k, the
clean CSI entry at antenna m (0-based) and reported subcarrier n is

    H[m, n] = gamma_k * exp(-j 2 pi (f_n - f_c) tau_k)
                      * exp(-j 2 pi f_n d m sin(theta_k) / c)

summed over paths.  gamma_k's phase already carries the carrier-cycle
propagation phase (-2 pi f_c tau_k, from the path length), so the product
is the *exact* per-subcarrier propagation phase exp(-j 2 pi f_n tau_k).
Using the exact per-subcarrier frequency f_n in the AoA term (instead of
the carrier approximation of paper Eq. 1) gives the estimators realistic
model mismatch to absorb — the paper shows this mismatch is negligible
(Sec. 3.1.2), and our tests confirm it.

:class:`ChannelSimulator` wires this synthesis to the ray tracer and the
impairment model to produce complete :class:`~repro.wifi.csi.CsiTrace`
objects, the input of Algorithm 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro.analysis.contracts import contract
from repro.channel.chains import ChainOffsets
from repro.channel.impairments import ImpairmentModel, ImpairmentState
from repro.channel.materials import DEFAULT_MATERIALS, MaterialLibrary
from repro.channel.multipath import MultipathProfile, extract_profile
from repro.channel.paths import PropagationPath
from repro.constants import SPEED_OF_LIGHT
from repro.errors import ConfigurationError
from repro.geom.floorplan import Floorplan
from repro.geom.points import PointLike, as_point
from repro.wifi.arrays import UniformLinearArray
from repro.wifi.csi import CsiFrame, CsiTrace
from repro.wifi.ofdm import OfdmGrid


@contract(returns="(M,N) complex128")
def synthesize_csi(
    paths: Union[MultipathProfile, Sequence[PropagationPath]],
    array: UniformLinearArray,
    grid: OfdmGrid,
) -> np.ndarray:
    """Clean (impairment-free) CSI matrix for ``paths`` at ``array`` on ``grid``.

    Returns a complex array of shape (num_antennas, num_subcarriers).
    """
    path_list = list(paths)
    if not path_list:
        raise ConfigurationError("cannot synthesize CSI with zero paths")
    freqs = grid.subcarrier_freqs_hz()  # absolute f_n, shape (N,)
    f_c = grid.carrier_freq_hz
    m = np.arange(array.num_antennas)  # (M,)
    csi = np.zeros((array.num_antennas, grid.num_subcarriers), dtype=np.complex128)
    for path in path_list:
        sin_theta = np.sin(np.deg2rad(path.aoa_deg))
        tof_phase = np.exp(-2j * np.pi * (freqs - f_c) * path.tof_s)  # (N,)
        aoa_phase = np.exp(
            -2j
            * np.pi
            * np.outer(m, freqs)
            * array.spacing_m
            * sin_theta
            / SPEED_OF_LIGHT
        )  # (M, N)
        csi += path.gain * aoa_phase * tof_phase[None, :]
    return csi


@dataclass
class ChannelSimulator:
    """End-to-end CSI/RSSI generator for one floorplan.

    Produces, for any (target position, AP array) pair, the multipath
    profile, the per-packet impaired CSI frames, and the RSSI — everything
    a SpotFi server would receive from that AP.

    Attributes
    ----------
    floorplan:
        Environment to ray-trace.
    grid:
        OFDM grid CSI is reported on (e.g. ``Intel5300().grid()``).
    impairments:
        Per-packet impairment model (STO/SFO/noise/quantization).
    materials:
        Material library for wall coefficients.
    max_reflection_order:
        Specular reflection order for the ray tracer.
    max_paths:
        Keep at most this many strongest paths per profile.
    tx_power_dbm:
        Target transmit power; sets the RSSI scale.
    rssi_jitter_db:
        Std-dev of per-packet RSSI measurement noise (dB).
    fading_std_db:
        Per-packet, per-path log-normal amplitude fading (dB std-dev).
        0 (default) freezes the channel across the burst; small values
        model residual environmental motion.
    fading_phase_std_rad:
        Per-packet, per-path phase jitter accompanying the fading.
    """

    floorplan: Floorplan
    grid: OfdmGrid
    impairments: ImpairmentModel = field(default_factory=ImpairmentModel)
    materials: MaterialLibrary = DEFAULT_MATERIALS
    max_reflection_order: int = 2
    max_paths: int = 8
    include_diffraction: bool = False
    tx_power_dbm: float = 15.0
    rssi_jitter_db: float = 1.0
    fading_std_db: float = 0.0
    fading_phase_std_rad: float = 0.0

    def profile(
        self, target: PointLike, array: UniformLinearArray
    ) -> MultipathProfile:
        """Ground-truth multipath profile from ``target`` to ``array``."""
        wavelength = SPEED_OF_LIGHT / self.grid.carrier_freq_hz
        return extract_profile(
            floorplan=self.floorplan,
            target=as_point(target),
            array=array,
            wavelength_m=wavelength,
            max_reflection_order=self.max_reflection_order,
            max_paths=self.max_paths,
            materials=self.materials,
            include_diffraction=self.include_diffraction,
        )

    def generate_trace(
        self,
        target: PointLike,
        array: UniformLinearArray,
        num_packets: int,
        rng: Optional[np.random.Generator] = None,
        packet_interval_s: float = 0.1,
        source: str = "target",
        profile: Optional[MultipathProfile] = None,
        chain: Optional["ChainOffsets"] = None,
    ) -> CsiTrace:
        """Simulate ``num_packets`` received packets from ``target`` at ``array``.

        Each packet gets its own impairment state (STO drift, noise draw,
        quantization), optional per-path fading, and an RSSI reading
        derived from the profile's total power plus measurement jitter,
        rounded to the card's 1 dB step.  ``chain`` applies the AP's
        receive-chain phase offsets (see `repro.channel.chains`).  The
        paper's collection uses 500 packets at 100 ms intervals
        (Sec. 4.3.1); those are the defaults upstream.
        """
        if num_packets < 1:
            raise ConfigurationError(f"num_packets must be >= 1, got {num_packets}")
        rng = np.random.default_rng() if rng is None else rng
        if profile is None:
            profile = self.profile(target, array)
        if profile.num_paths == 0:
            raise ConfigurationError(
                f"no propagation paths from {as_point(target)} to AP at "
                f"{array.position}; target may be fully shielded"
            )
        fading = self.fading_std_db > 0 or self.fading_phase_std_rad > 0
        clean = None if fading else synthesize_csi(profile, array, self.grid)
        base_rssi = profile.rssi_dbm(self.tx_power_dbm)
        frames = []
        for i in range(num_packets):
            if fading:
                clean = synthesize_csi(self._faded(profile, rng), array, self.grid)
            state = self.impairments.draw_state(i, rng)
            csi = clean
            if chain is not None:
                csi = chain.apply(csi)
            csi = self.impairments.apply(
                csi, state, self.grid.subcarrier_spacing_hz, rng
            )
            rssi = base_rssi
            if self.rssi_jitter_db > 0:
                rssi += rng.normal(0.0, self.rssi_jitter_db)
            frames.append(
                CsiFrame(
                    csi=csi,
                    rssi_dbm=float(np.round(rssi)),
                    timestamp_s=i * packet_interval_s,
                    source=source,
                )
            )
        return CsiTrace(frames)

    def _faded(
        self, profile: MultipathProfile, rng: np.random.Generator
    ) -> MultipathProfile:
        """One packet's fading realization of a multipath profile."""
        paths = []
        for path in profile:
            amp = 10.0 ** (rng.normal(0.0, self.fading_std_db) / 20.0)
            phase = (
                rng.normal(0.0, self.fading_phase_std_rad)
                if self.fading_phase_std_rad > 0
                else 0.0
            )
            paths.append(
                PropagationPath(
                    aoa_deg=path.aoa_deg,
                    tof_s=path.tof_s,
                    gain=path.gain * amp * np.exp(1j * phase),
                    kind=path.kind,
                    length_m=path.length_m,
                )
            )
        return MultipathProfile(paths=paths)

    def generate_traces(
        self,
        target: PointLike,
        arrays: Iterable[UniformLinearArray],
        num_packets: int,
        rng: Optional[np.random.Generator] = None,
    ) -> "list[CsiTrace]":
        """Traces from one target to several APs (shared packet schedule)."""
        rng = np.random.default_rng() if rng is None else rng
        return [
            self.generate_trace(target, array, num_packets, rng=rng)
            for array in arrays
        ]
