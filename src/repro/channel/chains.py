"""Receiver-chain phase offsets.

Real multi-antenna NICs have unknown, static phase offsets between their
receive chains (cable lengths, mixers): antenna m's CSI is rotated by a
constant ``exp(j phi_m)`` that has nothing to do with geometry.  Left
uncorrected, the offsets translate every AoA estimate by an arbitrary
amount — which is why AoA systems on commodity cards need per-AP phase
calibration (the problem Phaser [8], the paper's ArrayTrack substrate,
exists to solve; SpotFi's experiments rely on the same one-time
calibration implicitly).

This module models the offsets in the simulator; `repro.calibration`
estimates and removes them from reference measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ChainOffsets:
    """Static per-antenna phase offsets of one NIC's receive chains.

    Attributes
    ----------
    offsets_rad:
        One phase per antenna; the first antenna is the reference and is
        conventionally 0 (only differences are observable).
    """

    offsets_rad: tuple

    def __post_init__(self) -> None:
        offs = tuple(float(v) for v in self.offsets_rad)
        if len(offs) < 1:
            raise ConfigurationError("need at least one antenna offset")
        object.__setattr__(self, "offsets_rad", offs)

    @property
    def num_antennas(self) -> int:
        return len(self.offsets_rad)

    @staticmethod
    def identity(num_antennas: int) -> "ChainOffsets":
        """No offsets (an ideally calibrated card)."""
        return ChainOffsets(offsets_rad=(0.0,) * num_antennas)

    @staticmethod
    def random(num_antennas: int, rng: np.random.Generator) -> "ChainOffsets":
        """Uniformly random offsets with antenna 0 as the reference."""
        offsets = rng.uniform(-np.pi, np.pi, size=num_antennas)
        offsets[0] = 0.0
        return ChainOffsets(offsets_rad=tuple(offsets))

    def referenced(self) -> "ChainOffsets":
        """Equivalent offsets with antenna 0 rotated to zero."""
        base = self.offsets_rad[0]
        return ChainOffsets(
            offsets_rad=tuple(
                float(np.angle(np.exp(1j * (v - base)))) for v in self.offsets_rad
            )
        )

    def apply(self, csi: np.ndarray) -> np.ndarray:
        """Rotate each antenna row of a CSI matrix by its chain offset."""
        csi = np.asarray(csi, dtype=np.complex128)
        if csi.shape[0] != self.num_antennas:
            raise ConfigurationError(
                f"CSI has {csi.shape[0]} antennas, offsets describe "
                f"{self.num_antennas}"
            )
        rot = np.exp(1j * np.asarray(self.offsets_rad))
        return csi * rot[:, None]

    def correct(self, csi: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`apply` (what a calibrated receiver computes)."""
        csi = np.asarray(csi, dtype=np.complex128)
        if csi.shape[0] != self.num_antennas:
            raise ConfigurationError(
                f"CSI has {csi.shape[0]} antennas, offsets describe "
                f"{self.num_antennas}"
            )
        rot = np.exp(-1j * np.asarray(self.offsets_rad))
        return csi * rot[:, None]

    def compose(self, other: "ChainOffsets") -> "ChainOffsets":
        """Offsets equivalent to applying ``self`` then ``other``."""
        if other.num_antennas != self.num_antennas:
            raise ConfigurationError("cannot compose offsets of different sizes")
        summed = np.asarray(self.offsets_rad) + np.asarray(other.offsets_rad)
        return ChainOffsets(
            offsets_rad=tuple(float(np.angle(np.exp(1j * v))) for v in summed)
        )

    def max_error_to(self, other: "ChainOffsets") -> float:
        """Largest per-antenna phase discrepancy (rad), reference-aligned."""
        a = self.referenced().offsets_rad
        b = other.referenced().offsets_rad
        if len(a) != len(b):
            raise ConfigurationError("cannot compare offsets of different sizes")
        return float(
            max(abs(np.angle(np.exp(1j * (x - y)))) for x, y in zip(a, b))
        )
