"""Wall materials: reflection and through-wall transmission coefficients.

Values are representative of 5 GHz indoor propagation measurements
(cf. the TGn channel model document the paper cites [70]); they need only
be *plausible*, since the evaluation compares algorithms on the same
simulated channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Material:
    """Electromagnetic behaviour of a wall material at ~5 GHz.

    Attributes
    ----------
    name:
        Identifier used by wall segments.
    reflectivity:
        Linear amplitude reflection coefficient magnitude at normal
        incidence, in [0, 1].  Actual reflection grows toward grazing
        incidence (handled by the channel model).
    transmission_loss_db:
        One-pass through-wall power loss in dB (positive number).
    reflection_phase_rad:
        Phase shift applied on reflection (pi for a good conductor /
        dielectric at near-normal incidence).
    """

    name: str
    reflectivity: float
    transmission_loss_db: float
    reflection_phase_rad: float = 3.141592653589793

    def __post_init__(self) -> None:
        if not 0.0 <= self.reflectivity <= 1.0:
            raise ConfigurationError(
                f"reflectivity must be in [0, 1], got {self.reflectivity}"
            )
        if self.transmission_loss_db < 0.0:
            raise ConfigurationError(
                f"transmission loss must be >= 0 dB, got {self.transmission_loss_db}"
            )

    @property
    def transmission_amplitude(self) -> float:
        """Linear amplitude transmission coefficient through the wall."""
        return 10.0 ** (-self.transmission_loss_db / 20.0)


#: Representative 5 GHz materials.
_DEFAULTS = (
    Material("drywall", reflectivity=0.35, transmission_loss_db=4.0),
    Material("concrete", reflectivity=0.60, transmission_loss_db=14.0),
    Material("brick", reflectivity=0.55, transmission_loss_db=10.0),
    Material("glass", reflectivity=0.40, transmission_loss_db=3.0),
    Material("metal", reflectivity=0.95, transmission_loss_db=30.0),
    Material("wood", reflectivity=0.30, transmission_loss_db=5.0),
    Material("elevator", reflectivity=0.90, transmission_loss_db=25.0),
)


class MaterialLibrary:
    """Registry resolving material names to :class:`Material` records."""

    def __init__(self, materials: "tuple[Material, ...]" = _DEFAULTS) -> None:
        self._by_name: Dict[str, Material] = {}
        for material in materials:
            self.register(material)

    def register(self, material: Material) -> None:
        """Add or replace a material."""
        self._by_name[material.name] = material

    def get(self, name: str) -> Material:
        """Look up a material by name; unknown names raise ConfigurationError."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown material {name!r}; known: {sorted(self._by_name)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Material]:
        return iter(self._by_name.values())

    def names(self) -> "list[str]":
        return sorted(self._by_name)


#: Module-level default library; floorplans resolve against this unless a
#: simulator is configured with a custom one.
DEFAULT_MATERIALS = MaterialLibrary()
