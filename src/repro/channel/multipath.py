"""Convert traced geometric paths into physical multipath profiles.

Takes the :class:`~repro.geom.rays.TracedPath` polylines from the ray
tracer and produces :class:`~repro.channel.paths.PropagationPath` records
with AoA (relative to the receiving array's normal), ToF, and complex gain
(Friis free-space amplitude x reflection/transmission/scattering factors,
with carrier phase).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.channel.materials import DEFAULT_MATERIALS, MaterialLibrary
from repro.channel.paths import PropagationPath
from repro.constants import SPEED_OF_LIGHT
from repro.errors import ConfigurationError
from repro.geom.floorplan import Floorplan
from repro.geom.points import PointLike, angle_diff_deg, as_point
from repro.geom.rays import KIND_DIFFRACTION, KIND_SCATTER, RayTracer, TracedPath
from repro.wifi.arrays import UniformLinearArray


@dataclass
class MultipathProfile:
    """The set of significant propagation paths from a target to one AP."""

    paths: List[PropagationPath] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.paths = sorted(self.paths, key=lambda p: p.tof_s)

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self) -> Iterator[PropagationPath]:
        return iter(self.paths)

    def __getitem__(self, index: int) -> PropagationPath:
        return self.paths[index]

    @property
    def num_paths(self) -> int:
        return len(self.paths)

    def direct_path(self) -> Optional[PropagationPath]:
        """The direct (LoS geometry) path if present, else None."""
        for path in self.paths:
            if path.is_direct:
                return path
        return None

    def strongest_path(self) -> PropagationPath:
        if not self.paths:
            raise ConfigurationError("profile has no paths")
        return max(self.paths, key=lambda p: abs(p.gain))

    def total_power(self) -> float:
        """Sum of linear path powers |gamma_k|^2."""
        return float(sum(abs(p.gain) ** 2 for p in self.paths))

    def rssi_dbm(self, tx_power_dbm: float = 0.0) -> float:
        """RSSI (dBm) of the summed multipath power at transmit power
        ``tx_power_dbm``."""
        power = self.total_power()
        if power <= 0.0:
            return float("-inf")
        return tx_power_dbm + 10.0 * float(np.log10(power))

    def direct_is_strongest(self) -> bool:
        direct = self.direct_path()
        if direct is None:
            return False
        return abs(direct.gain) >= max(abs(p.gain) for p in self.paths) - 1e-15

    def has_strong_direct(self, margin_db: float = 6.0) -> bool:
        """True if a direct path exists within ``margin_db`` of the strongest."""
        direct = self.direct_path()
        if direct is None or abs(direct.gain) <= 0.0:
            return False
        strongest = abs(self.strongest_path().gain)
        return 20.0 * math.log10(abs(direct.gain) / strongest) >= -margin_db

    def truncated(self, max_paths: int) -> "MultipathProfile":
        """Keep only the ``max_paths`` strongest paths."""
        if max_paths < 1:
            raise ConfigurationError(f"max_paths must be >= 1, got {max_paths}")
        kept = sorted(self.paths, key=lambda p: -abs(p.gain))[:max_paths]
        return MultipathProfile(paths=kept)


def _effective_ula_aoa_deg(relative_bearing_deg: float) -> float:
    """AoA a front-back-ambiguous ULA observes for a given relative bearing.

    A ULA's phase response depends only on sin(theta); a path arriving at
    relative bearing b behind the array (|b| > 90) is indistinguishable
    from one at 180 - b in front.  We return the front-half-plane alias.
    """
    rad = math.radians(relative_bearing_deg)
    return math.degrees(math.asin(max(-1.0, min(1.0, math.sin(rad)))))


def path_gain(
    traced: TracedPath,
    wavelength_m: float,
    floorplan: Floorplan,
    materials: MaterialLibrary,
) -> complex:
    """Complex gain of a traced path: Friis amplitude x interaction factors.

    Amplitude: ``lambda / (4 pi d_total)`` (free-space spreading over the
    full unfolded length), multiplied by each reflection's material
    coefficient (scaled by incidence), each penetrated wall's transmission
    amplitude, and the scatterer gain for scatter paths.  Phase: the
    carrier-cycle phase ``-2 pi d / lambda`` plus reflection phase shifts.
    """
    d_total = traced.length_m
    amplitude = wavelength_m / (4.0 * math.pi * d_total)
    phase = -2.0 * math.pi * d_total / wavelength_m

    for i, wall in enumerate(traced.reflecting_walls):
        material = materials.get(floorplan.wall_material(wall))
        incoming = traced.vertices[i]
        hit = traced.vertices[i + 1]
        # Reflection strengthens toward grazing incidence: interpolate the
        # normal-incidence reflectivity toward 1 as cos(theta_inc) -> 0.
        cos_inc = wall.incidence_cos(incoming, hit)
        reflect = material.reflectivity + (1.0 - material.reflectivity) * (1.0 - cos_inc) ** 2
        amplitude *= reflect
        phase += material.reflection_phase_rad

    for wall in traced.penetrated_walls:
        material = materials.get(floorplan.wall_material(wall))
        amplitude *= material.transmission_amplitude

    if traced.kind == KIND_SCATTER and traced.scatterer is not None:
        amplitude *= traced.scatterer.gain
        phase += math.pi / 2.0  # generic scattering phase shift

    if traced.kind == KIND_DIFFRACTION:
        amplitude *= knife_edge_amplitude(traced, wavelength_m)
        phase -= math.pi / 4.0  # knife-edge diffraction phase shift

    return amplitude * complex(math.cos(phase), math.sin(phase))


def knife_edge_amplitude(traced: TracedPath, wavelength_m: float) -> float:
    """Linear amplitude factor of single knife-edge diffraction.

    Uses the standard Fresnel-parameter approximation (ITU-R P.526): with
    leg lengths d1, d2 and bend angle alpha, the Fresnel parameter is
    ``v = alpha * sqrt(2 d1 d2 / (lambda (d1 + d2)))`` and the excess loss

        L(v) = 6.9 + 20 log10(sqrt((v - 0.1)^2 + 1) + v - 0.1)   dB

    (valid for v > -0.78; at grazing incidence the loss is ~6 dB).
    """
    if len(traced.vertices) != 3:
        raise ConfigurationError("knife-edge model expects tx-edge-rx paths")
    d1 = traced.vertices[0].distance_to(traced.vertices[1])
    d2 = traced.vertices[1].distance_to(traced.vertices[2])
    if d1 <= 0 or d2 <= 0:
        return 0.0
    v = traced.diffraction_angle_rad * math.sqrt(
        2.0 * d1 * d2 / (wavelength_m * (d1 + d2))
    )
    loss_db = 6.9 + 20.0 * math.log10(math.sqrt((v - 0.1) ** 2 + 1.0) + v - 0.1)
    return 10.0 ** (-loss_db / 20.0)


def extract_profile(
    floorplan: Floorplan,
    target: PointLike,
    array: UniformLinearArray,
    wavelength_m: float,
    max_reflection_order: int = 2,
    max_paths: int = 8,
    min_power_rel_db: float = 40.0,
    materials: MaterialLibrary = DEFAULT_MATERIALS,
    include_diffraction: bool = False,
) -> MultipathProfile:
    """Trace and weigh all significant paths from ``target`` to ``array``.

    Paths weaker than ``min_power_rel_db`` below the strongest are dropped,
    then the strongest ``max_paths`` survive — matching the paper's "6-8
    significant reflectors" indoor regime.  ``include_diffraction`` adds
    knife-edge paths around wall corners for obstructed links.
    """
    tracer = RayTracer(
        floorplan=floorplan,
        max_reflection_order=max_reflection_order,
        include_diffraction=include_diffraction,
    )
    traced = tracer.trace(as_point(target), as_point(array.position))
    paths: List[PropagationPath] = []
    for t in traced:
        gain = path_gain(t, wavelength_m, floorplan, materials)
        if abs(gain) <= 0.0:
            continue
        bearing = t.arrival_bearing_deg()
        relative = angle_diff_deg(bearing, array.normal_deg)
        aoa = _effective_ula_aoa_deg(relative)
        kind = "direct" if t.kind == "direct" else t.kind
        paths.append(
            PropagationPath(
                aoa_deg=aoa,
                tof_s=t.length_m / SPEED_OF_LIGHT,
                gain=gain,
                kind=kind,
                length_m=t.length_m,
            )
        )
    if not paths:
        return MultipathProfile(paths=[])
    strongest = max(abs(p.gain) for p in paths)
    floor = strongest * 10.0 ** (-min_power_rel_db / 20.0)
    significant = [p for p in paths if abs(p.gain) >= floor]
    significant = sorted(significant, key=lambda p: -abs(p.gain))[:max_paths]
    return MultipathProfile(paths=significant)
