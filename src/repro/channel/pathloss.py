"""Log-distance path-loss model.

SpotFi's localization objective (paper Eq. 9) compares the observed RSSI at
each AP with the RSSI "that would have been observed ... if the target was
transmitting from that location", under "a standard widely used path loss
model" [3, 71].  This is the classic log-distance model

    RSSI(d) = P0 - 10 * gamma * log10(d / d0)

with reference power P0 at distance d0 and path-loss exponent gamma.  The
localization solver treats (P0, gamma) as nuisance parameters and fits them
jointly with the position (Algorithm 2 line 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from numpy.typing import ArrayLike

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LogDistancePathLoss:
    """RSSI(d) = p0_dbm - 10 * exponent * log10(d / d0_m).

    Attributes
    ----------
    p0_dbm:
        RSSI at the reference distance.
    exponent:
        Path-loss exponent gamma (2 free space; 2.5-4 indoors NLoS).
    d0_m:
        Reference distance, 1 m by convention.
    """

    p0_dbm: float = -40.0
    exponent: float = 2.5
    d0_m: float = 1.0

    def __post_init__(self) -> None:
        if self.d0_m <= 0:
            raise ConfigurationError(f"reference distance must be > 0, got {self.d0_m}")
        if self.exponent <= 0:
            raise ConfigurationError(f"path-loss exponent must be > 0, got {self.exponent}")

    def rssi_dbm(self, distance_m: "ArrayLike") -> np.ndarray:
        """Predicted RSSI at ``distance_m`` (scalar or array)."""
        d = np.maximum(np.asarray(distance_m, dtype=float), 1e-3)
        return self.p0_dbm - 10.0 * self.exponent * np.log10(d / self.d0_m)

    def distance_m(self, rssi_dbm: "ArrayLike") -> np.ndarray:
        """Invert the model: distance that predicts ``rssi_dbm``."""
        r = np.asarray(rssi_dbm, dtype=float)
        return self.d0_m * 10.0 ** ((self.p0_dbm - r) / (10.0 * self.exponent))


def fit_path_loss(
    distances_m: Sequence[float],
    rssi_dbm: Sequence[float],
    d0_m: float = 1.0,
) -> Tuple[LogDistancePathLoss, float]:
    """Least-squares fit of (P0, gamma) to (distance, RSSI) samples.

    Returns the fitted model and the RMS residual (dB).  Needs at least two
    samples at distinct distances.
    """
    d = np.asarray(distances_m, dtype=float)
    r = np.asarray(rssi_dbm, dtype=float)
    if d.shape != r.shape or d.ndim != 1:
        raise ConfigurationError("distances and RSSI must be equal-length 1-D arrays")
    mask = np.isfinite(d) & np.isfinite(r) & (d > 0)
    d, r = d[mask], r[mask]
    if d.size < 2 or np.allclose(d, d[0]):
        raise ConfigurationError("need >= 2 samples at distinct distances to fit")
    x = -10.0 * np.log10(d / d0_m)
    design = np.stack([np.ones_like(x), x], axis=1)
    coef, *_ = np.linalg.lstsq(design, r, rcond=None)
    p0, gamma = float(coef[0]), float(coef[1])
    gamma = max(gamma, 1e-3)
    model = LogDistancePathLoss(p0_dbm=p0, exponent=gamma, d0_m=d0_m)
    rms = float(np.sqrt(np.mean((model.rssi_dbm(d) - r) ** 2)))
    return model, rms
