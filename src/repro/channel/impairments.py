"""Receiver impairments: the nuisance effects SpotFi must survive.

The paper's Sec. 3.2 identifies the impairments that corrupt ToF estimates
on commodity WiFi:

* **STO** (sampling time offset): sender and receiver sampling clocks are
  unsynchronized, adding a common delay to every path's ToF.  Constant per
  packet, same across all antennas of one NIC (shared sampling clock).
* **SFO** (sampling frequency offset): the clocks also run at slightly
  different rates, so the STO *drifts* from packet to packet.
* **Packet detection delay**: the receiver's packet-start detector fires a
  random number of samples late, adding per-packet jitter to the delay.
* **AWGN**: thermal noise on each CSI entry.
* **Quantization**: 8-bit CSI components (see `repro.wifi.quantization`).

:class:`ImpairmentModel` holds the distributional parameters;
:class:`ImpairmentState` is one packet's realized nuisance values so tests
and benchmarks can inspect exactly what was injected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.wifi.quantization import QuantizationModel


@dataclass(frozen=True)
class ImpairmentState:
    """Realized impairments for one packet.

    Attributes
    ----------
    sto_s:
        Total sampling-time offset applied to this packet (s), including
        SFO drift and detection delay.
    cfo_phase_rad:
        Common random phase rotation (carrier/residual CFO), applied to
        every CSI entry identically.
    snr_db:
        Per-entry AWGN SNR used for this packet.
    """

    sto_s: float
    cfo_phase_rad: float
    snr_db: float


@dataclass
class ImpairmentModel:
    """Distributional model of per-packet impairments.

    Attributes
    ----------
    base_sto_s:
        Mean sampling time offset of the association (s).  Tens of ns to a
        few hundred ns is typical; the default ~ 50 ns keeps estimated ToFs
        within the Intel 5300 ToF ambiguity window (800 ns).
    sfo_drift_s_per_packet:
        Deterministic STO drift between consecutive packets due to SFO.
    sto_jitter_s:
        Std-dev of random per-packet detection delay jitter (s).
    snr_db:
        Mean per-entry AWGN SNR (dB).
    snr_jitter_db:
        Std-dev of per-packet SNR variation (dB).
    random_cfo_phase:
        Whether to rotate each packet's CSI by a random common phase
        (residual CFO after the card's correction).  This destroys
        absolute phase, as in real measurements.
    quantizer:
        8-bit CSI quantizer, or None to disable quantization.
    """

    base_sto_s: float = 50e-9
    sfo_drift_s_per_packet: float = 0.1e-9
    sto_jitter_s: float = 3e-9
    snr_db: float = 25.0
    snr_jitter_db: float = 2.0
    random_cfo_phase: bool = True
    quantizer: Optional[QuantizationModel] = field(default_factory=QuantizationModel)

    def __post_init__(self) -> None:
        if self.base_sto_s < 0:
            raise ConfigurationError(f"base STO must be >= 0, got {self.base_sto_s}")
        if self.sto_jitter_s < 0:
            raise ConfigurationError(
                f"STO jitter must be >= 0, got {self.sto_jitter_s}"
            )

    def draw_state(self, packet_index: int, rng: np.random.Generator) -> ImpairmentState:
        """Realize the impairments for packet number ``packet_index``."""
        sto = (
            self.base_sto_s
            + packet_index * self.sfo_drift_s_per_packet
            + (rng.normal(0.0, self.sto_jitter_s) if self.sto_jitter_s > 0 else 0.0)
        )
        sto = max(0.0, sto)
        cfo_phase = rng.uniform(-np.pi, np.pi) if self.random_cfo_phase else 0.0
        snr = self.snr_db + (
            rng.normal(0.0, self.snr_jitter_db) if self.snr_jitter_db > 0 else 0.0
        )
        return ImpairmentState(sto_s=sto, cfo_phase_rad=cfo_phase, snr_db=snr)

    def apply(
        self,
        csi: np.ndarray,
        state: ImpairmentState,
        subcarrier_spacing_hz: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Apply ``state``'s impairments to a clean CSI matrix.

        The STO multiplies subcarrier n (0-based) by
        ``exp(-j 2 pi f_delta n sto)`` — identical across antennas, the
        structure Algorithm 1 exploits.  AWGN is scaled relative to the
        mean CSI power; quantization is applied last.
        """
        csi = np.asarray(csi, dtype=np.complex128)
        num_subcarriers = csi.shape[-1]
        n = np.arange(num_subcarriers)
        sto_ramp = np.exp(-2j * np.pi * subcarrier_spacing_hz * n * state.sto_s)
        out = csi * sto_ramp[None, :]
        if state.cfo_phase_rad:
            out = out * np.exp(1j * state.cfo_phase_rad)
        if np.isfinite(state.snr_db):
            signal_power = float(np.mean(np.abs(out) ** 2))
            if signal_power > 0:
                noise_power = signal_power * 10.0 ** (-state.snr_db / 10.0)
                noise_std = np.sqrt(noise_power / 2.0)
                noise = rng.normal(0.0, noise_std, out.shape) + 1j * rng.normal(
                    0.0, noise_std, out.shape
                )
                out = out + noise
        if self.quantizer is not None:
            out = self.quantizer.quantize(out)
        return out


def ideal_impairments() -> ImpairmentModel:
    """An impairment model that does nothing (clean CSI, for unit tests)."""
    return ImpairmentModel(
        base_sto_s=0.0,
        sfo_drift_s_per_packet=0.0,
        sto_jitter_s=0.0,
        snr_db=float("inf"),
        snr_jitter_db=0.0,
        random_cfo_phase=False,
        quantizer=None,
    )
