"""Physical propagation paths: the (AoA, ToF, complex gain) triple.

This is the ground-truth analogue of what SpotFi estimates — Sec. 3.1's
model where each path k has AoA theta_k, ToF tau_k, and complex attenuation
gamma_k at the first antenna.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.constants import SPEED_OF_LIGHT
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PropagationPath:
    """One resolvable propagation path arriving at an AP's array.

    Attributes
    ----------
    aoa_deg:
        Angle of arrival relative to the array normal, degrees, in
        [-90, 90] for paths arriving from the front half-plane.
    tof_s:
        Absolute time of flight (s) — length / c.  Estimators never see
        this directly; the impairment model adds the STO before they do.
    gain:
        Complex attenuation gamma_k at the first antenna and first
        subcarrier: amplitude from Friis + interactions, phase from the
        carrier-cycle path length and reflection phases.
    kind:
        Provenance label ("direct", "reflection", "scatter") for analysis.
    length_m:
        Geometric path length, if known (0 means unknown).
    """

    aoa_deg: float
    tof_s: float
    gain: complex
    kind: str = "direct"
    length_m: float = 0.0

    def __post_init__(self) -> None:
        if self.tof_s < 0:
            raise ConfigurationError(f"ToF must be >= 0, got {self.tof_s}")
        if not np.isfinite(self.aoa_deg):
            raise ConfigurationError(f"AoA must be finite, got {self.aoa_deg}")

    @property
    def power_db(self) -> float:
        """Path power 20*log10|gain| (dB relative to unit transmit amplitude)."""
        mag = abs(self.gain)
        if mag <= 0.0:
            return float("-inf")
        return float(20.0 * np.log10(mag))

    @property
    def is_direct(self) -> bool:
        return self.kind == "direct"

    def delayed(self, extra_delay_s: float) -> "PropagationPath":
        """A copy of this path with ``extra_delay_s`` added to its ToF."""
        return PropagationPath(
            aoa_deg=self.aoa_deg,
            tof_s=self.tof_s + extra_delay_s,
            gain=self.gain,
            kind=self.kind,
            length_m=self.length_m,
        )


def path_from_length(
    aoa_deg: float,
    length_m: float,
    gain: complex,
    kind: str = "direct",
) -> PropagationPath:
    """Convenience constructor deriving ToF from the geometric length."""
    if length_m <= 0:
        raise ConfigurationError(f"path length must be positive, got {length_m}")
    return PropagationPath(
        aoa_deg=aoa_deg,
        tof_s=length_m / SPEED_OF_LIGHT,
        gain=gain,
        kind=kind,
        length_m=length_m,
    )
