"""Device-free sensing from CSI — the paper's stated future work
("device free localization, gesture recognition and motion tracing").

`repro.sensing.motion` detects environmental motion (a person walking, a
moved object) from changes in the CSI structure between packet bursts,
without any device on the moving subject.
"""

from repro.sensing.motion import MotionDetector, MotionReading

__all__ = ["MotionDetector", "MotionReading"]
