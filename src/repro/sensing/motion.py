"""Device-free motion detection from CSI.

Principle: the CSI between a *static* transmitter and an AP is a
fingerprint of the environment's multipath.  When something moves — a
person crosses a path, furniture shifts — reflection geometry changes and
the CSI decorrelates from its baseline.  The detector therefore tracks

    score(t) = 1 - |corr(csi_t, baseline)|

where ``corr`` is the normalized complex inner product of sanitized CSI
(sanitization removes the packet-varying STO ramp that would otherwise
swamp the comparison, and the magnitude of the correlation discards the
CFO rotation).  Scores near 0 mean "unchanged environment"; sustained
elevation means motion.

The baseline adapts slowly (exponential moving average) so the detector
re-arms after the environment settles into a new configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.sanitize import sanitize_csi
from repro.errors import ConfigurationError
from repro.wifi.csi import CsiTrace


@dataclass(frozen=True)
class MotionReading:
    """One burst's motion verdict.

    Attributes
    ----------
    score:
        Decorrelation score in [0, 1]; 0 = identical to baseline.
    motion:
        True when the score exceeded the detector threshold.
    baseline_ready:
        False for the first burst (which only primes the baseline).
    """

    score: float
    motion: bool
    baseline_ready: bool


@dataclass
class MotionDetector:
    """Detect environment motion from successive CSI bursts of one link.

    Attributes
    ----------
    threshold:
        Score above which a burst is declared "motion".  CSI noise and
        quantization keep the static-score floor around 0.01-0.05; people
        crossing paths push it over 0.1.
    adaptation:
        Baseline EMA factor in [0, 1): 0 freezes the first baseline,
        larger values track slow environmental drift.
    rebase_after:
        If the environment *stays* in a new configuration (the burst
        signature is stable burst-to-burst but differs from the baseline)
        for this many consecutive bursts, adopt it as the new baseline —
        so a moved chair raises one event, not an alarm forever.  0
        disables rebasing.
    """

    threshold: float = 0.1
    adaptation: float = 0.1
    rebase_after: int = 3
    _baseline: Optional[np.ndarray] = field(default=None, repr=False)
    _previous: Optional[np.ndarray] = field(default=None, repr=False)
    _stable_count: int = field(default=0, repr=False)
    _history: List[MotionReading] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold < 1.0:
            raise ConfigurationError(f"threshold must be in (0, 1), got {self.threshold}")
        if not 0.0 <= self.adaptation < 1.0:
            raise ConfigurationError(
                f"adaptation must be in [0, 1), got {self.adaptation}"
            )

    # ------------------------------------------------------------------
    def observe(self, trace: CsiTrace) -> MotionReading:
        """Process one packet burst; returns the burst's motion reading."""
        if len(trace) == 0:
            raise ConfigurationError("cannot observe an empty trace")
        signature = self._signature(trace)
        if self._baseline is None:
            self._baseline = signature
            reading = MotionReading(score=0.0, motion=False, baseline_ready=False)
        else:
            score = self._score(signature, self._baseline)
            reading = MotionReading(
                score=score, motion=score > self.threshold, baseline_ready=True
            )
            if not reading.motion:
                # Quiet: slow EMA tracks environmental drift.
                self._stable_count = 0
                if self.adaptation > 0:
                    self._baseline = (
                        (1.0 - self.adaptation) * self._baseline
                        + self.adaptation * signature
                    )
            else:
                # Motion relative to the baseline.  If the *burst-to-burst*
                # signature is stable, the environment has settled in a new
                # configuration; rebase after a few such bursts.
                settled = (
                    self._previous is not None
                    and self._score(signature, self._previous) <= self.threshold
                )
                self._stable_count = self._stable_count + 1 if settled else 0
                if self.rebase_after and self._stable_count >= self.rebase_after:
                    self._baseline = signature
                    self._stable_count = 0
        self._previous = signature
        self._history.append(reading)
        return reading

    def history(self) -> List[MotionReading]:
        return list(self._history)

    def reset(self) -> None:
        """Forget the baseline (e.g. after relocating the AP)."""
        self._baseline = None
        self._previous = None
        self._stable_count = 0
        self._history.clear()

    # ------------------------------------------------------------------
    @staticmethod
    def _signature(trace: CsiTrace) -> np.ndarray:
        """Burst signature: mean sanitized CSI, unit-normalized.

        Sanitizing per packet removes the STO ramp; averaging coherently
        is wrong under random CFO, so each packet is first rotated to zero
        mean phase before averaging.
        """
        acc = None
        for frame in trace:
            clean = sanitize_csi(frame.csi)
            rotation = np.exp(-1j * np.angle(np.sum(clean)))
            clean = clean * rotation
            acc = clean if acc is None else acc + clean
        signature = acc / len(trace)
        norm = np.linalg.norm(signature)
        if norm == 0:
            raise ConfigurationError("all-zero CSI burst")
        return signature / norm

    @staticmethod
    def _score(signature: np.ndarray, baseline: np.ndarray) -> float:
        corr = abs(np.vdot(baseline, signature))
        return float(np.clip(1.0 - corr, 0.0, 1.0))
